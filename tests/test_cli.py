"""Tests for the ``repro`` command line (``python -m repro``)."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.audio.waveform import Waveform
from repro.audio.wavio import write_wav
from repro.cli import build_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def wav_paths(tmp_path_factory, synthesizer):
    directory = tmp_path_factory.mktemp("clips")
    paths = []
    for i, text in enumerate(("turn off all the lights",
                              "the weather is nice today")):
        path = str(directory / f"clip{i}.wav")
        write_wav(path, synthesizer.synthesize(text))
        paths.append(path)
    return paths


@pytest.fixture(scope="module")
def stream_path(tmp_path_factory, synthesizer):
    clips = [synthesizer.synthesize(text)
             for text in ("open the front door",
                          "the storm passed over the hills before sunset")]
    samples = np.concatenate([clip.samples for clip in clips])
    path = str(tmp_path_factory.mktemp("stream") / "stream.wav")
    write_wav(path, Waveform(samples))
    return path


def test_help_exits_zero():
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0


def test_no_command_prints_help(capsys):
    assert main([]) == 0
    assert "screen" in capsys.readouterr().out


def test_parser_covers_documented_commands():
    parser = build_parser()
    assert {"screen", "stream", "bench", "bench-similarity"} <= set(
        parser._subparsers._group_actions[0].choices)


def test_screen_command(wav_paths, capsys):
    code = main(["screen", *wav_paths, "--scale", "tiny"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    for path in wav_paths:
        assert path in out
    assert "screened 2 clips" in out


def test_screen_json_output(wav_paths, capsys):
    code = main(["screen", wav_paths[0], "--scale", "tiny", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)
    assert len(payload["results"]) == 1
    result = payload["results"][0]
    assert result["file"] == wav_paths[0]
    assert isinstance(result["is_adversarial"], bool)
    assert isinstance(result["target_transcription"], str)
    assert (code == 1) == any(r["is_adversarial"] for r in payload["results"])


def test_stream_command_json(stream_path, capsys):
    code = main(["stream", stream_path, "--scale", "tiny",
                 "--window", "1.0", "--hop", "1.0", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)
    assert payload["windows"]
    starts = [w["start"] for w in payload["windows"]]
    assert starts == sorted(starts)
    assert (code == 1) == payload["is_adversarial"]


def test_bench_command_json(capsys):
    code = main(["bench", "--clips", "3", "--batch-size", "2",
                 "--scale", "tiny", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["clips"] == 3
    assert payload["sequential_seconds"] > 0
    assert payload["batched_seconds"] > 0
    assert payload["microbatch_seconds"] > 0
    assert payload["metrics"]["requests"] >= 6  # batched + micro + replay
    assert payload["microbatch"]["batches"] >= 1


def test_screen_transform_defense(wav_paths, capsys):
    code = main(["screen", wav_paths[0], "--scale", "tiny",
                 "--defense", "transform",
                 "--transforms", "quantize:6,lowpass:2500", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)
    assert len(payload["results"][0]["scores"]) == 2


def test_transforms_require_transform_defense(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--transforms", "quantize:6"]) == 2
    assert "--defense" in capsys.readouterr().err


def test_bad_transform_spec_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--defense", "transform", "--transforms", "reverb:3"]) == 2
    assert "unknown transform" in capsys.readouterr().err


def test_missing_wav_is_a_user_error(capsys):
    assert main(["screen", "/nonexistent/clip.wav"]) == 2
    assert "error" in capsys.readouterr().err


def test_screen_scoring_backends_agree(wav_paths, capsys):
    runs = {}
    for backend in ("fast", "reference"):
        code = main(["screen", wav_paths[0], "--scale", "tiny",
                     "--scoring-backend", backend, "--score-cache", "private",
                     "--json"])
        assert code in (0, 1)
        runs[backend] = json.loads(capsys.readouterr().out)["results"][0]
    assert runs["fast"]["scores"] == runs["reference"]["scores"]
    assert runs["fast"]["is_adversarial"] == runs["reference"]["is_adversarial"]


def test_unknown_scorer_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--scorer", "nope"]) == 2
    assert "nope" in capsys.readouterr().err


def test_mistyped_score_cache_policy_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--score-cache", "sharde"]) == 2
    assert "sharde" in capsys.readouterr().err


def test_bench_similarity_writes_report(tmp_path, capsys):
    out = str(tmp_path / "BENCH_similarity.json")
    code = main(["bench-similarity", "--pairs", "40", "--overlap", "3",
                 "--repeats", "1", "--output", out, "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    with open(out, encoding="utf-8") as handle:
        assert json.load(handle) == payload
    assert payload["parity_max_abs_diff"] == 0.0
    assert payload["n_pairs"] == 40
    assert payload["batch"]["reference_seconds"] > 0
    assert payload["stream"]["cache_hit_rate"] == 1.0


def test_bench_similarity_validates_inputs(tmp_path, capsys):
    out = str(tmp_path / "r.json")
    assert main(["bench-similarity", "--pairs", "0", "--output", out]) == 2
    assert "--pairs" in capsys.readouterr().err
    assert main(["bench-similarity", "--pairs", "10", "--scorer", "nope",
                 "--output", out]) == 2
    assert "nope" in capsys.readouterr().err


def test_python_dash_m_repro_runs():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=120, env=env, cwd=REPO_ROOT)
    assert completed.returncode == 0
    assert "screen" in completed.stdout
