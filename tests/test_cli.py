"""Tests for the ``repro`` command line (``python -m repro``)."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.audio.waveform import Waveform
from repro.audio.wavio import write_wav
from repro.cli import build_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def wav_paths(tmp_path_factory, synthesizer):
    directory = tmp_path_factory.mktemp("clips")
    paths = []
    for i, text in enumerate(("turn off all the lights",
                              "the weather is nice today")):
        path = str(directory / f"clip{i}.wav")
        write_wav(path, synthesizer.synthesize(text))
        paths.append(path)
    return paths


@pytest.fixture(scope="module")
def stream_path(tmp_path_factory, synthesizer):
    clips = [synthesizer.synthesize(text)
             for text in ("open the front door",
                          "the storm passed over the hills before sunset")]
    samples = np.concatenate([clip.samples for clip in clips])
    path = str(tmp_path_factory.mktemp("stream") / "stream.wav")
    write_wav(path, Waveform(samples))
    return path


def test_help_exits_zero():
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0


def test_no_command_prints_help(capsys):
    assert main([]) == 0
    assert "screen" in capsys.readouterr().out


def test_parser_covers_documented_commands():
    parser = build_parser()
    assert {"screen", "stream", "bench", "bench-similarity"} <= set(
        parser._subparsers._group_actions[0].choices)


def test_screen_command(wav_paths, capsys):
    code = main(["screen", *wav_paths, "--scale", "tiny"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    for path in wav_paths:
        assert path in out
    assert "screened 2 clips" in out


def test_screen_json_output(wav_paths, capsys):
    code = main(["screen", wav_paths[0], "--scale", "tiny", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)
    assert len(payload["results"]) == 1
    result = payload["results"][0]
    assert result["file"] == wav_paths[0]
    assert isinstance(result["is_adversarial"], bool)
    assert isinstance(result["target_transcription"], str)
    assert (code == 1) == any(r["is_adversarial"] for r in payload["results"])


def test_stream_command_json(stream_path, capsys):
    code = main(["stream", stream_path, "--scale", "tiny",
                 "--window", "1.0", "--hop", "1.0", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)
    assert payload["windows"]
    starts = [w["start"] for w in payload["windows"]]
    assert starts == sorted(starts)
    assert (code == 1) == payload["is_adversarial"]


def test_bench_command_json(capsys):
    code = main(["bench", "--clips", "3", "--batch-size", "2",
                 "--scale", "tiny", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["clips"] == 3
    assert payload["sequential_seconds"] > 0
    assert payload["batched_seconds"] > 0
    assert payload["microbatch_seconds"] > 0
    assert payload["metrics"]["requests"] >= 6  # batched + micro + replay
    assert payload["microbatch"]["batches"] >= 1


def test_screen_transform_defense(wav_paths, capsys):
    code = main(["screen", wav_paths[0], "--scale", "tiny",
                 "--defense", "transform",
                 "--transforms", "quantize:6,lowpass:2500", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)
    assert len(payload["results"][0]["scores"]) == 2


def test_transforms_require_transform_defense(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--transforms", "quantize:6"]) == 2
    assert "--defense" in capsys.readouterr().err


def test_bad_transform_spec_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--defense", "transform", "--transforms", "reverb:3"]) == 2
    assert "unknown transform" in capsys.readouterr().err


def test_missing_wav_is_a_user_error(capsys):
    assert main(["screen", "/nonexistent/clip.wav"]) == 2
    assert "error" in capsys.readouterr().err


def test_screen_scoring_backends_agree(wav_paths, capsys):
    runs = {}
    for backend in ("fast", "reference"):
        code = main(["screen", wav_paths[0], "--scale", "tiny",
                     "--scoring-backend", backend, "--score-cache", "private",
                     "--json"])
        assert code in (0, 1)
        runs[backend] = json.loads(capsys.readouterr().out)["results"][0]
    assert runs["fast"]["scores"] == runs["reference"]["scores"]
    assert runs["fast"]["is_adversarial"] == runs["reference"]["is_adversarial"]


def test_unknown_scorer_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--scorer", "nope"]) == 2
    assert "nope" in capsys.readouterr().err


def test_mistyped_score_cache_policy_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--scale", "tiny",
                 "--score-cache", "sharde"]) == 2
    assert "sharde" in capsys.readouterr().err


def test_bench_similarity_writes_report(tmp_path, capsys):
    out = str(tmp_path / "BENCH_similarity.json")
    code = main(["bench-similarity", "--pairs", "40", "--overlap", "3",
                 "--repeats", "1", "--output", out, "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    with open(out, encoding="utf-8") as handle:
        assert json.load(handle) == payload
    assert payload["parity_max_abs_diff"] == 0.0
    assert payload["n_pairs"] == 40
    assert payload["batch"]["reference_seconds"] > 0
    assert payload["stream"]["cache_hit_rate"] == 1.0


def test_bench_similarity_validates_inputs(tmp_path, capsys):
    out = str(tmp_path / "r.json")
    assert main(["bench-similarity", "--pairs", "0", "--output", out]) == 2
    assert "--pairs" in capsys.readouterr().err
    assert main(["bench-similarity", "--pairs", "10", "--scorer", "nope",
                 "--output", out]) == 2
    assert "nope" in capsys.readouterr().err


@pytest.fixture(scope="module")
def tiny_config_path(tmp_path_factory):
    from repro.specs import DetectorSpec

    path = tmp_path_factory.mktemp("configs") / "tiny.json"
    return DetectorSpec.default(scale="tiny").save(str(path))


def test_config_show_prints_effective_spec(capsys):
    assert main(["config", "show", "--scale", "small",
                 "--scoring-backend", "reference"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["training"]["scale"] == "small"
    assert payload["scoring"]["backend"] == "reference"
    assert payload["suite"]["auxiliaries"] == ["DS1", "GCS", "AT"]


def test_config_validate_accepts_good_rejects_bad(tmp_path, tiny_config_path,
                                                  capsys):
    assert main(["config", "validate", tiny_config_path]) == 0
    assert "ok" in capsys.readouterr().out
    bad = tmp_path / "bad.json"
    bad.write_text('{"scoring": {"scorer": "nope"}}')
    assert main(["config", "validate", tiny_config_path, str(bad)]) == 2
    captured = capsys.readouterr()
    assert "FAIL" in captured.out and "nope" in captured.out


def test_config_validate_checked_in_examples(capsys):
    import glob

    configs = sorted(glob.glob(os.path.join(REPO_ROOT, "examples",
                                            "configs", "*.json")))
    assert len(configs) >= 3
    assert main(["config", "validate", *configs]) == 0


def test_screen_with_config_matches_flags(wav_paths, tiny_config_path, capsys):
    code_config = main(["screen", wav_paths[0], "--config", tiny_config_path,
                        "--json"])
    from_config = json.loads(capsys.readouterr().out)["results"][0]
    code_flags = main(["screen", wav_paths[0], "--scale", "tiny", "--json"])
    from_flags = json.loads(capsys.readouterr().out)["results"][0]
    assert code_config == code_flags
    assert from_config["scores"] == from_flags["scores"]
    assert from_config["is_adversarial"] == from_flags["is_adversarial"]


def test_config_flags_overlay_file(tiny_config_path, capsys):
    assert main(["config", "show", "--config", tiny_config_path,
                 "--classifier", "KNN", "--defense", "transform",
                 "--transforms", "quantize:6"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["classifier"]["name"] == "KNN"          # flag overlay
    assert payload["suite"]["auxiliaries"] == [
        {"name": "DS0", "transform": "quantize:6"}]        # suite reshaped
    assert payload["training"]["scale"] == "tiny"          # file value kept


def test_defense_flag_keeps_config_target(tmp_path, capsys):
    from repro.specs import DetectorSpec

    path = str(tmp_path / "kal.json")
    DetectorSpec.from_dict({
        "suite": {"target": "KAL", "auxiliaries": ["DS1"]},
        "training": {"scale": "tiny", "source": "bundle"}}).save(path)
    assert main(["config", "show", "--config", path,
                 "--defense", "transform", "--transforms", "quantize:6"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["suite"]["target"] == "KAL"
    assert payload["suite"]["auxiliaries"] == [
        {"name": "KAL", "transform": "quantize:6"}]


def test_config_env_overlays_file(tiny_config_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CLASSIFIER", "RandomForest")
    assert main(["config", "show", "--config", tiny_config_path]) == 0
    assert json.loads(capsys.readouterr().out)["classifier"]["name"] == \
        "RandomForest"


def test_env_overlays_flag_defaults_without_config(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CLASSIFIER", "KNN")
    assert main(["config", "show"]) == 0
    assert json.loads(capsys.readouterr().out)["classifier"]["name"] == "KNN"
    # An explicit flag still beats the environment.
    assert main(["config", "show", "--classifier", "RandomForest"]) == 0
    assert json.loads(capsys.readouterr().out)["classifier"]["name"] == \
        "RandomForest"


def test_transforms_flag_reparameterises_transform_config(capsys):
    config = os.path.join(REPO_ROOT, "examples", "configs",
                          "transform-ensemble.json")
    assert main(["config", "show", "--config", config,
                 "--transforms", "quantize:6"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["suite"]["auxiliaries"] == [
        {"name": "DS0", "transform": "quantize:6"}]


def test_suite_reshape_inherits_config_pieces(tmp_path, capsys):
    from repro.specs import DetectorSpec

    path = str(tmp_path / "combined.json")
    DetectorSpec.from_dict({
        "suite": {"target": "DS0",
                  "auxiliaries": ["KAL",
                                  {"name": "DS0", "transform": "quantize:6"}]},
        "training": {"scale": "tiny", "source": "bundle"}}).save(path)
    # --auxiliaries replaces only the plain members; the config's custom
    # transform ensemble survives.
    assert main(["config", "show", "--config", path,
                 "--auxiliaries", "DS1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["suite"]["auxiliaries"] == [
        "DS1", {"name": "DS0", "transform": "quantize:6"}]
    # --defense combined alone keeps both custom pieces.
    assert main(["config", "show", "--config", path,
                 "--defense", "combined"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["suite"]["auxiliaries"] == [
        "KAL", {"name": "DS0", "transform": "quantize:6"}]


def test_target_flag_accepts_parameterised_kaldi(capsys):
    assert main(["config", "show", "--target", "KAL-fs3",
                 "--auxiliaries", "DS1"]) == 0
    assert json.loads(capsys.readouterr().out)["suite"]["target"] == "KAL-fs3"


def test_mistyped_target_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0], "--target", "SIRI"]) == 2
    assert "SIRI" in capsys.readouterr().err


def test_config_show_rejects_invalid_flag_combination(capsys):
    # The printed spec is advertised as ready to save, so a bad name
    # must fail at show time, not when the saved config is reused.
    assert main(["config", "show", "--target", "SIRI"]) == 2
    assert "SIRI" in capsys.readouterr().err


def test_auxiliaries_conflict_with_pure_transform_defense(capsys):
    assert main(["config", "show", "--defense", "transform",
                 "--auxiliaries", "DS1,GCS"]) == 2
    assert "--defense combined" in capsys.readouterr().err


def test_missing_config_file_is_a_user_error(wav_paths, capsys):
    assert main(["screen", wav_paths[0],
                 "--config", "/nonexistent.json"]) == 2
    assert "nonexistent" in capsys.readouterr().err


def test_invalid_config_file_is_a_user_error(tmp_path, wav_paths, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"suite": {"target": "SIRI"}}')
    assert main(["screen", wav_paths[0], "--config", str(bad)]) == 2
    assert "SIRI" in capsys.readouterr().err


def test_python_dash_m_repro_runs():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=120, env=env, cwd=REPO_ROOT)
    assert completed.returncode == 0
    assert "screen" in completed.stdout
