"""Fault-injection doubles shared by the serving test modules.

The fakes run inside forked worker processes, so every fault is driven
by *clip metadata* (plain dicts survive the fork and the task queue)
rather than by mutable fake state:

* ``{"raise": True}`` — the pipeline raises mid-detection;
* ``{"crash": True}`` — the worker process dies (``os._exit``), as a
  segfaulting native library would;
* ``{"hang": seconds}`` — the pipeline blocks past any deadline.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.audio.waveform import Waveform
from repro.pipeline.detection import DetectionPipeline

SR = 16_000
_T = np.linspace(0.0, 0.25, 4000, endpoint=False)


def make_clip(meta: dict | None = None, freq: float = 220.0) -> Waveform:
    """A deterministic short test clip carrying fault-injection metadata."""
    return Waveform(samples=0.5 * np.sin(2 * np.pi * freq * _T),
                    sample_rate=SR, metadata=dict(meta or {}))


class FakeResult:
    """Duck-typed DetectionResult carrying just what the service reads."""

    def __init__(self, verdict: bool, score: float, text: str):
        self.is_adversarial = verdict
        self.scores = np.array([score], dtype=np.float64)
        self.target_transcription = text


class FakeBatch:
    def __init__(self, results):
        self.results = results


class FaultyPipeline(DetectionPipeline):
    """A DetectionPipeline double that fails on command.

    ``verdict``/``score``/``text`` parameterise the healthy answer so
    multi-tenant tests can tell tenants apart by their results.
    """

    def __init__(self, verdict: bool = False, score: float = 0.5,
                 text: str = "ok"):
        self.verdict = verdict
        self.score = score
        self.text = text

    def detect(self, audio: Waveform) -> FakeResult:
        return self._one(audio)

    def detect_batch(self, audios) -> FakeBatch:
        return FakeBatch([self._one(audio) for audio in audios])

    def _one(self, audio: Waveform) -> FakeResult:
        meta = audio.metadata or {}
        if meta.get("crash"):
            os._exit(13)
        if meta.get("hang"):
            time.sleep(float(meta["hang"]))
        if meta.get("raise"):
            raise RuntimeError("injected pipeline fault")
        return FakeResult(self.verdict, self.score, self.text)


class FaultyASR:
    """An ASR wrapper that raises on poisoned clips (metadata marker).

    Everything else delegates to the wrapped real ASR, so the detector
    built around it is genuine — the fault surfaces inside the real
    recognition stage, not in a test double.
    """

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _check(self, audio: Waveform) -> None:
        if (audio.metadata or {}).get("poison_asr"):
            raise RuntimeError("injected ASR fault")

    def transcribe(self, audio: Waveform):
        self._check(audio)
        return self._inner.transcribe(audio)

    def transcribe_batch(self, audios):
        for audio in audios:
            self._check(audio)
        return self._inner.transcribe_batch(audios)
