"""Tests for the batch scoring engine: kernels, backends, pair cache.

The fast backend's contract is *bit-identical* scores — every assertion
on values here is ``==`` on floats, not ``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.engine import (
    FastScoringBackend,
    ReferenceScoringBackend,
    ScoreBatchReport,
    SimilarityEngine,
    get_scoring_backend,
    get_shared_score_cache,
    register_scoring_backend,
    resolve_score_cache,
    scoring_backend_names,
)
from repro.similarity.kernels import (
    VECTORIZE_MIN_TOKENS,
    cosine_from_counts,
    edit_distance_fast,
    jaccard_from_sets,
    jaro_similarity_fast,
    jaro_winkler_similarity_fast,
    levenshtein_ratio_fast,
    token_counts,
)
from repro.similarity.score_cache import PairScoreCache
from repro.similarity.scorer import SIMILARITY_METHODS, get_scorer
from repro.similarity.string_metrics import (
    cosine_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_ratio,
)
from repro.text.metrics import edit_distance
from repro.text.normalize import tokenize

# Unrestricted unicode exercises the kernels on inputs far beyond what
# the ASRs emit; the word-ish alphabet produces realistic token overlap.
_any_text = st.text(max_size=40)
_wordish = st.text(alphabet="abcdefgh ", max_size=40)

_ALL_METHODS = (*SIMILARITY_METHODS, "Levenshtein", "PE_Levenshtein")


# ------------------------------------------------------------ kernel parity
@given(_any_text, _any_text)
def test_edit_distance_fast_bit_identical(a, b):
    assert edit_distance_fast(a, b) == edit_distance(a, b)


@given(_any_text, _any_text)
def test_jaro_kernels_bit_identical(a, b):
    assert jaro_similarity_fast(a, b) == jaro_similarity(a, b)
    assert jaro_winkler_similarity_fast(a, b) == jaro_winkler_similarity(a, b)


@given(_any_text, _any_text)
def test_levenshtein_ratio_fast_bit_identical(a, b):
    assert levenshtein_ratio_fast(a, b) == levenshtein_ratio(a, b)


@given(_wordish, _wordish)
def test_token_kernels_bit_identical(a, b):
    counts_a, norm_a = token_counts(tokenize(a))
    counts_b, norm_b = token_counts(tokenize(b))
    assert cosine_from_counts(counts_a, norm_a,
                              counts_b, norm_b) == cosine_similarity(a, b)
    assert jaccard_from_sets(frozenset(counts_a),
                             frozenset(counts_b)) == jaccard_similarity(a, b)


def test_cosine_vectorized_branch_bit_identical():
    # Token sets large enough to take the numpy path.
    rng = np.random.default_rng(5)
    letters = "abcdefghijklmnopqrstuvwxyz"
    vocabulary = [letters[i % 26] + letters[(i // 26) % 26] + letters[i % 13]
                  for i in range(3 * VECTORIZE_MIN_TOKENS)]
    a = " ".join(rng.choice(vocabulary, size=6 * VECTORIZE_MIN_TOKENS))
    b = " ".join(rng.choice(vocabulary, size=6 * VECTORIZE_MIN_TOKENS))
    counts_a, norm_a = token_counts(tokenize(a))
    counts_b, norm_b = token_counts(tokenize(b))
    assert min(len(counts_a), len(counts_b)) >= VECTORIZE_MIN_TOKENS
    assert cosine_from_counts(counts_a, norm_a,
                              counts_b, norm_b) == cosine_similarity(a, b)


def test_jaro_winkler_fast_validates_prefix_scale():
    with pytest.raises(ValueError):
        jaro_winkler_similarity_fast("a", "a", prefix_scale=0.5)


# ----------------------------------------------------------- backend parity
@settings(max_examples=40)
@given(_wordish, _wordish)
def test_fast_backend_bit_identical_all_methods(a, b):
    fast, reference = FastScoringBackend(), ReferenceScoringBackend()
    for method in _ALL_METHODS:
        scorer = get_scorer(method)
        assert (fast.score_pairs(scorer, [(a, b)])[0]
                == reference.score_pairs(scorer, [(a, b)])[0]
                == scorer.score(a, b))


@settings(max_examples=20)
@given(st.lists(st.tuples(_any_text, _any_text), max_size=12))
def test_fast_backend_batch_matches_reference(pairs):
    scorer = get_scorer()
    fast = FastScoringBackend().score_pairs(scorer, pairs)
    reference = ReferenceScoringBackend().score_pairs(scorer, pairs)
    assert fast.dtype == np.float64 and fast.shape == (len(pairs),)
    assert np.array_equal(fast, reference)


def test_backend_registry():
    assert {"fast", "reference"} <= set(scoring_backend_names())
    assert get_scoring_backend("fast").name == "fast"
    assert get_scoring_backend() is get_scoring_backend("fast")  # shared
    with pytest.raises(KeyError):
        get_scoring_backend("nope")

    class UpsideDown:
        name = "upside-down"

        def score_pairs(self, scorer, pairs):
            return 1.0 - ReferenceScoringBackend().score_pairs(scorer, pairs)

    register_scoring_backend("upside-down", UpsideDown)
    try:
        engine = SimilarityEngine(backend="upside-down", cache=False)
        assert engine.score_pair("open the door", "open the door") == 0.0
    finally:
        # Leave the registry as the other tests expect it.
        from repro.similarity import engine as engine_module
        engine_module._BACKEND_FACTORIES.pop("upside-down")
        engine_module._backend_instance.cache_clear()


# ------------------------------------------------------------- score cache
def test_pair_score_cache_hit_miss_and_lru_eviction():
    cache = PairScoreCache(capacity=2)
    key = PairScoreCache.key_for
    assert cache.get(key("t", "a", "b")) is None
    cache.put(key("t", "a", "b"), 0.25)
    cache.put(key("t", "a", "c"), 0.5)
    assert cache.get(key("t", "a", "b")) == 0.25          # refreshes LRU order
    cache.put(key("t", "a", "d"), 0.75)                   # evicts ("a","c")
    assert cache.get(key("t", "a", "c")) is None
    assert cache.get(key("t", "a", "b")) == 0.25
    assert len(cache) == 2
    assert cache.stats.hits == 2 and cache.stats.misses == 2
    assert cache.stats.evictions == 1
    assert cache.stats.hit_rate == 0.5
    cache.clear()
    assert len(cache) == 0 and cache.stats.lookups == 0
    with pytest.raises(ValueError):
        PairScoreCache(capacity=0)


def test_pair_score_cache_keys_are_content_and_direction_aware():
    key = PairScoreCache.key_for
    assert key("t", "a", "b") != key("t", "b", "a")
    assert key("t", "a", "b") != key("u", "a", "b")
    assert key("t", "ab", "c") != key("t", "a", "bc")


def test_pair_score_cache_disk_round_trip(tmp_path):
    path = str(tmp_path / "scores.json")
    cache = PairScoreCache(capacity=8, path=path)
    key = PairScoreCache.key_for("tag", "hello there", "hello their")
    cache.put(key, 0.875)
    assert cache.save() == path

    reloaded = PairScoreCache(capacity=8, path=path)
    assert len(reloaded) == 1
    assert reloaded.get(key) == 0.875

    merged = PairScoreCache(capacity=8)
    assert merged.load(path) == 1
    assert merged.get(key) == 0.875
    with pytest.raises(ValueError):
        PairScoreCache().save()


# ------------------------------------------------------------------- engine
def test_engine_score_apis_agree_and_are_float64():
    engine = SimilarityEngine(cache=PairScoreCache())
    target = "open the front door"
    auxiliaries = ["open the front door", "open a front tour", ""]
    vector = engine.score_texts(target, auxiliaries)
    assert vector.dtype == np.float64 and vector.shape == (3,)
    pairs = engine.score_pairs([(target, text) for text in auxiliaries])
    assert np.array_equal(vector, pairs)
    for text, value in zip(auxiliaries, vector):
        assert engine.score_pair(target, text) == value
    assert engine.score_pairs([]).shape == (0,)


def test_engine_cache_reporting_and_sharing():
    cache = PairScoreCache()
    first = SimilarityEngine(cache=cache)
    second = SimilarityEngine(cache=cache)
    pairs = [("open the door", "open the door"),
             ("open the door", "shut the window")]
    _, report = first.score_pairs_report(pairs)
    assert report == ScoreBatchReport(cache_hits=0, cache_misses=2)
    _, report = second.score_pairs_report(pairs)          # shared cache hits
    assert report == ScoreBatchReport(cache_hits=2, cache_misses=0)
    assert report.hit_rate == 1.0
    # Cache off: every pair is a miss and nothing is stored.
    bare = SimilarityEngine(cache=False)
    _, report = bare.score_pairs_report(pairs)
    assert report.cache_misses == 2 and bare.stats.lookups == 0
    with pytest.raises(RuntimeError):
        bare.save_cache()


def test_duplicate_misses_are_computed_once_per_call():
    calls = []

    class Counting:
        name = "counting"

        def score_pairs(self, scorer, pairs):
            calls.append(len(pairs))
            return ReferenceScoringBackend().score_pairs(scorer, pairs)

    engine = SimilarityEngine(backend=Counting(), cache=PairScoreCache())
    pair = ("open the door", "open the tour")
    values, report = engine.score_pairs_report([pair, pair, pair])
    assert calls == [1]                       # deduplicated before the backend
    assert report.cache_misses == 3 and report.cache_hits == 0
    assert values[0] == values[1] == values[2] == get_scorer().score(*pair)
    _, report = engine.score_pairs_report([pair])
    assert report.cache_hits == 1


def test_engine_accepts_scorer_names_and_instances():
    assert SimilarityEngine().scorer.name == "PE_JaroWinkler"
    assert SimilarityEngine(scorer="Cosine").scorer is get_scorer("Cosine")
    assert SimilarityEngine(scorer=get_scorer("Jaccard")).scorer.name == "Jaccard"
    with pytest.raises(KeyError):
        SimilarityEngine(scorer="nope")


def test_resolve_score_cache(tmp_path):
    assert resolve_score_cache(True) is True
    assert resolve_score_cache(False) is False
    assert resolve_score_cache(None) is False
    assert resolve_score_cache("off") is False
    assert resolve_score_cache("shared") is True
    private = resolve_score_cache("private")
    assert isinstance(private, PairScoreCache) and private.path is None
    path = str(tmp_path / "store.json")
    on_disk = resolve_score_cache(path)
    assert isinstance(on_disk, PairScoreCache) and on_disk.path == path
    existing = PairScoreCache()
    assert resolve_score_cache(existing) is existing
    with pytest.raises(KeyError):
        resolve_score_cache("sharde")        # typo, not a path


def test_shared_score_cache_is_process_wide():
    engine = SimilarityEngine()
    assert engine.cache is get_shared_score_cache()
    assert SimilarityEngine().cache is engine.cache


def test_scorer_cache_tag_distinguishes_configuration():
    assert get_scorer("Cosine").cache_tag != get_scorer("PE_Cosine").cache_tag
    assert get_scorer("Cosine").cache_tag != get_scorer("Jaccard").cache_tag


def test_custom_backend_cannot_poison_the_parity_cache():
    """A backend that does not declare the parity namespace is isolated:
    its (possibly approximate) scores never serve other backends' hits."""

    class Approximate:
        name = "approximate"        # no cache_namespace attribute

        def score_pairs(self, scorer, pairs):
            return np.full(len(pairs), 0.5)

    cache = PairScoreCache()
    exact = SimilarityEngine(backend="fast", cache=cache)
    approximate = SimilarityEngine(backend=Approximate(), cache=cache)
    pair = ("open the door", "open the tour")
    assert approximate.score_pair(*pair) == 0.5
    assert exact.score_pair(*pair) == get_scorer().score(*pair) != 0.5
    # Both populated the one cache, under distinct namespaced keys.
    assert len(cache) == 2
    # The built-in backends do share entries (both are bit-identical).
    reference = SimilarityEngine(backend="reference", cache=cache)
    _, report = reference.score_pairs_report([pair])
    assert report.cache_hits == 1 and len(cache) == 2


# ------------------------------------------------------ features layer glue
def test_scores_from_transcriptions_dtype_is_float64():
    from repro.core.features import scores_from_transcriptions

    vector = scores_from_transcriptions("open the door",
                                        ["open the door", "shut it"])
    assert vector.dtype == np.float64
    assert vector[0] == 1.0
    empty = scores_from_transcriptions("open the door", [])
    assert empty.dtype == np.float64 and empty.shape == (0,)


def test_suite_scoring_matches_scalar_path():
    """score_suites over engine suites == the seed per-pair scalar path."""
    from repro.asr.registry import build_asr, get_shared_lexicon
    from repro.audio.synthesis import SpeechSynthesizer
    from repro.pipeline.engine import TranscriptionEngine
    from repro.text.corpus import attack_command_corpus

    rng = np.random.default_rng(3)
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=3)
    phrases = attack_command_corpus().sample(3, rng)
    audios = [synthesizer.synthesize(phrase) for phrase in phrases]
    target = build_asr("DS0")
    auxiliaries = [build_asr("DS1"), build_asr("GCS")]
    with TranscriptionEngine(target, auxiliaries, workers=0) as engine:
        suites = engine.transcribe_batch(audios)

    scorer = get_scorer()
    expected = np.array([
        [scorer.score(suite.target.text, suite.auxiliaries[aux.short_name].text)
         for aux in auxiliaries]
        for suite in suites], dtype=np.float64)
    for backend in ("fast", "reference"):
        scoring = SimilarityEngine(backend=backend, cache=PairScoreCache())
        matrix = scoring.score_suites(suites, auxiliaries)
        assert matrix.dtype == np.float64
        assert np.array_equal(matrix, expected)


def test_features_for_recompute_honours_the_scoring_engine():
    """The dataset recompute path uses the caller's engine (its backend
    and cache policy), not a fresh default one."""
    from repro.datasets.scores import ScoredDataset

    dataset = ScoredDataset(
        labels=np.array([0, 1]),
        kinds=["benign", "whitebox-ae"],
        target_texts=["open the door", "open the door"],
        auxiliary_texts={"DS1": ["open the door", "no one there"],
                         "GCS": ["open a door", "nobody here"],
                         "AT": ["open the door", "none of it"]},
        method="PE_JaroWinkler",
        scores=np.zeros((2, 3)))
    private = PairScoreCache()
    engine = SimilarityEngine(scorer="Cosine", cache=private)
    shared_lookups_before = get_shared_score_cache().stats.lookups
    features, labels = dataset.features_for(("DS1", "GCS"), method="Cosine",
                                            scoring=engine)
    assert features.shape == (2, 2) and labels.shape == (2,)
    assert private.stats.misses == 4                     # went through `engine`
    assert get_shared_score_cache().stats.lookups == shared_lookups_before
    scorer = get_scorer("Cosine")
    assert features[0, 0] == scorer.score("open the door", "open the door")
    assert features[1, 1] == scorer.score("open the door", "nobody here")


# --------------------------------------------- backend parity, end to end
def test_backend_parity_across_detection_paths():
    """Fast and reference backends produce bit-identical score vectors on
    the sequential, batched, streamed and transform-ensemble paths."""
    from repro import (
        DetectionPipeline,
        MVPEarsDetector,
        StreamConfig,
        StreamingDetector,
        TransformEnsembleDetector,
        parse_transforms,
    )
    from repro.asr.registry import build_asr, get_shared_lexicon
    from repro.audio.synthesis import SpeechSynthesizer
    from repro.pipeline.cache import TranscriptionCache

    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=9)
    clips = [synthesizer.synthesize(text)
             for text in ("open the front door", "turn off all the lights",
                          "play some quiet music")]
    stream_audio = clips[0].with_samples(
        np.concatenate([clip.samples for clip in clips]))
    shared_transcriptions = TranscriptionCache()

    def fitted(backend, transform_ensemble):
        scoring = SimilarityEngine(backend=backend, cache=PairScoreCache())
        if transform_ensemble:
            detector = TransformEnsembleDetector(
                build_asr("DS0"),
                transforms=parse_transforms("quantize:8,lowpass:3000"),
                workers=0, cache=shared_transcriptions, scoring=scoring)
        else:
            detector = MVPEarsDetector(
                build_asr("DS0"), [build_asr("DS1"), build_asr("GCS")],
                workers=0, cache=shared_transcriptions, scoring=scoring)
        n = detector.n_features
        features = np.vstack([np.full((4, n), 0.95), np.full((4, n), 0.05)])
        return detector.fit_features(features, np.array([0] * 4 + [1] * 4))

    for transform_ensemble in (False, True):
        fast = fitted("fast", transform_ensemble)
        reference = fitted("reference", transform_ensemble)

        sequential_fast = [fast.detect(clip).scores for clip in clips]
        sequential_reference = [reference.detect(clip).scores
                                for clip in clips]
        assert np.array_equal(np.array(sequential_fast),
                              np.array(sequential_reference))

        batch_fast = DetectionPipeline(fast).detect_batch(clips)
        batch_reference = DetectionPipeline(reference).detect_batch(clips)
        assert np.array_equal(batch_fast.features, batch_reference.features)
        assert np.array_equal(batch_fast.features,
                              np.array(sequential_reference))

        config = StreamConfig(window_seconds=1.0, hop_seconds=0.5)
        stream_fast = StreamingDetector(fast, config=config) \
            .detect_stream(stream_audio)
        stream_reference = StreamingDetector(reference, config=config) \
            .detect_stream(stream_audio)
        assert len(stream_fast) == len(stream_reference) > 0
        assert np.array_equal(
            np.array([window.scores for window in stream_fast.windows]),
            np.array([window.scores for window in stream_reference.windows]))
