"""Concurrency stress tests for the multi-process detection service.

Every test here attacks the same contract from a different angle: under
concurrent submitters, worker pools and shared queues, the service loses
no request, answers no request twice, isolates failures to the request
that caused them, and produces verdicts bit-identical to the sequential
single-process path.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.core.detector import MVPEarsDetector
from repro.pipeline.detection import DetectionPipeline
from repro.serving.service import DetectionService, ServeResult

from serving_fakes import FaultyPipeline, make_clip


def _train(detector, rng):
    n_aux = detector.n_features
    features = np.vstack([rng.uniform(0.85, 1.0, (40, n_aux)),
                          rng.uniform(0.0, 0.4, (40, n_aux))])
    labels = np.concatenate([np.zeros(40, dtype=int), np.ones(40, dtype=int)])
    return detector.fit_features(features, labels)


@pytest.fixture(scope="module")
def detector(ds0, asr_suite, rng):
    return _train(MVPEarsDetector(ds0, [asr_suite["DS1"], asr_suite["GCS"]],
                                  workers=0, cache=False), rng)


@pytest.fixture(scope="module")
def clips(synthesizer):
    sentences = (
        "the storm passed over the hills before sunset",
        "open the front door",
        "the captain studied the map for a long time",
    )
    return [synthesizer.synthesize(text) for text in sentences]


def _service(pipelines=None, **kwargs):
    pipelines = pipelines if pipelines is not None else {"t": FaultyPipeline()}
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_depth", 256)
    kwargs.setdefault("request_timeout_seconds", 60.0)
    kwargs.setdefault("max_batch_size", 4)
    return DetectionService(pipelines, **kwargs)


# ------------------------------------------------------ no lost, no duplicate


@pytest.mark.timeout(60)
def test_every_request_resolves_exactly_once():
    with _service() as service:
        futures = [service.submit("t", make_clip(), request_id=f"q{i}")
                   for i in range(40)]
        results = [f.result(timeout=30) for f in futures]
    assert all(isinstance(r, ServeResult) for r in results)
    ids = [r.request_id for r in results]
    assert sorted(ids) == sorted(f"q{i}" for i in range(40))
    assert len(set(ids)) == 40


@pytest.mark.timeout(60)
def test_barrier_synchronized_thread_submitters():
    n_threads, per_thread = 8, 10
    barrier = threading.Barrier(n_threads)
    buckets: dict[int, list] = {}

    with _service() as service:
        def submitter(tid):
            barrier.wait()  # all threads hit submit() at the same instant
            futs = [service.submit("t", make_clip(),
                                   request_id=f"t{tid}-{i}")
                    for i in range(per_thread)]
            buckets[tid] = [f.result(timeout=30) for f in futs]

        threads = [threading.Thread(target=submitter, args=(tid,))
                   for tid in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=45)
            assert not thread.is_alive()

    results = [r for bucket in buckets.values() for r in bucket]
    assert len(results) == n_threads * per_thread
    assert all(r.ok for r in results)
    assert len({r.request_id for r in results}) == n_threads * per_thread
    assert service.stats.completed == n_threads * per_thread


@pytest.mark.timeout(60)
def test_stats_account_for_every_submission():
    with _service(workers=1, queue_depth=4,
                  request_timeout_seconds=None) as service:
        blocker = service.submit("t", make_clip({"hang": 1.0}))
        futures = [service.submit("t", make_clip()) for _ in range(12)]
        results = [blocker.result(timeout=30)] \
            + [f.result(timeout=30) for f in futures]
    stats = service.stats
    assert stats.submitted == 13
    assert (stats.completed + stats.rejected + stats.timeouts
            + stats.errors) == 13
    by_status = {status: sum(1 for r in results if r.status == status)
                 for status in ("ok", "rejected", "timeout", "error")}
    assert by_status["ok"] == stats.completed
    assert by_status["rejected"] == stats.rejected


# -------------------------------------------------------- admission control


@pytest.mark.timeout(60)
def test_queue_full_sheds_with_429():
    with _service(workers=1, queue_depth=2, max_batch_size=1,
                  request_timeout_seconds=None) as service:
        blocker = service.submit("t", make_clip({"hang": 1.0}))
        futures = [service.submit("t", make_clip()) for _ in range(8)]
        results = [f.result(timeout=30) for f in futures]
        shed = [r for r in results if r.status == "rejected"]
        assert shed, "expected load shedding with a full queue"
        assert all(r.code == 429 and "queue full" in r.detail for r in shed)
        assert blocker.result(timeout=30).ok
    # Shed requests resolve immediately, not after the queue drains.
    assert service.stats.rejected == len(shed)


@pytest.mark.timeout(60)
def test_in_house_requests_never_exceed_queue_depth():
    depth = 3
    with _service(workers=1, queue_depth=depth, max_batch_size=1,
                  request_timeout_seconds=None) as service:
        blocker = service.submit("t", make_clip({"hang": 0.8}))
        futures = [service.submit("t", make_clip()) for _ in range(10)]
        accepted = 1 + sum(1 for f in futures
                           if f.result(timeout=30).status != "rejected")
        assert accepted <= depth
        assert blocker.result(timeout=30).ok


@pytest.mark.timeout(60)
def test_shedding_recovers_after_drain():
    with _service(workers=1, queue_depth=2, max_batch_size=1,
                  request_timeout_seconds=None) as service:
        blocker = service.submit("t", make_clip({"hang": 0.5}))
        burst = [service.submit("t", make_clip()) for _ in range(6)]
        [f.result(timeout=30) for f in burst]
        assert blocker.result(timeout=30).ok
        late = service.submit("t", make_clip()).result(timeout=30)
        assert late.ok, "service must accept again once the queue drains"


# ------------------------------------------------------- failure isolation


@pytest.mark.timeout(60)
def test_exception_is_isolated_to_the_offending_request():
    with _service(workers=1) as service:
        futures = [service.submit("t", make_clip({"raise": True})
                                  if i == 2 else make_clip())
                   for i in range(6)]
        results = [f.result(timeout=30) for f in futures]
    assert results[2].status == "error"
    assert "injected pipeline fault" in results[2].detail
    assert all(r.ok for i, r in enumerate(results) if i != 2)


@pytest.mark.timeout(60)
def test_unknown_tenant_resolves_typed_404():
    with _service() as service:
        result = service.submit("nope", make_clip()).result(timeout=10)
    assert result.status == "error"
    assert result.code == 404
    assert "unknown tenant" in result.detail


def test_inline_mode_has_the_same_typed_surface():
    service = DetectionService({"t": FaultyPipeline()}, workers=0)
    ok = service.submit("t", make_clip()).result(timeout=10)
    assert ok.ok and ok.code == 200
    bad = service.submit("nope", make_clip()).result(timeout=10)
    assert bad.status == "error" and bad.code == 404
    err = service.submit("t", make_clip({"raise": True})).result(timeout=10)
    assert err.status == "error" and err.code == 500


@pytest.mark.timeout(60)
def test_stop_resolves_outstanding_requests():
    service = _service(workers=1, request_timeout_seconds=None).start()
    blocker = service.submit("t", make_clip({"hang": 5.0}))
    queued = service.submit("t", make_clip())
    service.stop()
    for future in (blocker, queued):
        result = future.result(timeout=10)
        assert result.status == "error"
        assert "service stopped" in result.detail


# ------------------------------------------------------------- multi-tenant


@pytest.mark.timeout(60)
def test_multi_tenant_requests_route_to_their_own_pipeline():
    pipelines = {"benign": FaultyPipeline(verdict=False, text="benign-pipe"),
                 "strict": FaultyPipeline(verdict=True, text="strict-pipe")}
    with _service(pipelines) as service:
        futures = [(tenant, service.submit(tenant, make_clip()))
                   for tenant in ("benign", "strict") for _ in range(5)]
        for tenant, future in futures:
            result = future.result(timeout=30)
            assert result.ok
            assert result.tenant == tenant
            assert result.target_transcription == f"{tenant}-pipe"
            assert result.is_adversarial == (tenant == "strict")


# ----------------------------------------------------------- asyncio front


@pytest.mark.timeout(60)
def test_asyncio_front_door_gathers_concurrent_streams():
    async def drive(service):
        return await asyncio.gather(*[
            service.asubmit("t", make_clip(), request_id=f"a{i}")
            for i in range(30)])

    with _service() as service:
        results = asyncio.run(drive(service))
    assert len(results) == 30
    assert all(r.ok for r in results)
    assert len({r.request_id for r in results}) == 30


# ----------------------------------------------------------- verdict parity


@pytest.mark.timeout(120)
def test_pooled_verdicts_bitwise_match_sequential(detector, clips):
    pipeline = DetectionPipeline(detector)
    workload = [clips[i % len(clips)] for i in range(9)]
    with DetectionService({"d": pipeline}, workers=2, queue_depth=64,
                          request_timeout_seconds=90.0) as service:
        futures = [service.submit("d", clip) for clip in workload]
        served = [f.result(timeout=90) for f in futures]
    assert all(r.ok for r in served), [r.detail for r in served if not r.ok]
    baseline = [pipeline.detect(clip) for clip in workload]
    for got, expected in zip(served, baseline):
        assert got.is_adversarial == bool(expected.is_adversarial)
        assert got.scores == tuple(float(s) for s in expected.scores)
        assert got.target_transcription == expected.target_transcription


@pytest.mark.timeout(180)
def test_transports_bitwise_match_each_other_and_sequential(detector, clips):
    from repro.serving.arena import DESCRIPTOR_NBYTES

    pipeline = DetectionPipeline(detector)
    workload = [clips[i % len(clips)] for i in range(9)]
    baseline = [pipeline.detect(clip) for clip in workload]
    served = {}
    for transport in ("shm", "pickle"):
        with DetectionService({"d": pipeline}, workers=2, queue_depth=64,
                              request_timeout_seconds=90.0,
                              transport=transport) as service:
            assert service.active_transport == transport
            futures = [service.submit("d", clip) for clip in workload]
            served[transport] = [f.result(timeout=90) for f in futures]
            stats = service.stats.snapshot()
        if transport == "shm":
            assert stats.ipc_bytes_out == DESCRIPTOR_NBYTES * len(workload)
        else:
            assert stats.ipc_bytes_out == sum(
                clip.samples.nbytes for clip in workload)
    for transport, results in served.items():
        assert all(r.ok for r in results), \
            [r.detail for r in results if not r.ok]
        for got, expected in zip(results, baseline):
            assert got.is_adversarial == bool(expected.is_adversarial), transport
            assert got.scores == tuple(float(s) for s in expected.scores)
            assert got.target_transcription == expected.target_transcription


@pytest.mark.timeout(60)
def test_transport_validation_and_inline_fallback():
    with pytest.raises(ValueError):
        DetectionService({"t": FaultyPipeline()}, transport="carrier-pigeon")
    inline = DetectionService({"t": FaultyPipeline()}, workers=0)
    assert inline.active_transport == "pickle", \
        "workers=0 runs in-process; there is nothing to ship over shm"


@pytest.mark.timeout(120)
def test_warmed_thread_pool_survives_the_fork(ds0, asr_suite, rng, clips):
    # A detector with live transcription threads: detecting in the
    # parent spins the pool up, so the forked workers inherit executor
    # state whose threads do not exist on their side.  The workers must
    # reset it (engine.reset_after_fork) instead of queueing work no
    # thread will ever run.
    detector = _train(MVPEarsDetector(ds0, [asr_suite["DS1"]],
                                      workers=2, cache=False), rng)
    pipeline = DetectionPipeline(detector)
    baseline = pipeline.detect(clips[0])  # warms the thread pool
    with DetectionService({"d": pipeline}, workers=1, queue_depth=8,
                          request_timeout_seconds=60.0) as service:
        result = service.submit("d", clips[0]).result(timeout=90)
    assert result.ok, result.detail
    assert result.is_adversarial == bool(baseline.is_adversarial)
    assert result.scores == tuple(float(s) for s in baseline.scores)


@pytest.mark.timeout(120)
def test_parity_holds_with_shared_cache_dir(detector, clips, tmp_path):
    pipeline = DetectionPipeline(detector)
    baseline = [pipeline.detect(clip) for clip in clips]
    with DetectionService({"d": pipeline}, workers=2, queue_depth=64,
                          request_timeout_seconds=90.0,
                          cache_dir=str(tmp_path / "shared")) as service:
        futures = [service.submit("d", clip)
                   for clip in clips for _ in range(3)]
        served = [f.result(timeout=90) for f in futures]
    assert all(r.ok for r in served), [r.detail for r in served if not r.ok]
    for i, got in enumerate(served):
        expected = baseline[i // 3]
        assert got.is_adversarial == bool(expected.is_adversarial)
        assert got.scores == tuple(float(s) for s in expected.scores)
    # The shared stores must actually have been written.
    assert (tmp_path / "shared" / "transcriptions.jsonl").exists()
    assert (tmp_path / "shared" / "scores.jsonl").exists()


@pytest.mark.timeout(240)
def test_benchmark_reports_numbers_with_parity():
    from repro.serving.bench import run_serve_benchmark

    report = run_serve_benchmark(n_streams=8, n_clips=2, workers=1,
                                 timeout_seconds=120.0)
    assert report["parity_mismatches"] == 0
    assert report["failed_requests"] == 0
    assert report["service"] is not None
    assert report["service"]["throughput_rps"] > 0
    assert report["service"]["p99_ms"] >= report["service"]["p50_ms"] > 0
    assert report["sequential"]["wall_seconds"] > 0


@pytest.mark.timeout(120)
def test_benchmark_refuses_numbers_on_divergence(monkeypatch):
    import importlib

    from repro.serving.bench import run_serve_benchmark

    build_module = importlib.import_module("repro.build")

    class TwoFacedPipeline(FaultyPipeline):
        """Serves one verdict through the pool, another sequentially."""

        def detect(self, audio):
            result = self._one(audio)
            result.is_adversarial = True  # sequential baseline disagrees
            return result

    monkeypatch.setattr(build_module, "build", lambda spec, fit=True: None)
    monkeypatch.setattr(
        build_module, "build_pipeline",
        lambda spec=None, detector=None, observer=None: TwoFacedPipeline())
    report = run_serve_benchmark(n_streams=6, n_clips=2, workers=1,
                                 timeout_seconds=60.0)
    assert report["parity_mismatches"] > 0
    assert report["service"] is None, \
        "a diverging run must not report performance numbers"
