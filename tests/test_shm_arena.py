"""Tests of the shared-memory sample arena (the zero-copy data plane).

Covers the allocator round trip (hypothesis-driven alloc/free/wrap
sequences with invariant checks), generation-tag staleness detection,
content interning across a fork, the waveform glue, and the leak
harness: no ``/dev/shm`` segment may survive ``destroy()`` — or a
:class:`~repro.serving.service.DetectionService` ``stop()``, whatever
happened to the workers (see also ``test_fault_injection.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio.waveform import Waveform
from repro.serving.arena import (
    ArenaError,
    ShmArena,
    StaleSlot,
    list_arena_segments,
    restore_waveform,
    share_waveform,
)


@pytest.fixture()
def arena():
    a = ShmArena(1 << 16, slots=16)
    yield a
    a.destroy()


def _array(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(n)


# ----------------------------------------------------------------- allocator
class TestAllocator:
    def test_write_view_round_trip(self, arena):
        data = _array(512)
        ref = arena.write(data)
        assert ref is not None
        view = arena.view(ref)
        np.testing.assert_array_equal(view, data)
        assert not view.flags.writeable
        assert arena.owns(view)
        assert not arena.owns(data)

    def test_alloc_none_when_capacity_exhausted(self, arena):
        assert arena.write(np.zeros(arena.capacity_bytes // 8)) is not None
        assert arena.write(np.zeros(8)) is None

    def test_alloc_none_when_slots_exhausted(self):
        a = ShmArena(1 << 16, slots=2)
        try:
            refs = [a.write(np.zeros(4)) for _ in range(2)]
            assert all(ref is not None for ref in refs)
            assert a.write(np.zeros(4)) is None
            assert a.free(refs[0])
            assert a.write(np.zeros(4)) is not None
        finally:
            a.destroy()

    def test_free_restores_capacity_and_coalesces(self, arena):
        refs = [arena.write(_array(256, seed=i)) for i in range(3)]
        for ref in refs:
            assert arena.free(ref)
        assert arena.free_bytes == arena.capacity_bytes
        assert arena.live_slots == 0
        # One coalesced extent again: a full-capacity alloc must fit.
        big = arena.write(np.zeros(arena.capacity_bytes // 8))
        assert big is not None

    def test_double_free_is_ignored(self, arena):
        ref = arena.write(_array(64))
        assert arena.free(ref)
        assert not arena.free(ref)
        assert arena.free_bytes == arena.capacity_bytes

    def test_stale_view_raises_after_free(self, arena):
        ref = arena.write(_array(64))
        arena.free(ref)
        with pytest.raises(StaleSlot):
            arena.view(ref)

    def test_stale_view_raises_after_slot_reuse(self):
        a = ShmArena(1 << 16, slots=1)
        try:
            old = a.write(_array(64, seed=1))
            a.free(old)
            new = a.write(_array(64, seed=2))
            assert new is not None and new.slot == old.slot
            with pytest.raises(StaleSlot):
                a.view(old)
            np.testing.assert_array_equal(a.view(new), _array(64, seed=2))
        finally:
            a.destroy()

    def test_view_rejects_corrupt_refs(self, arena):
        from dataclasses import replace

        ref = arena.write(_array(16))
        with pytest.raises(ArenaError):
            arena.view(replace(ref, slot=arena.n_slots + 3))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 600), st.booleans()),
                    min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    def test_alloc_free_sequences_keep_invariants(self, plan, rnd):
        """Random alloc/free interleavings: conservation, isolation, reuse."""
        a = ShmArena(8192, slots=8)
        live: dict[int, tuple] = {}
        try:
            for i, (n, do_free) in enumerate(plan):
                if do_free and live:
                    key = rnd.choice(sorted(live))
                    ref, expected = live.pop(key)
                    assert a.free(ref)
                    with pytest.raises(StaleSlot):
                        a.view(ref)
                else:
                    data = _array(n, seed=i)
                    ref = a.write(data)
                    if ref is None:  # full / out of slots: valid outcome
                        assert (a.free_bytes < data.nbytes
                                or a.live_slots == a.n_slots
                                or max((s for _, s in a._free_extents),
                                       default=0) < data.nbytes)
                        continue
                    live[i] = (ref, data)
                # Conservation + every live allocation still intact.
                assert a.allocated_bytes + a.free_bytes == a.capacity_bytes
                for ref, expected in live.values():
                    np.testing.assert_array_equal(a.view(ref), expected)
            for ref, _ in live.values():
                assert a.free(ref)
            assert a.free_bytes == a.capacity_bytes
            assert a.live_slots == 0
        finally:
            a.destroy()


# ----------------------------------------------------------------- interning
class TestInterning:
    def test_intern_is_idempotent_and_owned(self, arena):
        data = _array(128)
        first = arena.intern("k", data)
        second = arena.intern("k", _array(128, seed=9))  # key wins, not bytes
        np.testing.assert_array_equal(first, data)
        np.testing.assert_array_equal(second, data)
        assert arena.owns(first) and arena.owns(second)

    def test_find_missing_returns_none(self, arena):
        assert arena.find("missing") is None

    def test_fork_child_reads_parent_interned_entries(self, arena):
        data = _array(256, seed=3)
        arena.intern("clip", data)
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()

        def child(q):
            found = arena.find("clip")
            fresh = arena.intern("new-key", _array(8))
            q.put((found is not None and bool(np.array_equal(found, data)),
                   fresh is None, arena.is_owner))

        proc = ctx.Process(target=child, args=(queue,))
        proc.start()
        found_ok, fresh_is_none, child_owns = queue.get(timeout=10)
        proc.join(timeout=10)
        assert found_ok, "child could not read the pre-fork interned entry"
        assert fresh_is_none, "a fork child must never allocate"
        assert not child_owns


# ------------------------------------------------------------- waveform glue
class TestWaveformGlue:
    def test_share_restore_round_trip(self, arena):
        audio = Waveform(samples=_array(400) / 4.0, sample_rate=16_000,
                         text="hello", label="benign", metadata={"x": 1})
        clip = share_waveform(arena, audio)
        assert clip is not None
        restored = restore_waveform(arena, clip)
        np.testing.assert_array_equal(restored.samples, audio.samples)
        assert restored.sample_rate == audio.sample_rate
        assert restored.text == "hello"
        assert restored.label == "benign"
        assert restored.metadata == {"x": 1}
        assert arena.owns(restored.samples)  # zero-copy, no ingest copy

    def test_restore_raises_on_reclaimed_slot(self, arena):
        clip = share_waveform(arena, Waveform(samples=_array(64)))
        arena.free(clip.ref)
        with pytest.raises(StaleSlot):
            restore_waveform(arena, clip)

    def test_share_none_when_clip_does_not_fit(self):
        a = ShmArena(1024, slots=4)
        try:
            assert share_waveform(a, Waveform(samples=_array(4096))) is None
        finally:
            a.destroy()


# ------------------------------------------------------- engine sample arena
class TestEngineAdoption:
    def test_transcribe_batch_adopts_inputs_bit_identically(self, ds0,
                                                            asr_suite,
                                                            synthesizer):
        from repro.pipeline.engine import TranscriptionEngine

        clips = [synthesizer.synthesize(text)
                 for text in ("open the front door",
                              "the storm passed over the hills")]
        baseline = TranscriptionEngine(ds0, [asr_suite["DS1"]], workers=0,
                                       cache=False)
        expected = baseline.transcribe_batch(clips)
        a = ShmArena(1 << 22)
        try:
            engine = TranscriptionEngine(ds0, [asr_suite["DS1"]], workers=0,
                                         cache=False, sample_arena=a)
            adopted = engine._adopt_samples(clips)
            assert all(a.owns(clip.samples) for clip in adopted)
            got = engine.transcribe_batch(clips)
            assert [s.target.text for s in got] \
                == [s.target.text for s in expected]
            assert [s.auxiliary_texts for s in got] \
                == [s.auxiliary_texts for s in expected]
            # A replayed batch reuses the interned entries: the arena
            # holds one resident copy per distinct clip, not per batch.
            live = a.live_slots
            engine.transcribe_batch(clips)
            assert a.live_slots == live
        finally:
            a.destroy()

    def test_shared_sample_arena_is_env_gated(self, monkeypatch):
        from repro.pipeline import engine as engine_mod

        engine_mod.get_shared_sample_arena.cache_clear()
        monkeypatch.delenv(engine_mod.SAMPLE_ARENA_ENV, raising=False)
        assert engine_mod.get_shared_sample_arena() is None

        engine_mod.get_shared_sample_arena.cache_clear()
        monkeypatch.setenv(engine_mod.SAMPLE_ARENA_ENV, "2")
        a = engine_mod.get_shared_sample_arena()
        try:
            assert a is not None
            assert a.capacity_bytes == 2 << 20
        finally:
            engine_mod.get_shared_sample_arena.cache_clear()
            if a is not None:
                a.destroy()

        monkeypatch.setenv(engine_mod.SAMPLE_ARENA_ENV, "not-a-number")
        assert engine_mod.get_shared_sample_arena() is None
        engine_mod.get_shared_sample_arena.cache_clear()


# -------------------------------------------------------------- leak harness
def _assert_no_segments():
    assert list_arena_segments() == [], (
        f"leaked /dev/shm segments: {list_arena_segments()}")


class TestLeakHarness:
    def test_destroy_unlinks_segment(self):
        a = ShmArena(4096)
        assert a.name in list_arena_segments()
        a.destroy()
        _assert_no_segments()
        a.destroy()  # idempotent

    def test_service_stop_unlinks(self):
        from serving_fakes import FaultyPipeline, make_clip

        from repro.serving.service import DetectionService

        service = DetectionService({"t": FaultyPipeline()}, workers=1,
                                   request_timeout_seconds=10.0)
        with service:
            assert service.active_transport == "shm"
            assert len(list_arena_segments()) == 1
            assert service.submit("t", make_clip()).result(timeout=30).ok
        _assert_no_segments()

    def test_service_stop_unlinks_after_sigkilled_worker_respawn(self):
        from serving_fakes import FaultyPipeline, make_clip

        from repro.serving.service import DetectionService

        service = DetectionService({"t": FaultyPipeline()}, workers=2,
                                   request_timeout_seconds=15.0)
        with service:
            assert service.submit("t", make_clip()).result(timeout=30).ok
            victim = next(iter(service._procs.values()))
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 20.0
            while service.stats.respawns == 0:
                assert time.monotonic() < deadline, "respawn never happened"
                time.sleep(0.02)
            assert service.submit("t", make_clip()).result(timeout=30).ok
        _assert_no_segments()

    def test_service_stop_with_requests_in_flight_unlinks_and_frees(self):
        from serving_fakes import FaultyPipeline, make_clip

        from repro.serving.service import DetectionService

        service = DetectionService({"t": FaultyPipeline()}, workers=1,
                                   request_timeout_seconds=30.0)
        service.start()
        futures = [service.submit("t", make_clip({"hang": 5.0}))
                   for _ in range(3)]
        time.sleep(0.2)  # let the dispatcher move them into the arena
        service.stop()
        for future in futures:
            assert future.result(timeout=5).status in ("error", "timeout")
        _assert_no_segments()
