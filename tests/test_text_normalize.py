"""Tests for text normalisation and tokenisation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.normalize import normalize_text, tokenize


def test_lowercase_and_punctuation():
    assert normalize_text("Hello, World!") == "hello world"


def test_contraction_expansion():
    assert normalize_text("I wish you wouldn't") == "i wish you would not"


def test_contraction_requires_word_boundary():
    # "the safe" must not be rewritten via the "he s" contraction rule.
    assert normalize_text("unlock the safe now") == "unlock the safe now"
    assert normalize_text("the smell of bread") == "the smell of bread"


def test_apostrophe_handling():
    assert normalize_text("don't stop") == "do not stop"


def test_tokenize_empty():
    assert tokenize("") == []
    assert tokenize("   ") == []


def test_tokenize_words():
    assert tokenize("Open the front DOOR") == ["open", "the", "front", "door"]


def test_digits_are_stripped():
    assert normalize_text("call 911 now") == "call now"


@given(st.text(max_size=80))
def test_normalize_idempotent(text):
    once = normalize_text(text)
    assert normalize_text(once) == once


@given(st.text(max_size=80))
def test_normalize_only_lowercase_letters_and_spaces(text):
    normalized = normalize_text(text)
    assert all(c.islower() or c == " " for c in normalized)
    assert "  " not in normalized


@given(st.text(max_size=80))
def test_tokenize_matches_normalized_split(text):
    assert tokenize(text) == [t for t in normalize_text(text).split(" ") if t]
