"""Tests for the Waveform type, WAV I/O, noise and perturbation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio.metrics import (
    relative_perturbation,
    signal_to_noise_ratio_db,
    similarity_percent,
)
from repro.audio.noise import add_noise_snr, pink_noise, white_noise
from repro.audio.waveform import Waveform
from repro.audio.wavio import read_wav, write_wav


def _wave(samples, **kwargs):
    return Waveform(samples=np.asarray(samples, dtype=float), **kwargs)


def test_waveform_validation():
    with pytest.raises(ValueError):
        Waveform(samples=np.zeros((2, 2)))
    with pytest.raises(ValueError):
        Waveform(samples=np.zeros(4), sample_rate=0)


def test_waveform_properties():
    wave = _wave([0.0, 0.5, -0.5, 0.0], sample_rate=4)
    assert len(wave) == 4
    assert wave.duration == 1.0
    assert wave.peak == 0.5
    assert 0 < wave.rms < 0.5


def test_waveform_ops_are_functional():
    wave = _wave([0.2, -0.2])
    clipped = wave.clipped(0.1)
    assert clipped.peak == pytest.approx(0.1)
    assert wave.peak == pytest.approx(0.2)
    assert wave.with_label("x").label == "x"
    assert wave.with_text("hi").text == "hi"


def test_padding_and_mixing():
    a = _wave([1.0, 1.0])
    b = _wave([0.5])
    mixed = a.mixed_with(b, gain=2.0)
    assert np.allclose(mixed.samples, [2.0, 1.0])
    assert len(a.padded_to(5)) == 5
    assert len(a.padded_to(1)) == 1


def test_mixing_rejects_rate_mismatch():
    with pytest.raises(ValueError):
        _wave([1.0]).mixed_with(_wave([1.0], sample_rate=8000))


def test_normalized_peak():
    wave = _wave([0.1, -0.2]).normalized(0.9)
    assert wave.peak == pytest.approx(0.9)


@settings(max_examples=25)
@given(samples=st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=400))
def test_wav_roundtrip(samples, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("wav") / "clip.wav")
    original = _wave(samples)
    write_wav(path, original)
    loaded = read_wav(path)
    assert loaded.sample_rate == original.sample_rate
    assert np.allclose(loaded.samples, np.clip(original.samples, -1, 1), atol=1e-3)


def test_read_wav_rejects_garbage(tmp_path):
    path = tmp_path / "not_a_wav.wav"
    path.write_bytes(b"hello world, definitely not RIFF data")
    with pytest.raises(ValueError):
        read_wav(str(path))


def test_noise_generators(rng):
    assert white_noise(0, rng).shape == (0,)
    noise = white_noise(4096, rng)
    assert noise.std() == pytest.approx(1.0, rel=0.1)
    pink = pink_noise(4096, rng)
    assert pink.std() == pytest.approx(1.0, rel=0.2)


def test_add_noise_snr_hits_target(rng):
    clean = _wave(np.sin(np.linspace(0, 200 * np.pi, 16000)))
    noisy = add_noise_snr(clean, snr_db=-6.0, rng=rng)
    achieved = signal_to_noise_ratio_db(clean, noisy)
    assert achieved == pytest.approx(-6.0, abs=1.0)
    assert noisy.label == "nontargeted-ae"


def test_perturbation_metrics():
    clean = _wave(np.ones(100))
    same = _wave(np.ones(100))
    assert similarity_percent(clean, same) == pytest.approx(100.0)
    assert relative_perturbation(clean, same) == 0.0
    shifted = _wave(np.ones(100) * 1.01)
    assert 98.0 < similarity_percent(clean, shifted) < 100.0
    assert signal_to_noise_ratio_db(clean, same) == float("inf")
