"""Tests for the declarative spec tree, repro.build and the registries.

Covers the PR's acceptance criteria: spec JSON round-trips are identity,
the environment overlay wins over file values, a spec-built detector is
score-identical to the legacy kwarg-built one in all three defense
modes, a ``register_asr`` plugin participates in a suite by name, the
legacy ``default_detector`` kwargs still work under
``DeprecationWarning``, and every registry raises one
``UnknownComponentError``.
"""

import json
import warnings

import numpy as np
import pytest

from repro.asr.base import ASRSystem, Transcription
from repro.asr.registry import (
    available_asr_names,
    build_asr,
    default_suite_names,
    register_asr,
    unregister_asr,
)
from repro.build import build, build_batcher, build_pipeline, build_streaming
from repro.core.bootstrap import default_detector
from repro.errors import UnknownComponentError
from repro.specs import (
    ASRSpec,
    DetectorSpec,
    InvalidSpecError,
    ScoringSpec,
    SuiteSpec,
    TransformSpec,
)

SPEC_VARIANTS = {
    "multi-asr": lambda: DetectorSpec.default(scale="tiny"),
    "transform": lambda: DetectorSpec.default(
        scale="tiny", defense="transform", transforms="quantize:6,lowpass:2500"),
    "combined": lambda: DetectorSpec.default(
        scale="tiny", defense="combined", transforms="quantize:6,lowpass:2500"),
    "mixed": lambda: DetectorSpec(
        suite=SuiteSpec(
            target=ASRSpec("DS0"),
            auxiliaries=(ASRSpec("DS1"),
                         ASRSpec("DS0", transform=TransformSpec("median:5")),
                         ASRSpec("GCS"))),
        scoring=ScoringSpec(scorer="PE_Jaccard", backend="reference",
                            cache="private")),
}


# ------------------------------------------------------------- round trips
@pytest.mark.parametrize("variant", sorted(SPEC_VARIANTS))
def test_spec_dict_json_round_trip_is_identity(variant):
    spec = SPEC_VARIANTS[variant]()
    payload = json.loads(json.dumps(spec.to_dict()))
    assert DetectorSpec.from_dict(payload) == spec


def test_spec_file_round_trip_is_identity(tmp_path):
    spec = DetectorSpec.default(scale="tiny", defense="combined")
    path = spec.save(str(tmp_path / "system.json"))
    assert DetectorSpec.from_json(path) == spec


def test_asr_spec_serialises_compactly():
    assert ASRSpec("DS1").to_dict() == "DS1"
    assert ASRSpec("DS0", TransformSpec("quantize:8")).to_dict() == {
        "name": "DS0", "transform": "quantize:8"}


# -------------------------------------------------------------- env overlay
def test_env_overlay_wins_over_file_values(tmp_path):
    path = DetectorSpec.default(scale="tiny").save(str(tmp_path / "c.json"))
    env = {"REPRO_SCALE": "medium", "REPRO_WORKERS": "3",
           "REPRO_SCORING_BACKEND": "reference", "REPRO_CLASSIFIER": "KNN"}
    spec = DetectorSpec.load(path, env=env)
    assert spec.training.scale == "medium"
    assert spec.pipeline.workers == 3
    assert spec.scoring.backend == "reference"
    assert spec.classifier.name == "KNN"
    # Unset variables leave file values untouched.
    untouched = DetectorSpec.load(path, env={})
    assert untouched == DetectorSpec.from_json(path)


def test_env_overlay_reports_bad_values():
    with pytest.raises(InvalidSpecError, match="REPRO_WORKERS"):
        DetectorSpec.default().with_env_overlay({"REPRO_WORKERS": "many"})


def test_with_value_replaces_one_leaf():
    spec = DetectorSpec.default()
    changed = spec.with_value("scoring.backend", "reference")
    assert changed.scoring.backend == "reference"
    assert changed.with_value("scoring.backend", "fast") == spec


# --------------------------------------------------------------- validation
def test_validation_names_every_bad_field_with_choices():
    spec = DetectorSpec.from_dict({
        "suite": {"target": "SIRI",
                  "auxiliaries": [{"name": "DS0", "transform": "reverb:3"}]},
        "scoring": {"scorer": "nope", "backend": "slow"},
        "classifier": "MLP",
        "training": {"scale": "gigantic", "source": "csv"},
    })
    with pytest.raises(InvalidSpecError) as excinfo:
        spec.validate()
    message = str(excinfo.value)
    for field, choice in (("suite.target.name", "DS0"),
                          ("suite.auxiliaries[0].transform", "quantize"),
                          ("scoring.scorer", "PE_JaroWinkler"),
                          ("scoring.backend", "fast"),
                          ("classifier.name", "SVM"),
                          ("training.scale", "tiny"),
                          ("training.source", "bundle")):
        assert field in message and choice in message
    assert len(excinfo.value.problems) == 7


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(InvalidSpecError, match="backnd"):
        DetectorSpec.from_dict({"scoring": {"backnd": "fast"}})
    with pytest.raises(InvalidSpecError, match="allowed"):
        DetectorSpec.from_dict({"sute": {}})


def test_empty_auxiliaries_is_invalid():
    with pytest.raises(InvalidSpecError, match="auxiliaries"):
        DetectorSpec.from_dict({"suite": {"auxiliaries": []}}).validate()


def test_scored_source_rejects_uncovered_suites():
    spec = DetectorSpec.from_dict({
        "suite": {"target": "DS0",
                  "auxiliaries": [{"name": "DS0", "transform": "quantize:8"}]},
        "training": {"scale": "tiny", "source": "scored"}})
    with pytest.raises(InvalidSpecError, match="scored"):
        build(spec)
    # A non-default target is equally uncovered by the scored dataset.
    retargeted = DetectorSpec.from_dict({
        "suite": {"target": "KAL", "auxiliaries": ["DS1"]},
        "training": {"scale": "tiny", "source": "scored"}})
    with pytest.raises(InvalidSpecError, match="target"):
        build(retargeted)


def test_validation_never_reads_cache_files(tmp_path):
    # A cache *path* that exists but holds junk must not break (or even
    # be opened by) validation; it only matters at build time.
    junk = tmp_path / "junk.json"
    junk.write_text("{not json")
    before = junk.read_text()
    spec = (DetectorSpec.default(scale="tiny")
            .with_value("scoring.cache", str(junk))
            .with_value("pipeline.cache", str(junk)))
    assert spec.validate() is spec
    assert junk.read_text() == before


def test_unregister_restores_shadowed_builtin():
    from repro.asr.registry import asr_name_resolvable

    original = build_asr("DS1")

    class _Shadow(_EchoASR):
        def __init__(self):
            self._inner = original      # not via build_asr: DS1 is shadowed

    register_asr("DS1", _Shadow)
    try:
        assert isinstance(build_asr("DS1"), _Shadow)
    finally:
        unregister_asr("DS1")
    assert default_suite_names() == ("DS0", "DS1", "GCS", "AT")
    restored = build_asr("DS1")
    assert not isinstance(restored, _Shadow)
    assert type(restored) is type(original)
    assert asr_name_resolvable("KAL-fs3") and not asr_name_resolvable("SIRI")


# ---------------------------------------------------- spec / legacy parity
@pytest.mark.parametrize("mode", ["multi-asr", "transform", "combined"])
def test_spec_build_matches_legacy_kwargs(mode, synthesizer):
    spec_kwargs = dict(scale="tiny", defense=mode)
    if mode != "multi-asr":
        spec_kwargs["transforms"] = "quantize:6,lowpass:2500"
    from_spec = build(DetectorSpec.default(**spec_kwargs))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = default_detector(**spec_kwargs)
    assert from_spec.system_name == legacy.system_name
    for text in ("turn off all the lights", "open the front door"):
        clip = synthesizer.synthesize(text)
        spec_result = from_spec.detect(clip)
        legacy_result = legacy.detect(clip)
        assert np.array_equal(spec_result.scores, legacy_result.scores)
        assert spec_result.is_adversarial == legacy_result.is_adversarial


def test_config_file_alone_reproduces_headline_system(tmp_path, synthesizer):
    path = DetectorSpec.default(scale="tiny").save(str(tmp_path / "sys.json"))
    from_file = build(DetectorSpec.from_json(path))
    from_path = build(path)        # build() accepts the path directly
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = default_detector(scale="tiny")
    assert from_file.system_name == "DS0+{DS1, GCS, AT}"
    clip = synthesizer.synthesize("the weather is nice today")
    reference = legacy.detect(clip).scores
    assert np.array_equal(from_file.detect(clip).scores, reference)
    assert np.array_equal(from_path.detect(clip).scores, reference)


def test_legacy_kwargs_warn_but_bare_call_does_not():
    with pytest.deprecated_call():
        default_detector(scale="tiny")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        build(DetectorSpec.default(scale="tiny"))      # spec path never warns


def test_legacy_instance_arguments_still_work():
    from repro.defenses.transforms import BitDepthQuantize, NoiseFlood
    from repro.pipeline.cache import TranscriptionCache
    from repro.similarity.score_cache import PairScoreCache

    cache = TranscriptionCache()
    score_cache = PairScoreCache()
    with pytest.deprecated_call():
        detector = default_detector(
            scale="tiny", defense="transform",
            transforms=[BitDepthQuantize(6), NoiseFlood(20.0, seed=3)],
            cache=cache, score_cache=score_cache)
    assert detector.transform_names == ("quantize-6", "noise-20-s3")
    assert detector.engine.cache is cache
    assert detector.scoring.cache is score_cache


# ------------------------------------------------------------ ASR registry
class _EchoASR(ASRSystem):
    """Minimal plugin ASR: delegates to DS1 (cheap, deterministic)."""

    name = "Echo (test plugin)"
    short_name = "ECHO"

    def __init__(self):
        self._inner = build_asr("DS1")

    def _transcribe_samples(self, samples, sample_rate) -> Transcription:
        return self._inner._transcribe_samples(samples, sample_rate)


@pytest.fixture
def echo_asr():
    register_asr("ECHO", _EchoASR)
    try:
        yield
    finally:
        unregister_asr("ECHO")


def test_registered_plugin_joins_a_suite_by_name(echo_asr, synthesizer):
    assert "ECHO" in available_asr_names()
    spec = DetectorSpec.from_dict({
        "suite": {"target": "DS0", "auxiliaries": ["DS1", "ECHO"]},
        "training": {"scale": "tiny", "source": "bundle"}})
    detector = build(spec)
    assert detector.system_name == "DS0+{DS1, ECHO}"
    result = detector.detect(synthesizer.synthesize("open the front door"))
    # The plugin echoes DS1, so their similarity columns agree exactly.
    assert result.scores[0] == result.scores[1]
    # CLI suite choices are registry-derived, so the plugin is selectable.
    from repro.cli import build_parser
    parser = build_parser()
    args = parser.parse_args(["screen", "x.wav", "--target", "DS0",
                              "--auxiliaries", "DS1,ECHO"])
    assert args.auxiliaries == "DS1,ECHO"


def test_default_suite_is_registry_derived():
    assert default_suite_names() == ("DS0", "DS1", "GCS", "AT")
    register_asr("ZZZ-test", _EchoASR)
    try:
        # Plugins are available but do not change the paper's default suite.
        assert "ZZZ-test" in available_asr_names()
        assert default_suite_names() == ("DS0", "DS1", "GCS", "AT")
    finally:
        unregister_asr("ZZZ-test")
    assert "ZZZ-test" not in available_asr_names()


def test_reregistration_replaces_cached_instance(echo_asr):
    first = build_asr("ECHO")
    assert build_asr("ECHO") is first
    register_asr("ECHO", _EchoASR)
    assert build_asr("ECHO") is not first


# ------------------------------------------------- unified registry errors
@pytest.mark.parametrize("lookup,kind", [
    (lambda: build_asr("SIRI"), "ASR system"),
    (lambda: __import__("repro.ml.registry", fromlist=["build_classifier"])
        .build_classifier("MLP"), "classifier"),
    (lambda: __import__("repro.similarity.scorer", fromlist=["get_scorer"])
        .get_scorer("nope"), "similarity method"),
    (lambda: __import__("repro.similarity.engine",
                        fromlist=["get_scoring_backend"])
        .get_scoring_backend("slow"), "scoring backend"),
    (lambda: __import__("repro.similarity.engine",
                        fromlist=["resolve_score_cache"])
        .resolve_score_cache("sharde"), "score-cache policy"),
    (lambda: __import__("repro.pipeline.engine",
                        fromlist=["resolve_transcription_cache"])
        .resolve_transcription_cache("sharde"), "transcription-cache policy"),
    (lambda: __import__("repro.defenses.transforms",
                        fromlist=["parse_transform"])
        .parse_transform("reverb:3"), "transform"),
    (lambda: DetectorSpec.default(defense="waveguard"), "defense mode"),
])
def test_every_registry_raises_unknown_component_error(lookup, kind):
    with pytest.raises(UnknownComponentError) as excinfo:
        lookup()
    error = excinfo.value
    assert error.kind == kind
    assert error.available, "available names must be reported"
    assert str(error.name) in str(error)
    # Backwards compatible with both historical exception types.
    assert isinstance(error, ValueError) and isinstance(error, KeyError)


def test_unknown_component_error_message_is_plain():
    error = UnknownComponentError("widget", "x", ["a", "b"])
    assert str(error) == "unknown widget 'x'; available: ['a', 'b']"


# ------------------------------------------------------- serving from spec
def test_build_streaming_uses_serving_section(tiny_detector_spec):
    spec = (tiny_detector_spec
            .with_value("serving.window_seconds", 1.0)
            .with_value("serving.hop_seconds", 1.0)
            .with_value("serving.trigger_windows", 1))
    streaming = build_streaming(spec)
    assert streaming.config.window_seconds == 1.0
    assert streaming.config.hop_seconds == 1.0
    assert streaming.config.trigger_windows == 1


def test_build_batcher_uses_serving_section(tiny_detector_spec):
    spec = (tiny_detector_spec
            .with_value("serving.max_batch_size", 3)
            .with_value("serving.max_latency_seconds", 0.5))
    with build_batcher(spec) as batcher:
        assert batcher.max_batch_size == 3
        assert batcher.max_latency_seconds == 0.5


def test_serving_transport_field_validates_and_overlays():
    from repro.specs import SERVE_TRANSPORTS, DetectorSpec, ServingSpec

    assert ServingSpec().transport == "shm"
    assert ServingSpec.from_dict({"transport": "pickle"}).problems() == []
    assert ServingSpec.from_dict({"transport": "smoke-signal"}).problems()
    round_trip = ServingSpec.from_dict(ServingSpec(transport="pickle").to_dict())
    assert round_trip.transport == "pickle"
    overlaid = DetectorSpec().with_env_overlay(
        {"REPRO_SERVE_TRANSPORT": "pickle"})
    assert overlaid.serving.transport == "pickle"
    assert set(SERVE_TRANSPORTS) == {"shm", "pickle"}


def test_build_pipeline_and_detect(tiny_detector_spec, synthesizer):
    pipeline = build_pipeline(tiny_detector_spec)
    batch = pipeline.detect_batch(
        [synthesizer.synthesize("turn the volume to maximum")])
    assert len(batch) == 1


@pytest.fixture(scope="module")
def tiny_detector_spec():
    return DetectorSpec.default(scale="tiny")


def test_scored_dataset_with_custom_suite_keeps_column_order(tiny_bundle):
    from repro.datasets.scores import compute_scored_dataset

    # Auxiliaries deliberately in non-paper order: columns must follow
    # the dataset's own order, not the global AUXILIARY_ORDER.
    suite = SuiteSpec(target=ASRSpec("DS0"),
                      auxiliaries=(ASRSpec("GCS"), ASRSpec("DS1")))
    dataset = compute_scored_dataset(tiny_bundle, workers=0, suite=suite)
    assert dataset.auxiliary_order == ("GCS", "DS1")
    gcs_ds1, _ = dataset.features_for(("GCS", "DS1"))
    ds1_gcs, _ = dataset.features_for(("DS1", "GCS"))
    assert np.array_equal(gcs_ds1[:, 0], ds1_gcs[:, 1])
    assert np.array_equal(dataset.scores, gcs_ds1)
    with pytest.raises(UnknownComponentError, match="AT"):
        dataset.features_for(("AT",))


def test_override_transforms_refuse_noncanonical_suites():
    from repro.defenses.transforms import BitDepthQuantize

    spec = DetectorSpec.from_dict({
        "suite": {"target": "DS0",
                  "auxiliaries": ["DS1",
                                  {"name": "DS1", "transform": "median:5"}]},
        "training": {"scale": "tiny", "source": "bundle"}})
    with pytest.raises(InvalidSpecError, match="non-target"):
        build(spec, fit=False,
              overrides={"transforms": [BitDepthQuantize(6)]})


# ------------------------------------------------------ shape edge cases
def test_transformed_non_target_members_are_kept():
    # A transformed view of a *non-target* member is not the canonical
    # ensemble shape; the generic path must keep every declared member.
    spec = DetectorSpec.from_dict({
        "suite": {"target": "DS0",
                  "auxiliaries": ["DS1",
                                  {"name": "DS0", "transform": "quantize:8"},
                                  {"name": "DS1", "transform": "median:5"}]},
        "training": {"scale": "tiny", "source": "bundle"}})
    detector = build(spec, fit=False)
    assert [a.short_name for a in detector.auxiliary_asrs] == [
        "DS1", "DS0~quantize-8", "DS1~median-5"]


def test_checked_in_combined_config_builds_every_member():
    import os
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "examples", "configs",
        "combined-six-versions.json")
    detector = build(DetectorSpec.from_json(path), fit=False)
    assert detector.n_features == 6
    assert "DS1~median-5" in {a.short_name for a in detector.auxiliary_asrs}


def test_default_uses_auto_source_so_nondefault_targets_train_on_bundle():
    from repro.build import _training_source
    assert DetectorSpec.default().training.source == "auto"
    assert _training_source(DetectorSpec.default()) == "scored"
    assert _training_source(DetectorSpec.default(target="KAL")) == "bundle"
    assert _training_source(
        DetectorSpec.default(auxiliaries=("DS1", "KAL"))) == "bundle"


def test_ensemble_from_spec_refuses_plain_suites_before_building():
    from repro.defenses.ensemble import TransformEnsembleDetector

    with pytest.raises(InvalidSpecError, match="transform-ensemble shape"):
        TransformEnsembleDetector.from_spec(DetectorSpec.default(scale="tiny"))
    ensemble = TransformEnsembleDetector.from_spec(
        DetectorSpec.default(scale="tiny", defense="transform",
                             transforms="quantize:6"), fit=False)
    assert ensemble.transform_names == ("quantize-6",)
