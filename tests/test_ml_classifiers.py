"""Tests for the from-scratch classifiers."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.registry import CLASSIFIER_NAMES, build_classifier
from repro.ml.scaler import StandardScaler
from repro.ml.svm import KernelSVMClassifier, SVMClassifier, polynomial_feature_map
from repro.ml.tree import DecisionTreeClassifier


def _blobs(n=120, seed=0, gap=2.0):
    rng = np.random.default_rng(seed)
    benign = rng.normal(loc=[gap, gap], scale=0.5, size=(n // 2, 2))
    adversarial = rng.normal(loc=[0.0, 0.0], scale=0.5, size=(n // 2, 2))
    features = np.vstack([benign, adversarial])
    labels = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
    return features, labels


def _circles(n=200, seed=1):
    rng = np.random.default_rng(seed)
    radius = np.concatenate([rng.uniform(0.0, 0.6, n // 2), rng.uniform(1.2, 1.8, n // 2)])
    angle = rng.uniform(0, 2 * np.pi, n)
    features = np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])
    labels = np.concatenate([np.ones(n // 2, dtype=int), np.zeros(n // 2, dtype=int)])
    return features, labels


ALL_CLASSIFIERS = [
    SVMClassifier(degree=3),
    KernelSVMClassifier(degree=3),
    KNNClassifier(n_neighbors=5),
    DecisionTreeClassifier(max_depth=6),
    RandomForestClassifier(n_estimators=20, seed=200),
    LogisticRegressionClassifier(),
]


@pytest.mark.parametrize("classifier", ALL_CLASSIFIERS, ids=lambda c: type(c).__name__)
def test_separable_blobs(classifier):
    features, labels = _blobs()
    classifier.fit(features, labels)
    assert classifier.score(features, labels) >= 0.95
    predictions = classifier.predict(features)
    assert set(np.unique(predictions)) <= {0, 1}


@pytest.mark.parametrize("classifier", [
    SVMClassifier(degree=3), KNNClassifier(5),
    RandomForestClassifier(n_estimators=30, seed=200)],
    ids=lambda c: type(c).__name__)
def test_nonlinear_circles(classifier):
    features, labels = _circles()
    classifier.fit(features, labels)
    assert classifier.score(features, labels) >= 0.85


def test_polynomial_feature_map_dimensions():
    features = np.ones((4, 2))
    expanded = polynomial_feature_map(features, 3)
    # 1 + 2 + 3 + 4 terms for degree 3 over 2 variables.
    assert expanded.shape == (4, 10)


def test_unfitted_classifiers_raise():
    for classifier in (SVMClassifier(), KNNClassifier(), DecisionTreeClassifier(),
                       RandomForestClassifier(n_estimators=2),
                       LogisticRegressionClassifier(), KernelSVMClassifier()):
        with pytest.raises(RuntimeError):
            classifier.decision_function(np.zeros((1, 2)))


def test_label_validation():
    classifier = SVMClassifier()
    with pytest.raises(ValueError):
        classifier.fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))
    with pytest.raises(ValueError):
        classifier.fit(np.zeros((4, 2)), np.array([0, 1]))


def test_one_dimensional_features_accepted():
    features = np.concatenate([np.zeros(20), np.ones(20)])
    labels = np.concatenate([np.ones(20, dtype=int), np.zeros(20, dtype=int)])
    classifier = SVMClassifier().fit(features, labels)
    assert classifier.score(features, labels) == 1.0


def test_registry_builds_expected_types():
    assert set(CLASSIFIER_NAMES) == {"SVM", "KNN", "RandomForest"}
    assert isinstance(build_classifier("SVM"), SVMClassifier)
    assert isinstance(build_classifier("KNN"), KNNClassifier)
    assert isinstance(build_classifier("RandomForest"), RandomForestClassifier)
    assert isinstance(build_classifier("LogisticRegression"), LogisticRegressionClassifier)
    with pytest.raises(KeyError):
        build_classifier("MLP")


def test_random_forest_probabilities_in_unit_interval():
    features, labels = _blobs()
    forest = RandomForestClassifier(n_estimators=10, seed=200).fit(features, labels)
    probabilities = forest.predict_proba(features)
    assert np.all((0 <= probabilities) & (probabilities <= 1))


def test_logistic_probabilities_monotone_in_score():
    features, labels = _blobs()
    model = LogisticRegressionClassifier().fit(features, labels)
    scores = model.decision_function(features)
    probs = model.predict_proba(features)
    order = np.argsort(scores)
    assert np.all(np.diff(probs[order]) >= -1e-9)


def test_standard_scaler_roundtrip():
    rng = np.random.default_rng(3)
    data = rng.normal(5.0, 3.0, size=(50, 4))
    scaler = StandardScaler()
    transformed = scaler.fit_transform(data)
    assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)
    with pytest.raises(RuntimeError):
        StandardScaler().transform(data)


def test_knn_validation():
    with pytest.raises(ValueError):
        KNNClassifier(0)
