"""Tests for LPC analysis and the feature-extractor front ends."""

import numpy as np
import pytest

from repro.dsp.features import (
    LogMelFeatureExtractor,
    LpcFeatureExtractor,
    MfccFeatureExtractor,
)
from repro.dsp.lpc import lpc_cepstra, lpc_coefficients, lpc_coefficients_batch


def test_lpc_recovers_ar_process():
    # Synthesise an AR(2) process and check the LPC coefficients match.
    rng = np.random.default_rng(0)
    true = np.array([1.3, -0.4])
    signal = np.zeros(4000)
    noise = rng.standard_normal(4000) * 0.01
    for i in range(2, 4000):
        signal[i] = true[0] * signal[i - 1] + true[1] * signal[i - 2] + noise[i]
    estimated = lpc_coefficients(signal[500:1500], order=2)
    assert np.allclose(estimated, true, atol=0.1)


def test_lpc_silent_frame_is_zero():
    assert np.allclose(lpc_coefficients(np.zeros(400), 10), 0.0)


def test_lpc_batch_matches_single():
    rng = np.random.default_rng(1)
    frames = rng.standard_normal((4, 400))
    batch = lpc_coefficients_batch(frames, 8)
    for i in range(4):
        assert np.allclose(batch[i], lpc_coefficients(frames[i], 8), atol=1e-8)


def test_lpc_validation():
    with pytest.raises(ValueError):
        lpc_coefficients(np.zeros(5), 10)
    with pytest.raises(ValueError):
        lpc_coefficients_batch(np.zeros((2, 400)), 0)


def test_lpc_cepstra_shape_and_energy_column():
    rng = np.random.default_rng(2)
    frames = rng.standard_normal((3, 400))
    cepstra = lpc_cepstra(frames, 12)
    assert cepstra.shape == (3, 13)
    quiet = lpc_cepstra(frames * 1e-4, 12)
    assert np.all(quiet[:, -1] < cepstra[:, -1])


@pytest.mark.parametrize("extractor", [
    MfccFeatureExtractor(),
    LogMelFeatureExtractor(),
    LogMelFeatureExtractor(n_ceps=20, per_frame_normalization=False),
    LpcFeatureExtractor(style="cepstrum"),
    LpcFeatureExtractor(style="envelope"),
])
def test_front_ends_produce_finite_features(extractor):
    signal = np.random.default_rng(3).standard_normal(8000) * 0.1
    features = extractor.transform(signal)
    assert features.shape[1] == extractor.feature_dim
    assert features.shape[0] > 0
    assert np.all(np.isfinite(features))


def test_front_ends_empty_signal():
    extractor = LogMelFeatureExtractor()
    assert extractor.transform(np.zeros(10)).shape[0] >= 0


def test_lpc_extractor_rejects_unknown_style():
    with pytest.raises(ValueError):
        LpcFeatureExtractor(style="wavelet")
