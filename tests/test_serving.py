"""Tests for the serving layer: chunker, aggregator, streaming, micro-batcher."""

import threading

import numpy as np
import pytest

from repro.audio.waveform import Waveform
from repro.core.detector import MVPEarsDetector
from repro.pipeline.detection import DetectionPipeline
from repro.serving.aggregator import ADVERSARIAL, BENIGN, StreamAggregator
from repro.serving.batcher import MicroBatcher
from repro.serving.chunker import StreamConfig, chunk_waveform
from repro.serving.metrics import ServingMetrics
from repro.serving.streaming import StreamingDetector

SR = 16_000


def _train(detector, rng):
    n_aux = detector.n_features
    features = np.vstack([rng.uniform(0.85, 1.0, (40, n_aux)),
                          rng.uniform(0.0, 0.4, (40, n_aux))])
    labels = np.concatenate([np.zeros(40, dtype=int), np.ones(40, dtype=int)])
    return detector.fit_features(features, labels)


@pytest.fixture(scope="module")
def detector(ds0, asr_suite, rng):
    return _train(MVPEarsDetector(ds0, [asr_suite["DS1"], asr_suite["GCS"]],
                                  workers=2, cache=False), rng)


@pytest.fixture(scope="module")
def clips(synthesizer):
    sentences = (
        "the storm passed over the hills before sunset",
        "open the front door",
        "the captain studied the map for a long time",
    )
    return [synthesizer.synthesize(text) for text in sentences]


def _ramp(n, sample_rate=SR):
    return Waveform(np.linspace(-0.5, 0.5, n), sample_rate=sample_rate)


# ---------------------------------------------------------------- chunker


def test_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(window_seconds=0)
    with pytest.raises(ValueError):
        StreamConfig(hop_seconds=-1.0)
    with pytest.raises(ValueError):
        StreamConfig(min_tail_fraction=1.5)
    with pytest.raises(ValueError):
        StreamConfig(trigger_windows=0)
    assert StreamConfig(window_seconds=2.0).hop_seconds == 1.0  # default half


def test_chunker_exact_tiling():
    config = StreamConfig(window_seconds=1.0, hop_seconds=1.0)
    windows = chunk_waveform(_ramp(3 * SR), config)
    assert [w.start_sample for w in windows] == [0, SR, 2 * SR]
    assert all(w.end_sample - w.start_sample == SR for w in windows)
    assert [w.index for w in windows] == [0, 1, 2]
    # The window samples are exactly the stream slices.
    stream = _ramp(3 * SR)
    for w in windows:
        assert np.array_equal(w.audio.samples,
                              stream.samples[w.start_sample:w.end_sample])


def test_chunker_overlap_and_boundaries():
    config = StreamConfig(window_seconds=1.0, hop_seconds=0.5,
                          min_tail_fraction=0.25)
    # Exactly 2 windows fit in 1.5 s with 0.5 s hop: [0,1) and [0.5,1.5).
    windows = chunk_waveform(_ramp(int(1.5 * SR)), config)
    assert [(w.start_sample, w.end_sample) for w in windows] == [
        (0, SR), (SR // 2, SR + SR // 2)]
    # One extra sample creates a tail [1.0s, 1.5s+1] that clears 25%.
    windows = chunk_waveform(_ramp(int(1.5 * SR) + 1), config)
    assert windows[-1].start_sample == SR
    assert windows[-1].end_sample == int(1.5 * SR) + 1


def test_chunker_tail_policy():
    config = StreamConfig(window_seconds=1.0, hop_seconds=1.0,
                          min_tail_fraction=0.5)
    # Tail of 0.25 window < 0.5 threshold: dropped.
    assert len(chunk_waveform(_ramp(SR + SR // 4), config)) == 1
    # Tail of 0.5 window meets the threshold: emitted.
    windows = chunk_waveform(_ramp(SR + SR // 2), config)
    assert len(windows) == 2
    assert windows[-1].duration == pytest.approx(0.5)
    # A stream shorter than one window is always emitted whole.
    short = chunk_waveform(_ramp(SR // 8), config)
    assert len(short) == 1
    assert short[0].duration == pytest.approx(1 / 8)
    # Empty stream: no windows.
    assert chunk_waveform(Waveform(np.zeros(0), sample_rate=SR), config) == []


class GeometryStubPipeline:
    """Returns benign placeholder results; used to compare window cuts."""

    def detect_batch(self, audios):
        from repro.core.detector import DetectionResult
        from repro.pipeline.detection import BatchDetectionResult

        results = [DetectionResult(is_adversarial=False, scores=np.zeros(1),
                                   target_transcription="", elapsed_seconds=0.0,
                                   auxiliary_transcriptions={})
                   for _ in audios]
        return BatchDetectionResult(
            results=results, features=np.zeros((len(audios), 1)),
            predictions=np.zeros(len(audios), dtype=int),
            stage_seconds={"total": 0.0})


@pytest.mark.parametrize("n_samples,window,hop,tail", [
    (3 * SR, 1.0, 1.0, 0.25),          # exact tiling
    (int(2.3 * SR), 1.0, 0.5, 0.25),   # overlap with tail
    (int(1.5 * SR), 1.0, 0.5, 0.25),   # overlap, covered end (no tail)
    (int(2.6 * SR), 0.5, 0.8, 0.25),   # hop > window (sparse sampling)
    (SR + SR // 8, 1.0, 1.0, 0.5),     # tail below threshold: dropped
    (SR // 4, 1.0, 1.0, 0.5),          # shorter than one window
])
def test_session_cuts_same_windows_as_offline_chunker(n_samples, window,
                                                      hop, tail):
    """The incremental session and iter_windows share one geometry."""
    config = StreamConfig(window_seconds=window, hop_seconds=hop,
                          min_tail_fraction=tail)
    stream = _ramp(n_samples)
    offline = [(w.start_sample, w.end_sample)
               for w in chunk_waveform(stream, config)]

    streaming = StreamingDetector(pipeline=GeometryStubPipeline(),
                                  config=config)
    one_shot = streaming.detect_stream(stream)
    session = streaming.session()
    step = int(0.3 * SR)  # pushes never aligned with window boundaries
    for start in range(0, n_samples, step):
        session.push(Waveform(stream.samples[start:start + step],
                              sample_rate=SR))
    incremental = session.flush()

    for result in (one_shot, incremental):
        cut = [(round(w.start_seconds * SR), round(w.end_seconds * SR))
               for w in result.windows]
        assert cut == offline


# -------------------------------------------------------------- aggregator


def _feed(aggregator, verdicts):
    states = []
    for i, adversarial in enumerate(verdicts):
        states.append(aggregator.update(float(i), float(i + 1), adversarial))
    return states


def test_hysteresis_single_noisy_window_does_not_flip():
    aggregator = StreamAggregator(trigger_windows=2, release_windows=2)
    states = _feed(aggregator, [False, True, False, False])
    assert states == [BENIGN] * 4
    assert aggregator.finalize() == []


def test_hysteresis_trigger_and_release():
    aggregator = StreamAggregator(trigger_windows=2, release_windows=2)
    states = _feed(aggregator, [False, True, True, True, False, False, False])
    assert states == [BENIGN, BENIGN, ADVERSARIAL, ADVERSARIAL,
                      ADVERSARIAL, BENIGN, BENIGN]
    spans = aggregator.finalize()
    assert len(spans) == 1
    # The span covers every adversarial window of the episode, including
    # the one that accumulated toward the trigger.
    assert (spans[0].start_seconds, spans[0].end_seconds) == (1.0, 4.0)
    assert spans[0].n_windows == 3


def test_hysteresis_open_episode_closed_at_finalize():
    aggregator = StreamAggregator(trigger_windows=2, release_windows=2)
    _feed(aggregator, [True, True])
    assert aggregator.state == ADVERSARIAL
    spans = aggregator.finalize()
    assert len(spans) == 1
    assert (spans[0].start_seconds, spans[0].end_seconds) == (0.0, 2.0)


def test_hysteresis_trigger_one_flags_immediately():
    aggregator = StreamAggregator(trigger_windows=1, release_windows=1)
    states = _feed(aggregator, [True, False, True])
    assert states == [ADVERSARIAL, BENIGN, ADVERSARIAL]
    assert len(aggregator.finalize()) == 2


def test_sub_trigger_streak_discarded_on_benign():
    aggregator = StreamAggregator(trigger_windows=3, release_windows=1)
    _feed(aggregator, [True, True, False, True, True, True])
    spans = aggregator.finalize()
    assert len(spans) == 1
    assert spans[0].start_seconds == 3.0  # episode restarts after the reset


# --------------------------------------------------------------- streaming


def test_streaming_matches_per_clip_verdicts(detector, clips):
    """Acceptance: window-aligned streaming == per-clip detection."""
    longest = max(len(clip) for clip in clips)
    padded = [clip.padded_to(longest) for clip in clips]
    stream = Waveform(np.concatenate([clip.samples for clip in padded]),
                      sample_rate=SR)
    config = StreamConfig(window_seconds=longest / SR,
                          hop_seconds=longest / SR, trigger_windows=1,
                          release_windows=1)
    result = StreamingDetector(detector, config=config).detect_stream(stream)
    assert len(result) == len(clips)
    for clip, window in zip(padded, result.windows):
        single = detector.detect(clip)
        assert window.is_adversarial == single.is_adversarial
        assert np.array_equal(window.scores, single.scores)
        assert window.target_transcription == single.target_transcription


def test_streaming_incremental_matches_one_shot(detector, clips):
    stream = Waveform(np.concatenate([clip.samples for clip in clips]),
                      sample_rate=SR)
    config = StreamConfig(window_seconds=0.8, hop_seconds=0.4)
    one_shot = StreamingDetector(detector, config=config).detect_stream(stream)

    session = StreamingDetector(detector, config=config).session()
    # Push in awkward 0.3 s pieces so window boundaries never align with
    # push boundaries.
    step = int(0.3 * SR)
    for start in range(0, len(stream), step):
        session.push(Waveform(stream.samples[start:start + step],
                              sample_rate=SR))
    incremental = session.flush()

    assert len(incremental) == len(one_shot)
    for a, b in zip(one_shot.windows, incremental.windows):
        assert (a.start_seconds, a.end_seconds) == (b.start_seconds, b.end_seconds)
        assert a.is_adversarial == b.is_adversarial
        assert np.array_equal(a.scores, b.scores)
    assert [tuple((s.start_seconds, s.end_seconds)) for s in one_shot.spans] == \
           [tuple((s.start_seconds, s.end_seconds)) for s in incremental.spans]


def test_stream_session_guards(detector):
    session = StreamingDetector(detector).session()
    session.push(_ramp(SR // 2))
    with pytest.raises(ValueError):
        session.push(_ramp(100, sample_rate=8_000))
    result = session.flush()
    assert len(result) == 1  # short stream emitted whole
    with pytest.raises(RuntimeError):
        session.push(_ramp(100))
    with pytest.raises(RuntimeError):
        session.flush()
    with pytest.raises(ValueError):
        StreamingDetector()  # neither detector nor pipeline


# ------------------------------------------------------------ micro-batcher


class StubPipeline:
    """Counts detect_batch calls; fails whole batches containing poison."""

    def __init__(self):
        self.batches = []

    def detect_batch(self, audios):
        from repro.pipeline.detection import BatchDetectionResult

        self.batches.append(len(audios))
        if any(audio.label == "poison" for audio in audios):
            raise RuntimeError("poison in batch")
        results = [f"ok:{audio.label}" for audio in audios]
        return BatchDetectionResult(
            results=results, features=np.zeros((len(audios), 1)),
            predictions=np.zeros(len(audios), dtype=int),
            stage_seconds={"total": 0.0})


def _tagged(label):
    return Waveform(np.zeros(16), sample_rate=SR, label=label)


def test_batcher_size_trigger():
    pipeline = StubPipeline()
    with MicroBatcher(pipeline, max_batch_size=3,
                      max_latency_seconds=10.0) as batcher:
        futures = batcher.submit_many([_tagged(f"c{i}") for i in range(3)])
        # Dispatched by size, long before the 10 s latency deadline.
        results = [f.result(timeout=5) for f in futures]
    assert results == ["ok:c0", "ok:c1", "ok:c2"]
    assert batcher.stats.size_dispatches >= 1
    assert batcher.stats.latency_dispatches == 0
    assert max(pipeline.batches) == 3


def test_batcher_latency_trigger():
    pipeline = StubPipeline()
    with MicroBatcher(pipeline, max_batch_size=100,
                      max_latency_seconds=0.05) as batcher:
        future = batcher.submit(_tagged("solo"))
        assert future.result(timeout=5) == "ok:solo"
        # Single-request fallback: a batch of one, dispatched on latency.
        assert batcher.stats.latency_dispatches == 1
        assert batcher.stats.largest_batch == 1


def test_batcher_immediate_dispatch_with_zero_latency():
    pipeline = StubPipeline()
    with MicroBatcher(pipeline, max_batch_size=8,
                      max_latency_seconds=0.0) as batcher:
        assert batcher.detect(_tagged("now")) == "ok:now"


def test_batcher_exception_isolation():
    pipeline = StubPipeline()
    with MicroBatcher(pipeline, max_batch_size=4,
                      max_latency_seconds=10.0) as batcher:
        futures = batcher.submit_many(
            [_tagged("a"), _tagged("poison"), _tagged("b"), _tagged("c")])
        # The poisoned request fails alone; its batch-mates all succeed.
        assert futures[0].result(timeout=5) == "ok:a"
        with pytest.raises(RuntimeError, match="poison"):
            futures[1].result(timeout=5)
        assert futures[2].result(timeout=5) == "ok:b"
        assert futures[3].result(timeout=5) == "ok:c"
    assert batcher.stats.isolated_failures == 1


def test_batcher_drains_on_close():
    pipeline = StubPipeline()
    batcher = MicroBatcher(pipeline, max_batch_size=100,
                           max_latency_seconds=30.0)
    futures = batcher.submit_many([_tagged("x"), _tagged("y")])
    batcher.close(wait=True)
    assert [f.result(timeout=0) for f in futures] == ["ok:x", "ok:y"]
    with pytest.raises(RuntimeError):
        batcher.submit(_tagged("late"))
    batcher.close()  # idempotent


def test_batcher_result_count_mismatch_fails_futures():
    class ShortPipeline(StubPipeline):
        def detect_batch(self, audios):
            result = super().detect_batch(audios)
            return type(result)(results=result.results[:-1],
                                features=result.features,
                                predictions=result.predictions,
                                stage_seconds=result.stage_seconds)

    with MicroBatcher(ShortPipeline(), max_batch_size=2,
                      max_latency_seconds=0.0) as batcher:
        future = batcher.submit(_tagged("lost"))
        with pytest.raises(RuntimeError, match="returned 0 results"):
            future.result(timeout=5)


def test_batcher_survives_raising_metrics_observer():
    class BrokenMetrics(ServingMetrics):
        def observe_queue_wait(self, seconds):
            raise RuntimeError("broken observer")

    pipeline = StubPipeline()
    with MicroBatcher(pipeline, max_batch_size=1, max_latency_seconds=0.0,
                      metrics=BrokenMetrics()) as batcher:
        first = batcher.submit(_tagged("a"))
        with pytest.raises(RuntimeError, match="broken observer"):
            first.result(timeout=5)
        # The scheduler thread survived and still serves later requests
        # (they fail the same way, but their futures resolve).
        second = batcher.submit(_tagged("b"))
        with pytest.raises(RuntimeError, match="broken observer"):
            second.result(timeout=5)


def test_batcher_validation():
    with pytest.raises(ValueError):
        MicroBatcher(StubPipeline(), max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatcher(StubPipeline(), max_latency_seconds=-1)


def test_batcher_scores_bit_identical_to_sequential(detector, clips):
    """Acceptance: micro-batched == sequential pipeline, bit for bit."""
    pipeline = DetectionPipeline(detector)
    sequential = [pipeline.detect_batch([clip]).results[0] for clip in clips]
    with MicroBatcher(pipeline, max_batch_size=len(clips),
                      max_latency_seconds=0.2) as batcher:
        batched = batcher.detect_many(clips)
    for a, b in zip(sequential, batched):
        assert np.array_equal(a.scores, b.scores)
        assert a.is_adversarial == b.is_adversarial
        assert a.target_transcription == b.target_transcription


def test_batcher_concurrent_submitters(detector, clips):
    pipeline = DetectionPipeline(detector)
    results = {}

    def client(i, clip):
        with_batcher = batcher.detect(clip)
        results[i] = with_batcher

    with MicroBatcher(pipeline, max_batch_size=4,
                      max_latency_seconds=0.05) as batcher:
        threads = [threading.Thread(target=client, args=(i, clip))
                   for i, clip in enumerate(clips * 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert len(results) == len(clips) * 2
    for i, clip in enumerate(clips * 2):
        direct = detector.detect(clip)
        assert results[i].is_adversarial == direct.is_adversarial
        assert np.allclose(results[i].scores, direct.scores)


# ----------------------------------------------------------------- metrics


def test_metrics_observe_pipeline_batches(detector, clips):
    metrics = ServingMetrics()
    pipeline = DetectionPipeline(detector, observer=metrics.observe_batch)
    pipeline.detect_batch(clips)
    pipeline.detect_batch(clips[:1])
    snap = metrics.snapshot()
    assert snap["requests"] == len(clips) + 1
    assert snap["batches"] == 2
    assert snap["stages"]["total"]["clips"] == len(clips) + 1
    assert snap["stages"]["recognition"]["seconds"] > 0
    assert "throughput_clips_per_s" in snap["stages"]["total"]
    assert metrics.format_table()  # renders without error


def test_metrics_latency_percentiles():
    metrics = ServingMetrics()
    for value in (0.010, 0.020, 0.030, 0.100):
        metrics.observe_latency(value)
    metrics.observe_queue_wait(0.005)
    snap = metrics.snapshot()
    assert snap["latency_seconds"]["max"] == pytest.approx(0.100)
    assert 0.010 <= snap["latency_seconds"]["p50"] <= 0.030
    assert snap["queue_wait_seconds"]["p50"] == pytest.approx(0.005)


def test_batcher_records_metrics(detector, clips):
    metrics = ServingMetrics()
    pipeline = DetectionPipeline(detector, observer=metrics.observe_batch)
    with MicroBatcher(pipeline, max_batch_size=len(clips),
                      max_latency_seconds=0.05, metrics=metrics) as batcher:
        batcher.detect_many(clips)
    snap = metrics.snapshot()
    assert snap["requests"] == len(clips)
    assert snap["latency_seconds"]["max"] > 0
