"""Fault-injection tests for the detection service.

Each test injects one failure mode — a pipeline that raises, a worker
that dies mid-batch, a detection that hangs past its deadline, a real
ASR stage that throws — and asserts the service converts it into the
matching *typed* result (500/504/429) while staying alive: respawned
workers, retried bystanders, no hung futures, no raw exceptions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import MVPEarsDetector
from repro.pipeline.detection import DetectionPipeline
from repro.serving.arena import list_arena_segments
from repro.serving.service import DetectionService

from serving_fakes import FaultyASR, FaultyPipeline, make_clip


@pytest.fixture(autouse=True)
def no_leaked_arena_segments():
    """Every fault path must leave /dev/shm clean after stop().

    Crashed workers, hung workers, poisoned batches — whatever a test
    injected, the service's arena segment must be unlinked once the
    service stops.  (Asserted on entry too, so a leak is pinned on the
    test that caused it, not the next one.)
    """
    assert list_arena_segments() == []
    yield
    assert list_arena_segments() == [], \
        f"test leaked /dev/shm segments: {list_arena_segments()}"


def _service(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_depth", 64)
    kwargs.setdefault("request_timeout_seconds", 30.0)
    kwargs.setdefault("max_batch_size", 4)
    return DetectionService({"t": FaultyPipeline()}, **kwargs)


# -------------------------------------------------------------- exceptions


@pytest.mark.timeout(60)
def test_pipeline_exception_becomes_typed_500():
    with _service() as service:
        result = service.submit("t", make_clip({"raise": True})) \
            .result(timeout=30)
    assert result.status == "error"
    assert result.code == 500
    assert "RuntimeError" in result.detail
    assert result.is_adversarial is None and result.scores is None


@pytest.mark.timeout(60)
def test_exception_does_not_cost_a_worker():
    with _service() as service:
        bad = service.submit("t", make_clip({"raise": True})).result(timeout=30)
        good = service.submit("t", make_clip()).result(timeout=30)
    assert bad.status == "error"
    assert good.ok
    assert service.stats.respawns == 0, \
        "an exception must be caught in the worker, not kill it"


@pytest.mark.timeout(120)
def test_real_asr_fault_surfaces_as_typed_error(ds0, asr_suite, rng,
                                                synthesizer):
    detector = MVPEarsDetector(
        ds0, [FaultyASR(asr_suite["DS1"]), asr_suite["GCS"]],
        workers=0, cache=False)
    n_aux = detector.n_features
    features = np.vstack([rng.uniform(0.85, 1.0, (20, n_aux)),
                          rng.uniform(0.0, 0.4, (20, n_aux))])
    labels = np.concatenate([np.zeros(20, dtype=int), np.ones(20, dtype=int)])
    detector.fit_features(features, labels)
    clean = synthesizer.synthesize("open the front door")
    poisoned = clean.with_samples(clean.samples, poison_asr=True)
    with DetectionService({"d": DetectionPipeline(detector)}, workers=1,
                          queue_depth=8,
                          request_timeout_seconds=60.0) as service:
        bad = service.submit("d", poisoned).result(timeout=60)
        good = service.submit("d", clean).result(timeout=60)
    assert bad.status == "error" and "injected ASR fault" in bad.detail
    assert good.ok


# ----------------------------------------------------------------- crashes


@pytest.mark.timeout(60)
def test_crash_is_retried_once_then_typed_500():
    with _service() as service:
        result = service.submit("t", make_clip({"crash": True})) \
            .result(timeout=30)
    assert result.status == "error"
    assert result.code == 500
    assert result.retried, "a crash victim must be retried once"
    assert "died twice" in result.detail
    assert service.stats.retries == 1
    assert service.stats.respawns >= 2


@pytest.mark.timeout(60)
def test_crash_respawns_worker_and_service_continues():
    with _service() as service:
        service.submit("t", make_clip({"crash": True})).result(timeout=30)
        after = service.submit("t", make_clip()).result(timeout=30)
    assert after.ok, "the pool must recover after a worker death"
    assert service.stats.respawns >= 1


@pytest.mark.timeout(60)
def test_crash_bystanders_are_retried_and_succeed():
    with _service() as service:
        poison = service.submit("t", make_clip({"crash": True}))
        bystander = service.submit("t", make_clip())
        poison_result = poison.result(timeout=30)
        bystander_result = bystander.result(timeout=30)
    assert poison_result.status == "error"
    assert bystander_result.ok
    assert bystander_result.retried, \
        "the bystander died with the worker and must have been retried"


@pytest.mark.timeout(120)
def test_worker_dying_mid_batch_loses_no_request():
    with _service(workers=2, max_batch_size=4) as service:
        futures = [service.submit("t",
                                  make_clip({"crash": True})
                                  if i == 5 else make_clip(),
                                  request_id=f"b{i}")
                   for i in range(12)]
        results = [f.result(timeout=60) for f in futures]
    assert len(results) == 12
    assert results[5].status == "error"
    others = [r for i, r in enumerate(results) if i != 5]
    assert all(r.ok for r in others), \
        [(r.request_id, r.status, r.detail) for r in others if not r.ok]


@pytest.mark.timeout(60)
def test_retried_flag_reported_on_success():
    with _service() as service:
        poison = service.submit("t", make_clip({"crash": True}))
        survivor = service.submit("t", make_clip())
        poison.result(timeout=30)
        result = survivor.result(timeout=30)
    assert result.ok and result.retried


# ------------------------------------------------------------------- hangs


@pytest.mark.timeout(60)
def test_hang_past_deadline_times_out_504():
    with _service(request_timeout_seconds=0.5) as service:
        result = service.submit("t", make_clip({"hang": 30.0})) \
            .result(timeout=30)
    assert result.status == "timeout"
    assert result.code == 504
    assert "worker" in result.detail


@pytest.mark.timeout(60)
def test_hung_worker_is_terminated_and_respawned():
    with _service(request_timeout_seconds=0.5) as service:
        service.submit("t", make_clip({"hang": 30.0})).result(timeout=30)
        after = service.submit("t", make_clip()).result(timeout=30)
    assert after.ok, "a fresh worker must replace the hung one"
    assert service.stats.respawns >= 1
    assert service.stats.timeouts >= 1


@pytest.mark.timeout(60)
def test_hang_bystanders_with_live_deadlines_are_retried():
    import time

    with _service(request_timeout_seconds=1.0, max_batch_size=4) as service:
        hang = service.submit("t", make_clip({"hang": 30.0}))
        # Submit the bystanders late enough that their own deadlines are
        # still live when the hung worker is terminated: they must be
        # retried on the fresh worker, not timed out alongside the hang.
        time.sleep(0.6)
        bystanders = [service.submit("t", make_clip()) for _ in range(3)]
        hang_result = hang.result(timeout=30)
        bystander_results = [f.result(timeout=30) for f in bystanders]
    assert hang_result.status == "timeout"
    assert all(r.ok for r in bystander_results), \
        [r.detail for r in bystander_results if not r.ok]


@pytest.mark.timeout(60)
def test_hang_batchmates_past_deadline_time_out_too():
    with _service(request_timeout_seconds=1.0, max_batch_size=4) as service:
        futures = [service.submit("t", make_clip({"hang": 30.0}))] \
            + [service.submit("t", make_clip()) for _ in range(3)]
        results = [f.result(timeout=30) for f in futures]
    # All four were submitted together and share the expired deadline:
    # the service must not retry work whose deadline has already passed.
    assert all(r.status == "timeout" and r.code == 504 for r in results)


@pytest.mark.timeout(60)
def test_deadline_in_queue_expires_as_504():
    with _service(request_timeout_seconds=0.5, max_batch_size=1) as service:
        blocker = service.submit("t", make_clip({"hang": 30.0}))
        queued = service.submit("t", make_clip())
        queued_result = queued.result(timeout=30)
        blocker_result = blocker.result(timeout=30)
    assert blocker_result.status == "timeout"
    assert queued_result.status == "timeout"
    assert "queue" in queued_result.detail or "worker" in queued_result.detail


@pytest.mark.timeout(60)
def test_no_deadline_means_slow_requests_complete():
    with _service(request_timeout_seconds=None) as service:
        result = service.submit("t", make_clip({"hang": 1.0})) \
            .result(timeout=30)
    assert result.ok
    assert result.total_seconds >= 1.0
    assert service.stats.timeouts == 0


# --------------------------------------------------------------- shedding


@pytest.mark.timeout(60)
def test_backlog_sheds_typed_429():
    with _service(queue_depth=2, max_batch_size=1,
                  request_timeout_seconds=None) as service:
        blocker = service.submit("t", make_clip({"hang": 1.0}))
        burst = [service.submit("t", make_clip()) for _ in range(6)]
        results = [f.result(timeout=30) for f in burst]
        assert blocker.result(timeout=30).ok
    shed = [r for r in results if r.status == "rejected"]
    assert shed
    assert all(r.code == 429 for r in shed)
    # Shedding is immediate: a shed result never waited on a worker.
    assert all(r.worker_id == -1 for r in shed)


@pytest.mark.timeout(60)
def test_every_fault_mode_resolves_no_future_hangs():
    faults = [{"raise": True}, {"crash": True}, {"hang": 30.0}, {}]
    with _service(request_timeout_seconds=1.0) as service:
        futures = [service.submit("t", make_clip(meta)) for meta in faults]
        results = [f.result(timeout=45) for f in futures]
    statuses = {r.status for r in results}
    assert statuses <= {"ok", "error", "timeout", "rejected"}
    assert all(r.code in (200, 429, 500, 504) for r in results)
