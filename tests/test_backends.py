"""Tests for the pluggable ASR backend subsystem (PR 10).

The concrete adapters (torch / onnx wav2vec2, vosk) are contract-tested
against fake third-party modules injected into ``sys.modules``, so the
full adapter code paths — lazy import, availability probe, waveform
boundary conversion, fingerprinted cache identity — run in CI with zero
optional dependencies installed.  The generated simulated family is
checked for determinism, prefix stability and pairwise diversity.
"""

from __future__ import annotations

import json
import sys
import types

import numpy as np
import pytest

from repro.asr.registry import (
    asr_name_resolvable,
    build_asr,
    unregister_asr,
)
from repro.audio.waveform import Waveform
from repro.backends import (
    BackendAdapter,
    asr_fingerprint,
    backend_names,
    backend_status,
    ctc_greedy_decode,
    describe_suite,
    family_fingerprint,
    family_member_config,
    family_suite_names,
    float_to_int16_bytes,
    register_backend,
    resample,
    simulated_family,
    suite_warnings,
    unregister_backend,
)
from repro.backends.vosk import VoskBackend
from repro.backends.wav2vec2 import (
    DEFAULT_CTC_VOCAB,
    OnnxWav2Vec2Backend,
    TorchWav2Vec2Backend,
)
from repro.cli import main
from repro.errors import BackendUnavailableError, UnknownComponentError
from repro.specs import ASRSpec, SuiteSpec


def _logits_for(text: str) -> np.ndarray:
    """Frame logits whose greedy CTC decode is exactly ``text``.

    Each character emits twice (exercising repeat collapsing) followed
    by a blank frame (so identical neighbouring letters survive).
    """
    indices: list[int] = []
    for char in text.upper():
        token = "|" if char == " " else char
        indices += [DEFAULT_CTC_VOCAB.index(token)] * 2 + [0]
    logits = np.full((len(indices), len(DEFAULT_CTC_VOCAB)), -10.0)
    logits[np.arange(len(indices)), indices] = 10.0
    return logits


class _FakeTensor:
    def __init__(self, array):
        self.array = np.asarray(array)

    def detach(self):
        return self

    def cpu(self):
        return self

    def numpy(self):
        return self.array


class _FakeNoGrad:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _fake_torch(logits: np.ndarray, version: str = "9.9-test",
                calls: list | None = None) -> types.ModuleType:
    torch = types.ModuleType("torch")
    torch.__version__ = version
    torch.from_numpy = _FakeTensor
    torch.no_grad = _FakeNoGrad
    jit = types.ModuleType("torch.jit")

    def load(path):
        def model(batch):
            if calls is not None:
                calls.append(batch.array)
            return _FakeTensor(logits[None])
        return model

    jit.load = load
    torch.jit = jit
    return torch


def _fake_onnxruntime(logits: np.ndarray,
                      calls: list | None = None) -> types.ModuleType:
    onnxruntime = types.ModuleType("onnxruntime")
    onnxruntime.__version__ = "7.7-test"

    class InferenceSession:
        def __init__(self, path, providers=None):
            self.path = path
            self.providers = providers

        def get_inputs(self):
            return [types.SimpleNamespace(name="input_values")]

        def run(self, outputs, feeds):
            if calls is not None:
                calls.append(feeds)
            return [logits[None]]

    onnxruntime.InferenceSession = InferenceSession
    return onnxruntime


def _fake_vosk(text: str, pcm_chunks: list) -> types.ModuleType:
    vosk = types.ModuleType("vosk")
    vosk.__version__ = "5.5-test"

    class Model:
        def __init__(self, path=None, lang=None):
            self.path = path
            self.lang = lang

    class KaldiRecognizer:
        def __init__(self, model, sample_rate):
            self.model = model
            self.sample_rate = sample_rate

        def AcceptWaveform(self, data):
            pcm_chunks.append(data)
            return True

        def FinalResult(self):
            return json.dumps({"text": text})

    vosk.Model = Model
    vosk.KaldiRecognizer = KaldiRecognizer
    return vosk


# -------------------------------------------------------------- pure helpers
def test_ctc_greedy_decode_collapse_blank_and_delimiter():
    assert ctc_greedy_decode(_logits_for("open the door"),
                             DEFAULT_CTC_VOCAB) == "open the door"
    # Repeats collapse; the blank separates genuine doubles.
    assert ctc_greedy_decode(_logits_for("turn off all cameras"),
                             DEFAULT_CTC_VOCAB) == "turn off all cameras"
    with pytest.raises(ValueError, match="frames, vocab"):
        ctc_greedy_decode(np.zeros(5), DEFAULT_CTC_VOCAB)


def test_resample_and_pcm_conversion():
    samples = np.sin(np.linspace(0, 2 * np.pi, 8000))
    doubled = resample(samples, 8000, 16000)
    assert doubled.size == 16000
    assert resample(samples, 16000, 16000) is samples or np.array_equal(
        resample(samples, 16000, 16000), samples)
    pcm = float_to_int16_bytes(np.array([0.0, 1.0, -1.0, 2.0]))
    values = np.frombuffer(pcm, dtype="<i2")
    assert values.tolist() == [0, 32767, -32767, 32767]


# --------------------------------------------------------- adapter contracts
def test_torch_adapter_transcribe_roundtrip(monkeypatch):
    calls: list = []
    monkeypatch.setitem(sys.modules, "torch",
                        _fake_torch(_logits_for("open the door"),
                                    calls=calls))
    assert TorchWav2Vec2Backend.available()
    adapter = TorchWav2Vec2Backend(model_path="fake.pt")
    # 8 kHz input exercises the resample boundary.
    audio = Waveform(np.zeros(8000), 8000)
    result = adapter.transcribe(audio)
    assert result.text == "open the door"
    assert result.extra["backend"] == "wav2vec2-torch"
    assert result.asr_name == adapter.name
    # The model saw a float32 (1, samples) batch at the expected rate.
    (batch,) = calls
    assert batch.shape == (1, 16000)
    assert batch.dtype == np.float32


def test_torch_adapter_fingerprint_tracks_version(monkeypatch):
    logits = _logits_for("ok")
    monkeypatch.setitem(sys.modules, "torch", _fake_torch(logits, "1.0"))
    first = TorchWav2Vec2Backend(model_path="fake.pt")
    assert first.fingerprint() != "unavailable"
    assert first.fingerprint() in first.name
    monkeypatch.setitem(sys.modules, "torch", _fake_torch(logits, "2.0"))
    second = TorchWav2Vec2Backend(model_path="fake.pt")
    # A new model version is a new cache identity.
    assert first.name != second.name


def test_onnx_adapter_transcribe_roundtrip(monkeypatch):
    calls: list = []
    monkeypatch.setitem(
        sys.modules, "onnxruntime",
        _fake_onnxruntime(_logits_for("close the garage"), calls=calls))
    assert OnnxWav2Vec2Backend.available()
    adapter = OnnxWav2Vec2Backend(model_path="fake.onnx")
    result = adapter.transcribe(Waveform(np.zeros(16000), 16000))
    assert result.text == "close the garage"
    (feeds,) = calls
    assert list(feeds) == ["input_values"]
    assert feeds["input_values"].dtype == np.float32


def test_vosk_adapter_pcm_boundary(monkeypatch):
    pcm_chunks: list = []
    monkeypatch.setitem(sys.modules, "vosk",
                        _fake_vosk("hello world", pcm_chunks))
    adapter = VoskBackend(model_path="fake-model-dir")
    result = adapter.transcribe(Waveform(np.full(16000, 0.5), 16000))
    assert result.text == "hello world"
    (chunk,) = pcm_chunks
    values = np.frombuffer(chunk, dtype="<i2")
    assert values.size == 16000          # int16 mono, same length
    assert values.max() == int(0.5 * 32767)


def test_adapter_requires_model_path(monkeypatch):
    monkeypatch.setitem(sys.modules, "torch", _fake_torch(_logits_for("x")))
    monkeypatch.delenv(TorchWav2Vec2Backend.MODEL_ENV, raising=False)
    adapter = TorchWav2Vec2Backend()
    with pytest.raises(ValueError, match="no model file configured"):
        adapter.transcribe(Waveform(np.zeros(1600), 16000))


# ----------------------------------------------------------- clean skipping
def test_unavailable_backend_resolves_but_raises_hint():
    # Zero extras are installed in CI, so the shipped backends all probe
    # unavailable — and must still resolve everywhere.
    for name in backend_names():
        status = backend_status(name)
        assert status["available"] is False
        assert status["fingerprint"] == "unavailable"
        assert asr_name_resolvable(name)
        assert ASRSpec(name).problems() == []
    suite = SuiteSpec(target=ASRSpec("DS0"),
                      auxiliaries=(ASRSpec("DS1"), ASRSpec("vosk")))
    assert suite.problems() == []
    with pytest.raises(BackendUnavailableError) as excinfo:
        build_asr("vosk")
    message = str(excinfo.value)
    assert "registered but unavailable" in message
    assert "pip install repro[backends]" in message
    assert excinfo.value.missing == ("vosk",)


def test_suite_warnings_and_describe():
    suite = SuiteSpec(target=ASRSpec("DS0"),
                      auxiliaries=(ASRSpec("DS1"), ASRSpec("vosk")))
    warnings = suite_warnings(suite)
    assert len(warnings) == 1
    assert "vosk" in warnings[0] and "pip install" in warnings[0]
    description = describe_suite(suite)
    assert description["target"] == "DS0"
    assert description["auxiliaries"] == ["DS1", "vosk"]
    assert description["fingerprints"]["vosk"] == "unavailable"
    assert description["fingerprints"]["DS0"] not in ("unknown",
                                                      "unavailable")
    clean = SuiteSpec(target=ASRSpec("DS0"), auxiliaries=(ASRSpec("DS1"),))
    assert suite_warnings(clean) == []


def test_asr_fingerprint_dispatch():
    assert asr_fingerprint("vosk") == "unavailable"
    assert asr_fingerprint("DS0") == asr_fingerprint("DS0")
    assert asr_fingerprint("DS0") != asr_fingerprint("DS1")
    assert asr_fingerprint("sim-02") == family_fingerprint("sim-02")
    assert asr_fingerprint("sim-02") != asr_fingerprint("sim-03")
    assert asr_fingerprint("no-such-system") == "unknown"


# ------------------------------------------------------- registry lifecycle
def test_register_unregister_lazy_backend():
    register_backend("test-lazy", lambda: None,
                     requires=("definitely_not_installed_module_xyz",),
                     install_hint="pip install xyz")
    try:
        assert "test-lazy" in backend_names()
        assert asr_name_resolvable("test-lazy")
        with pytest.raises(BackendUnavailableError, match="pip install xyz"):
            build_asr("test-lazy")
    finally:
        unregister_backend("test-lazy")
    assert "test-lazy" not in backend_names()
    assert not asr_name_resolvable("test-lazy")
    with pytest.raises(UnknownComponentError):
        build_asr("test-lazy")


def test_backend_shadowing_builtin_restores_on_unregister():
    register_backend("KAL", lambda: None,
                     requires=("definitely_not_installed_module_xyz",))
    try:
        with pytest.raises(BackendUnavailableError):
            build_asr("KAL")
    finally:
        unregister_backend("KAL")
    # The built-in factory is restored, not a hole.
    assert build_asr("KAL").short_name == "KAL"


def test_registered_adapter_builds_when_deps_present(monkeypatch):
    monkeypatch.setitem(sys.modules, "torch",
                        _fake_torch(_logits_for("yes")))
    try:
        adapter = build_asr("wav2vec2-torch")
        assert isinstance(adapter, BackendAdapter)
        assert adapter.short_name == "wav2vec2-torch"
    finally:
        # Drop the instance cached while the fake module was injected.
        unregister_asr("wav2vec2-torch")
        from repro import backends as _backends  # re-register the guard
        _backends.register_backend(
            "wav2vec2-torch", TorchWav2Vec2Backend,
            requires=TorchWav2Vec2Backend.requires,
            description="torchscript wav2vec2-style CTC model "
                        "(torch.jit.load)")


# ----------------------------------------------------------------- families
def test_family_determinism_and_prefix_stability():
    eight = simulated_family(8)
    assert simulated_family(8) == eight
    assert simulated_family(4) == eight[:4]
    assert simulated_family(16)[:8] == eight
    assert family_member_config(5) == eight[5]
    # A different seed is a different family.
    assert simulated_family(8, seed=1) != eight


def test_family_pairwise_diversity():
    members = simulated_family(16)
    assert len({m.short_name for m in members}) == 16
    assert len({m.seed for m in members}) == 16
    # Geometry is pairwise distinct -> distinct front-end cache tags.
    assert len({(m.frontend, m.frame_length, m.hop_length)
                for m in members}) == 16
    assert {m.frontend for m in members} == {"mfcc", "logmel", "lpc"}
    assert {m.decode_style for m in members} == {"greedy", "smoothed",
                                                 "viterbi"}
    assert len({m.lexicon_fraction for m in members}) > 1
    assert len({m.lm_k for m in members}) > 1


def test_family_names_and_fingerprints():
    assert family_suite_names(3) == ("sim-00", "sim-01", "sim-02")
    assert family_fingerprint("sim-01") == family_fingerprint("sim-01")
    assert family_fingerprint("sim-01") != family_fingerprint("sim-02")
    with pytest.raises(ValueError, match="not a family member"):
        family_fingerprint("DS0")


def test_family_member_builds_and_transcribes(benign_waveform):
    first = build_asr("sim-00")
    second = build_asr("sim-01")
    assert first.short_name == "sim-00"
    assert first.name != second.name
    tag_first = first.feature_extractor.cache_tag
    tag_second = second.feature_extractor.cache_tag
    assert tag_first != tag_second
    result = first.transcribe(benign_waveform)
    assert isinstance(result.text, str)
    # Deterministic: same member, same audio, same transcription.
    assert first.transcribe(benign_waveform).text == result.text


def test_family_name_resolvable_in_specs():
    assert asr_name_resolvable("sim-07")
    suite = SuiteSpec(target=ASRSpec("DS0"),
                      auxiliaries=tuple(ASRSpec(name)
                                        for name in family_suite_names(4)))
    assert suite.problems() == []
    assert not asr_name_resolvable("sim-")
    assert not asr_name_resolvable("sim-x1")


# ---------------------------------------------------------------------- CLI
def test_cli_backends_listing(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in backend_names():
        assert name in out
    assert "pip install repro[backends]" in out
    assert "sim-00" in out


def test_cli_backends_json(capsys):
    assert main(["backends", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = [entry["name"] for entry in payload["backends"]]
    assert names == sorted(names)
    for entry in payload["backends"]:
        assert set(entry) >= {"name", "available", "missing",
                              "install_hint", "fingerprint"}


def test_cli_config_validate_warns_on_absent_backend(tmp_path, capsys):
    config = tmp_path / "backend-suite.json"
    config.write_text(json.dumps({
        "suite": {"target": "DS0", "auxiliaries": ["DS1", "vosk"]}}))
    assert main(["config", "validate", str(config)]) == 0
    out = capsys.readouterr().out
    assert f"ok   {config}" in out
    assert "warn" in out and "pip install repro[backends]" in out
