"""Tests for the attack implementations.

The end-to-end attack tests are the slowest tests in the suite (a few
seconds each); they each craft a single AE.
"""

import numpy as np
import pytest

from repro.attacks.alignment import target_alignment_from_host, target_frame_alignment
from repro.attacks.blackbox import BlackBoxGeneticAttack
from repro.attacks.nontargeted import make_nontargeted_example
from repro.attacks.whitebox import WhiteBoxCarliniAttack
from repro.audio.metrics import similarity_percent
from repro.text.metrics import word_error_rate
from repro.text.phonemes import PHONEMES, PHONEME_TO_INDEX, SILENCE


def test_target_frame_alignment_covers_all_frames(lexicon):
    alignment = target_frame_alignment("open the door", 120, lexicon)
    assert alignment.shape == (120,)
    assert np.all((0 <= alignment) & (alignment < len(PHONEMES)))
    phonemes_used = {PHONEMES[i] for i in alignment}
    assert "OW" in phonemes_used or "AO" in phonemes_used


def test_target_frame_alignment_too_short_raises(lexicon):
    with pytest.raises(ValueError):
        target_frame_alignment("open the front door now please", 10, lexicon)
    with pytest.raises(ValueError):
        target_frame_alignment("open", 0, lexicon)


def test_alignment_from_host_keeps_edges_silent(lexicon):
    host_labels = ([SILENCE] * 10 + ["AA"] * 30 + [SILENCE] * 5 + ["B"] * 30
                   + [SILENCE] * 10)
    alignment = target_alignment_from_host("open door", host_labels, lexicon)
    silence_index = PHONEME_TO_INDEX[SILENCE]
    assert np.all(alignment[:10] == silence_index)
    assert np.all(alignment[-10:] == silence_index)
    assert (alignment != silence_index).sum() > 40


def test_alignment_from_host_requires_speech(lexicon):
    with pytest.raises(ValueError):
        target_alignment_from_host("open", [SILENCE] * 50, lexicon)


def test_whitebox_requires_mfcc_frontend():
    from repro.asr.registry import build_asr

    with pytest.raises(TypeError):
        WhiteBoxCarliniAttack(build_asr("AT"))


def test_whitebox_attack_fools_target_but_not_auxiliaries(ds0, asr_suite, synthesizer):
    host = synthesizer.synthesize("the captain studied the map for a long time")
    command = "open the garage door"
    result = WhiteBoxCarliniAttack(ds0).run(host, command)
    assert result.success, f"attack failed: DS0 heard {result.transcription!r}"
    assert result.transcription == command
    assert result.similarity > 50.0
    # The AE must not transfer to any auxiliary model.
    for name in ("DS1", "GCS", "AT"):
        text = asr_suite[name].transcribe(result.adversarial).text
        assert word_error_rate(command, text) > 0.0, f"AE transferred to {name}"


def test_whitebox_result_metadata(ds0, synthesizer):
    host = synthesizer.synthesize("snow covered the roof of the little cabin")
    result = WhiteBoxCarliniAttack(ds0).run(host, "turn off the lights")
    assert result.adversarial.label == "whitebox-ae"
    assert result.adversarial.metadata["target_text"] == "turn off the lights"
    assert result.adversarial.metadata["host_text"] == host.text
    assert similarity_percent(host, result.adversarial) == pytest.approx(
        result.similarity)


def test_blackbox_attack_limits_payload_length(ds0, synthesizer):
    host = synthesizer.synthesize("the coffee is still warm")
    attack = BlackBoxGeneticAttack(ds0, seed=1)
    with pytest.raises(ValueError):
        attack.run(host, "open the front door now")


def test_blackbox_attack_runs_and_reports(ds0, synthesizer):
    host = synthesizer.synthesize("dinner will be ready soon")
    attack = BlackBoxGeneticAttack(ds0, seed=5)
    result = attack.run(host, "open door")
    assert result.adversarial.label == "blackbox-ae"
    assert 0 <= result.similarity <= 100
    assert isinstance(result.success, bool)
    # When the attack reports success, the target transcription matches.
    if result.success:
        assert result.transcription == "open door"


def test_nontargeted_example_degrades_wer(ds0, synthesizer, rng):
    host = synthesizer.synthesize("the museum is free on sundays")
    noisy = make_nontargeted_example(host, rng, target_asr=ds0)
    assert noisy.label == "nontargeted-ae"
    wer = word_error_rate(host.text, ds0.transcribe(noisy).text)
    assert wer >= 0.5
