"""Tests for the grapheme-to-phoneme lexicon."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.lexicon import Lexicon, grapheme_to_phonemes
from repro.text.phonemes import PHONEMES, SILENCE

_words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


def test_known_word_pronunciations():
    assert grapheme_to_phonemes("the") == ("DH", "AH")
    assert grapheme_to_phonemes("door") == ("D", "AO", "R")
    assert grapheme_to_phonemes("open")[0] == "OW"


def test_digraph_rules():
    assert "SH" in grapheme_to_phonemes("ship")
    assert "CH" in grapheme_to_phonemes("chip")
    assert "TH" in grapheme_to_phonemes("think")


def test_empty_word():
    assert grapheme_to_phonemes("") == ()


def test_multi_word_raises():
    with pytest.raises(ValueError):
        grapheme_to_phonemes("two words")


@given(_words)
def test_grapheme_output_is_valid_phonemes(word):
    for phoneme in grapheme_to_phonemes(word):
        assert phoneme in PHONEMES


@given(_words)
def test_grapheme_deterministic(word):
    assert grapheme_to_phonemes(word) == grapheme_to_phonemes(word)


def test_lexicon_membership_and_growth():
    lexicon = Lexicon(["open", "door"])
    assert "open" in lexicon
    assert "DOOR" in lexicon
    assert len(lexicon) == 2
    lexicon.add_sentences(["close the window"])
    assert "window" in lexicon


def test_lexicon_pronounce_on_demand():
    lexicon = Lexicon()
    assert lexicon.pronounce("garage") == grapheme_to_phonemes("garage")


def test_pronounce_sentence_has_silence_boundaries():
    lexicon = Lexicon()
    phonemes = lexicon.pronounce_sentence("open door")
    assert phonemes[0] == SILENCE
    assert phonemes[-1] == SILENCE
    assert phonemes.count(SILENCE) == 3
