"""Tests for the ASR simulators and the registry."""

import numpy as np
import pytest

from repro.asr.base import Transcription
from repro.asr.registry import ASR_NAMES, build_asr, default_asr_suite
from repro.text.metrics import word_error_rate


def test_registry_names_and_caching():
    assert ASR_NAMES == ("DS0", "DS1", "GCS", "AT")
    assert build_asr("DS0") is build_asr("DS0")
    with pytest.raises(KeyError):
        build_asr("SIRI")


def test_default_suite_composition(asr_suite):
    assert set(asr_suite) == {"DS0", "DS1", "GCS", "AT"}
    suite = default_asr_suite()
    assert suite["DS0"].short_name == "DS0"
    assert suite["GCS"].is_cloud and suite["AT"].is_cloud
    assert not suite["DS0"].is_cloud


def test_kaldi_variants():
    kaldi = build_asr("KAL")
    variant = build_asr("KAL-fs3")
    assert kaldi.frame_subsampling_factor == 1
    assert variant.frame_subsampling_factor == 3
    assert kaldi is not variant


def test_transcription_result_type(ds0, benign_waveform):
    result = ds0.transcribe(benign_waveform)
    assert isinstance(result, Transcription)
    assert result.asr_name == ds0.name
    assert result.elapsed_seconds > 0
    assert len(result.frame_labels) > 0
    assert isinstance(result.text, str)


def test_transcribe_rejects_non_waveform(ds0):
    with pytest.raises(TypeError):
        ds0.transcribe(np.zeros(100))


def test_all_asrs_transcribe_benign_speech_reasonably(asr_suite, synthesizer):
    sentences = [
        "the children played near the big stone bridge",
        "please call me later tonight",
        "the farmer carried the heavy basket to the market",
    ]
    for name, asr in asr_suite.items():
        errors = []
        for sentence in sentences:
            audio = synthesizer.synthesize(sentence)
            errors.append(word_error_rate(sentence, asr.transcribe(audio).text))
        # The simulators are deliberately heterogeneous; GCS is the least
        # accurate auxiliary (as in the paper, where it has the worst FPR).
        budget = 0.7 if name == "GCS" else 0.6
        assert np.mean(errors) < budget, f"{name} benign WER too high: {errors}"


def test_target_model_is_most_accurate_on_its_training_style(ds0, synthesizer):
    sentence = "the light of the lamp fell on the table"
    audio = synthesizer.synthesize(sentence)
    assert word_error_rate(sentence, ds0.transcribe(audio).text) <= 0.5


def test_asrs_differ_in_frame_geometry(asr_suite):
    geometries = {(asr.feature_extractor.frame_length, asr.feature_extractor.hop_length,
                   asr.feature_extractor.feature_dim)
                  for asr in asr_suite.values()}
    assert len(geometries) >= 3


def test_asrs_differ_in_projections(asr_suite):
    ds0 = asr_suite["DS0"].acoustic_model
    ds1 = asr_suite["DS1"].acoustic_model
    assert ds0.weights.shape == ds1.weights.shape
    assert not np.allclose(ds0.weights, ds1.weights)


def test_silence_transcribes_to_empty_or_short(ds0):
    from repro.audio.waveform import Waveform

    silence = Waveform(samples=np.zeros(16000))
    text = ds0.transcribe(silence).text
    assert len(text.split()) <= 2
