"""Tests for the corpora and the bigram language model."""

import numpy as np
import pytest

from repro.text.corpus import (
    SentenceCorpus,
    attack_command_corpus,
    combined_vocabulary,
    commonvoice_like_corpus,
    librispeech_like_corpus,
)
from repro.text.language_model import BigramLanguageModel
from repro.text.normalize import tokenize


def test_corpora_are_nonempty_and_normalized():
    for corpus in (librispeech_like_corpus(), commonvoice_like_corpus(),
                   attack_command_corpus(), attack_command_corpus(True)):
        assert len(corpus) > 5
        for sentence in corpus:
            assert sentence == sentence.lower()
            assert tokenize(sentence)


def test_two_word_commands_have_two_words():
    for command in attack_command_corpus(two_word_only=True):
        assert len(tokenize(command)) == 2


def test_empty_corpus_rejected():
    with pytest.raises(ValueError):
        SentenceCorpus("empty", ())


def test_sampling_is_deterministic_per_seed():
    corpus = librispeech_like_corpus()
    a = corpus.sample(5, np.random.default_rng(3))
    b = corpus.sample(5, np.random.default_rng(3))
    assert a == b


def test_sampling_with_replacement_when_exhausted():
    corpus = attack_command_corpus(True)
    samples = corpus.sample(len(corpus) + 10, np.random.default_rng(0))
    assert len(samples) == len(corpus) + 10


def test_combined_vocabulary_covers_corpora():
    vocabulary = set(combined_vocabulary())
    assert "door" in vocabulary
    assert "weather" in vocabulary


def test_language_model_prefers_seen_bigrams():
    model = BigramLanguageModel(["open the door", "open the window"])
    seen = model.bigram_logprob("open", "the")
    unseen = model.bigram_logprob("open", "window")
    assert seen > unseen


def test_language_model_sentence_logprob_orders_sentences():
    model = BigramLanguageModel(librispeech_like_corpus())
    likely = model.sentence_logprob("the old man walked slowly along the river")
    unlikely = model.sentence_logprob("river the along slowly walked man old the")
    assert likely > unlikely


def test_language_model_word_score_handles_unknowns():
    model = BigramLanguageModel(["open the door"])
    assert np.isfinite(model.word_score(None, "zebra"))
    assert np.isfinite(model.word_score("zebra", "door"))


def test_language_model_requires_positive_smoothing():
    with pytest.raises(ValueError):
        BigramLanguageModel(k=0.0)
