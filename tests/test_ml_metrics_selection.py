"""Tests for classification metrics, ROC/AUC and model selection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    auc,
    classification_report,
    confusion_counts,
    defense_rate,
    false_negative_rate,
    false_positive_rate,
    roc_curve,
)
from repro.ml.model_selection import KFold, cross_validate, train_test_split
from repro.ml.svm import SVMClassifier


def test_confusion_and_rates():
    y_true = np.array([0, 0, 1, 1, 1])
    y_pred = np.array([0, 1, 1, 1, 0])
    counts = confusion_counts(y_true, y_pred)
    assert counts == {"tp": 2, "tn": 1, "fp": 1, "fn": 1}
    assert accuracy_score(y_true, y_pred) == pytest.approx(0.6)
    assert false_positive_rate(y_true, y_pred) == pytest.approx(0.5)
    assert false_negative_rate(y_true, y_pred) == pytest.approx(1 / 3)
    assert defense_rate(y_true, y_pred) == pytest.approx(2 / 3)


def test_rates_with_missing_classes():
    assert false_positive_rate(np.ones(3), np.ones(3)) == 0.0
    assert false_negative_rate(np.zeros(3), np.zeros(3)) == 0.0
    assert defense_rate(np.zeros(3), np.zeros(3)) == 0.0


def test_classification_report_counts():
    report = classification_report(np.array([0, 1, 1]), np.array([0, 1, 0]))
    assert report.n_samples == 3
    assert report.n_positive == 2
    assert report.n_negative == 1
    assert "accuracy" in report.as_dict()


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        accuracy_score(np.zeros(3), np.zeros(4))


def test_roc_perfect_separation():
    labels = np.array([0, 0, 0, 1, 1, 1])
    scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9, 0.95])
    fpr, tpr, _ = roc_curve(labels, scores)
    assert auc(fpr, tpr) == pytest.approx(1.0)


def test_roc_random_scores_auc_near_half():
    rng = np.random.default_rng(0)
    labels = rng.integers(0, 2, 2000)
    scores = rng.random(2000)
    fpr, tpr, _ = roc_curve(labels, scores)
    assert auc(fpr, tpr) == pytest.approx(0.5, abs=0.05)


@given(st.integers(min_value=10, max_value=60), st.integers(min_value=0, max_value=10_000))
def test_roc_monotone(n, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    if labels.min() == labels.max():
        labels[0] = 1 - labels[0]
    scores = rng.random(n)
    fpr, tpr, _ = roc_curve(labels, scores)
    assert np.all(np.diff(fpr) >= 0)
    assert np.all(np.diff(tpr) >= 0)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)


def test_train_test_split_stratified():
    features = np.arange(100)[:, None].astype(float)
    labels = np.array([0] * 80 + [1] * 20)
    train_x, test_x, train_y, test_y = train_test_split(features, labels,
                                                        test_fraction=0.25, seed=3)
    assert len(test_y) + len(train_y) == 100
    assert 0.15 <= test_y.mean() <= 0.25
    # No overlap between train and test.
    assert not set(train_x.ravel()) & set(test_x.ravel())


def test_train_test_split_validation():
    with pytest.raises(ValueError):
        train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)
    with pytest.raises(ValueError):
        train_test_split(np.zeros((4, 1)), np.zeros(3))


def test_kfold_partitions_everything():
    labels = np.array([0] * 20 + [1] * 15)
    seen = np.zeros(35, dtype=int)
    for train_idx, test_idx in KFold(n_splits=5, seed=1).split(labels):
        assert len(set(train_idx) & set(test_idx)) == 0
        seen[test_idx] += 1
    assert np.all(seen == 1)


def test_kfold_validation():
    with pytest.raises(ValueError):
        KFold(n_splits=1)


def test_cross_validate_on_separable_data():
    rng = np.random.default_rng(5)
    features = np.vstack([rng.normal(0, 0.3, (40, 2)), rng.normal(3, 0.3, (40, 2))])
    labels = np.array([0] * 40 + [1] * 40)
    result = cross_validate(lambda: SVMClassifier(), features, labels, n_splits=4)
    assert result.accuracy_mean > 0.9
    assert result.accuracy_std < 0.2
    assert set(result.summary()) == {"accuracy_mean", "accuracy_std", "fpr_mean",
                                     "fpr_std", "fnr_mean", "fnr_std"}
