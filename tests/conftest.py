"""Shared fixtures for the test suite.

Expensive objects (ASR simulators, the tiny scored dataset) are session
scoped; the scored dataset is additionally cached on disk under
``.repro_cache`` so repeated test runs do not regenerate adversarial
examples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asr.registry import build_asr, get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer
from repro.config import TINY


@pytest.fixture(scope="session")
def lexicon():
    return get_shared_lexicon()


@pytest.fixture(scope="session")
def synthesizer(lexicon):
    return SpeechSynthesizer(lexicon=lexicon, seed=123)


@pytest.fixture(scope="session")
def ds0():
    return build_asr("DS0")


@pytest.fixture(scope="session")
def ds1():
    return build_asr("DS1")


@pytest.fixture(scope="session")
def asr_suite():
    return {name: build_asr(name) for name in ("DS0", "DS1", "GCS", "AT")}


@pytest.fixture(scope="session")
def benign_waveform(synthesizer):
    return synthesizer.synthesize("the storm passed over the hills before sunset")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="session")
def samples():
    """A deterministic short audio sample array in [-1, 1]."""
    t = np.linspace(0.0, 0.25, 4000, endpoint=False)
    return (0.6 * np.sin(2 * np.pi * 220.0 * t)
            + 0.3 * np.sin(2 * np.pi * 557.0 * t)).astype(np.float64)


@pytest.fixture(scope="session")
def tiny_dataset():
    """The tiny scored dataset (generated once, cached on disk)."""
    from repro.datasets.scores import load_scored_dataset

    return load_scored_dataset(TINY)


@pytest.fixture(scope="session")
def tiny_bundle():
    """The tiny audio dataset bundle."""
    from repro.datasets.builder import load_standard_bundle

    return load_standard_bundle(TINY)
