"""Shared fixtures for the test suite.

Expensive objects (ASR simulators, the tiny scored dataset) are session
scoped; the scored dataset is additionally cached on disk under
``.repro_cache`` so repeated test runs do not regenerate adversarial
examples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.asr.registry import build_asr, get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer
from repro.config import TINY


@pytest.fixture(scope="session")
def lexicon():
    return get_shared_lexicon()


@pytest.fixture(scope="session")
def synthesizer(lexicon):
    return SpeechSynthesizer(lexicon=lexicon, seed=123)


@pytest.fixture(scope="session")
def ds0():
    return build_asr("DS0")


@pytest.fixture(scope="session")
def ds1():
    return build_asr("DS1")


@pytest.fixture(scope="session")
def asr_suite():
    return {name: build_asr(name) for name in ("DS0", "DS1", "GCS", "AT")}


@pytest.fixture(scope="session")
def benign_waveform(synthesizer):
    return synthesizer.synthesize("the storm passed over the hills before sunset")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="session")
def samples():
    """A deterministic short audio sample array in [-1, 1]."""
    t = np.linspace(0.0, 0.25, 4000, endpoint=False)
    return (0.6 * np.sin(2 * np.pi * 220.0 * t)
            + 0.3 * np.sin(2 * np.pi * 557.0 * t)).astype(np.float64)


@pytest.fixture(scope="session")
def tiny_dataset():
    """The tiny scored dataset (generated once, cached on disk)."""
    from repro.datasets.scores import load_scored_dataset

    return load_scored_dataset(TINY)


@pytest.fixture(scope="session")
def tiny_bundle():
    """The tiny audio dataset bundle."""
    from repro.datasets.builder import load_standard_bundle

    return load_standard_bundle(TINY)


# --------------------------------------------------- pytest-timeout fallback
# The serving/concurrency tests must fail, not wedge the whole run, when
# a queue deadlocks or a worker hangs.  pyproject pins a 120 s per-test
# deadline for pytest-timeout; when that plugin is not installed (this
# project cannot assume it), the hooks below provide a SIGALRM-based
# fallback honouring the same `@pytest.mark.timeout(N)` marker and
# `timeout` ini option.

def _timeout_plugin_active(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


def pytest_addoption(parser):
    try:
        parser.addini("timeout", "per-test deadline in seconds "
                                 "(fallback for pytest-timeout)")
    except ValueError:
        pass  # pytest-timeout already registered the option


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "timeout(seconds): per-test deadline (enforced by "
                   "pytest-timeout, or by the conftest SIGALRM fallback)")


def _deadline_seconds(item) -> float | None:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    value = item.config.getini("timeout")
    try:
        return float(value) if value else None
    except (TypeError, ValueError):
        return None


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    import signal
    import threading

    seconds = (None if _timeout_plugin_active(item.config)
               else _deadline_seconds(item))
    if (seconds is None or seconds <= 0
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def expired(signum, frame):
        pytest.fail(f"test exceeded the {seconds:g} s deadline "
                    f"(conftest SIGALRM fallback)", pytrace=False)

    previous = signal.signal(signal.SIGALRM, expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
