"""Tests for MAE AE synthesis and the comprehensive proactive detector."""

import numpy as np
import pytest

from repro.core.mae import (
    MAE_TYPES,
    MaeAeType,
    ScorePools,
    collect_score_pools,
    synthesize_mae_features,
)
from repro.core.proactive import ComprehensiveDetector


@pytest.fixture(scope="module")
def pools():
    rng = np.random.default_rng(0)
    return ScorePools(benign=rng.uniform(0.85, 1.0, 500),
                      adversarial=rng.uniform(0.0, 0.4, 500))


def test_mae_types_table9_structure():
    assert len(MAE_TYPES) == 6
    # Types 1-3 fool one auxiliary, Types 4-6 fool two.
    for name in ("Type-1", "Type-2", "Type-3"):
        assert len(MAE_TYPES[name].fooled_auxiliaries) == 1
    for name in ("Type-4", "Type-5", "Type-6"):
        assert len(MAE_TYPES[name].fooled_auxiliaries) == 2
    assert MAE_TYPES["Type-4"].label() == "AE(DS0,DS1,GCS)"
    assert MAE_TYPES["Type-3"].label() == "AE(DS0,AT)"


def test_score_pools_validation():
    with pytest.raises(ValueError):
        ScorePools(benign=np.array([]), adversarial=np.array([0.1]))


def test_collect_score_pools_flattens():
    pools = collect_score_pools(np.ones((4, 3)), np.zeros((2, 3)))
    assert pools.benign.shape == (12,)
    assert pools.adversarial.shape == (6,)


def test_synthesize_mae_features_structure(pools):
    features = synthesize_mae_features("Type-5", pools, 200, seed=3)
    assert features.shape == (200, 3)
    # Type-5 fools DS1 (column 0) and AT (column 2): those columns look
    # benign (high), GCS (column 1) looks adversarial (low).
    assert features[:, 0].mean() > 0.8
    assert features[:, 2].mean() > 0.8
    assert features[:, 1].mean() < 0.5


def test_synthesize_mae_features_validation(pools):
    with pytest.raises(ValueError):
        synthesize_mae_features("Type-1", pools, 0)
    with pytest.raises(ValueError):
        synthesize_mae_features(MaeAeType("bad", (5,)), pools, 10)
    with pytest.raises(KeyError):
        synthesize_mae_features("Type-9", pools, 10)


def test_comprehensive_detector_defends_weaker_types(pools):
    rng = np.random.default_rng(1)
    benign_features = rng.uniform(0.85, 1.0, size=(400, 3))
    detector = ComprehensiveDetector(classifier="SVM", seed=2)
    detector.fit(pools, benign_features, n_per_type=300)

    original = rng.uniform(0.0, 0.4, size=(200, 3))
    assert detector.defense_rate(original) > 0.95
    for name in ("Type-1", "Type-2", "Type-3"):
        features = synthesize_mae_features(name, pools, 200, seed=7)
        assert detector.defense_rate(features) > 0.9, name

    report = detector.evaluate(benign_features, np.zeros(benign_features.shape[0]))
    assert report.fpr < 0.15


def test_comprehensive_detector_unfitted_raises(pools):
    detector = ComprehensiveDetector()
    with pytest.raises(RuntimeError):
        detector.predict(np.zeros((2, 3)))


def test_training_set_is_balanced(pools):
    detector = ComprehensiveDetector(seed=3)
    benign = np.random.default_rng(4).uniform(0.8, 1.0, size=(50, 3))
    features, labels = detector.build_training_set(pools, benign, n_per_type=100)
    assert features.shape[0] == labels.shape[0]
    assert (labels == 1).sum() == 300
    assert (labels == 0).sum() == 300
