"""Tests for the phoneme inventory."""

import pytest

from repro.text.phonemes import (
    PHONEMES,
    PHONEME_TO_INDEX,
    SILENCE,
    is_vowel,
    phoneme_profile,
    validate_sequence,
)


def test_inventory_is_sorted_and_indexed():
    assert list(PHONEMES) == sorted(PHONEMES)
    for index, phoneme in enumerate(PHONEMES):
        assert PHONEME_TO_INDEX[phoneme] == index


def test_silence_in_inventory():
    assert SILENCE in PHONEMES
    assert phoneme_profile(SILENCE).voiced is False


def test_inventory_size_reasonable():
    # ARPAbet-style inventory: roughly 39 phonemes plus silence.
    assert 30 <= len(PHONEMES) <= 45


def test_every_profile_is_complete():
    for phoneme in PHONEMES:
        profile = phoneme_profile(phoneme)
        assert len(profile.formants) == len(profile.amplitudes)
        assert profile.duration > 0
        assert 0.0 <= profile.noise <= 1.0


def test_vowels_are_voiced():
    for phoneme in PHONEMES:
        if is_vowel(phoneme):
            assert phoneme_profile(phoneme).voiced


def test_known_vowels_and_consonants():
    assert is_vowel("IY")
    assert is_vowel("AA")
    assert not is_vowel("S")
    assert not is_vowel(SILENCE)


def test_unknown_phoneme_raises():
    with pytest.raises(KeyError):
        phoneme_profile("QQ")


def test_validate_sequence():
    validate_sequence(["AA", "B", SILENCE])
    with pytest.raises(ValueError):
        validate_sequence(["AA", "NOPE"])
