"""Tests for the related-work baseline detectors."""

import numpy as np
import pytest

from repro.baselines.hvc_logistic import HiddenVoiceCommandDetector, acoustic_statistics
from repro.baselines.preprocessing import PreprocessingDetector, smooth_and_quantize
from repro.baselines.temporal_dependency import TemporalDependencyDetector
from repro.audio.noise import add_noise_snr


def test_temporal_dependency_benign_is_consistent(ds0, benign_waveform):
    detector = TemporalDependencyDetector(ds0, threshold=0.3)
    score = detector.consistency_score(benign_waveform)
    assert 0.0 <= score <= 1.0
    assert not detector.is_adversarial(benign_waveform)


def test_temporal_dependency_threshold_validation(ds0):
    with pytest.raises(ValueError):
        TemporalDependencyDetector(ds0, threshold=1.5)


def test_temporal_dependency_adaptive_section(ds0, benign_waveform):
    text = TemporalDependencyDetector(ds0).adaptive_attack_section(benign_waveform)
    assert isinstance(text, str)


def test_smooth_and_quantize_properties():
    samples = np.linspace(-1, 1, 1000)
    processed = smooth_and_quantize(samples, kernel_size=5, levels=16)
    assert processed.shape == samples.shape
    assert len(np.unique(np.round(processed, 6))) <= 20
    with pytest.raises(ValueError):
        smooth_and_quantize(samples, kernel_size=0)
    with pytest.raises(ValueError):
        smooth_and_quantize(samples, levels=1)


def test_preprocessing_detector_on_benign(ds0, benign_waveform):
    detector = PreprocessingDetector(ds0, threshold=0.2)
    score = detector.drift_score(benign_waveform)
    assert 0.0 <= score <= 1.0
    assert isinstance(detector.is_adversarial(benign_waveform), bool)


def test_acoustic_statistics_shape_and_empty():
    from repro.audio.waveform import Waveform

    stats = acoustic_statistics(Waveform(samples=np.zeros(0)))
    assert stats.shape == (5,)
    noisy = acoustic_statistics(
        Waveform(samples=np.random.default_rng(0).standard_normal(8000) * 0.1))
    assert np.all(np.isfinite(noisy))


def test_hvc_detector_separates_speech_from_noise(synthesizer, rng):
    speech = [synthesizer.synthesize(s) for s in
              ("please call me later tonight", "the weather is nice today",
               "see you tomorrow morning", "the coffee is still warm")]
    noise = [add_noise_snr(w, -20.0, rng) for w in speech]
    audios = speech + noise
    labels = np.array([0] * len(speech) + [1] * len(noise))
    detector = HiddenVoiceCommandDetector().fit(audios, labels)
    predictions = detector.predict(audios)
    assert (predictions == labels).mean() >= 0.75


def test_hvc_detector_unfitted_raises(benign_waveform):
    with pytest.raises(RuntimeError):
        HiddenVoiceCommandDetector().predict([benign_waveform])
