"""Tests for the transformation-ensemble defense subsystem."""

import numpy as np
import pytest

from repro.asr.registry import build_asr
from repro.audio.waveform import Waveform
from repro.defenses import (
    AmplitudeClip,
    BitDepthQuantize,
    Compose,
    DownUpsample,
    LowPassFilter,
    MedianFilter,
    NoiseFlood,
    TransformEnsembleDetector,
    TransformedASR,
    default_transform_suite,
    parse_transform,
    parse_transforms,
    transformed_suite,
)
from repro.pipeline.cache import TranscriptionCache
from repro.pipeline.detection import DetectionPipeline
from repro.serving.batcher import MicroBatcher
from repro.serving.chunker import StreamConfig
from repro.serving.streaming import StreamingDetector

ALL_TRANSFORMS = [BitDepthQuantize(8), DownUpsample(2), LowPassFilter(3000.0),
                  MedianFilter(5), NoiseFlood(20.0), AmplitudeClip(0.5)]

#: A small ensemble used by the heavier integration tests.
FAST_TRANSFORMS = lambda: [BitDepthQuantize(6), LowPassFilter(2500.0)]  # noqa: E731


@pytest.fixture(scope="module")
def clips(synthesizer):
    return [synthesizer.synthesize(text)
            for text in ("open the garage door",
                         "the storm passed over the hills before sunset",
                         "please call me later tonight")]


# ------------------------------------------------------------- transforms
@pytest.mark.parametrize("transform", ALL_TRANSFORMS,
                         ids=[t.name for t in ALL_TRANSFORMS])
def test_transform_preserves_geometry(transform, samples):
    wave = Waveform(samples=samples)
    out = transform(wave)
    assert isinstance(out, Waveform)
    assert len(out) == len(wave)
    assert out.sample_rate == wave.sample_rate
    assert out.metadata["transform"] == transform.name
    assert np.max(np.abs(out.samples)) <= 1.0


@pytest.mark.parametrize("transform", ALL_TRANSFORMS,
                         ids=[t.name for t in ALL_TRANSFORMS])
def test_transform_is_deterministic(transform, samples):
    wave = Waveform(samples=samples)
    assert np.array_equal(transform(wave).samples, transform(wave).samples)


@pytest.mark.parametrize("transform", ALL_TRANSFORMS,
                         ids=[t.name for t in ALL_TRANSFORMS])
def test_transform_actually_transforms(transform, samples):
    wave = Waveform(samples=samples)
    assert not np.array_equal(transform(wave).samples, wave.samples)


def test_transform_rejects_non_waveform(samples):
    with pytest.raises(TypeError):
        BitDepthQuantize(8)(samples)


def test_transform_parameter_validation():
    with pytest.raises(ValueError):
        BitDepthQuantize(1)
    with pytest.raises(ValueError):
        DownUpsample(1)
    with pytest.raises(ValueError):
        LowPassFilter(0)
    with pytest.raises(ValueError):
        MedianFilter(4)
    with pytest.raises(ValueError):
        AmplitudeClip(1.5)
    with pytest.raises(ValueError):
        Compose([])


def test_transforms_handle_degenerate_audio():
    silence = Waveform(samples=np.zeros(64))
    short = Waveform(samples=np.array([0.25]))
    for transform in ALL_TRANSFORMS:
        assert len(transform(silence)) == 64
        assert len(transform(short)) == 1


def test_quantize_limits_distinct_levels(samples):
    quantized = BitDepthQuantize(4)(Waveform(samples=samples))
    assert len(np.unique(quantized.samples)) <= 2 ** 4 + 1


def test_lowpass_removes_high_frequencies():
    t = np.arange(16000) / 16000.0
    high = np.sin(2 * np.pi * 6000.0 * t)
    filtered = LowPassFilter(3000.0)(Waveform(samples=high))
    assert filtered.rms < 0.05


def test_noise_flood_hits_snr_and_depends_on_content(samples):
    wave = Waveform(samples=samples)
    flooded = NoiseFlood(snr_db=20.0)(wave)
    noise = flooded.samples - np.clip(wave.samples, -1, 1)
    # Clipping at +-1 perturbs the realised SNR slightly; allow 2 dB.
    snr = 20.0 * np.log10(wave.rms / np.sqrt(np.mean(noise ** 2)))
    assert snr == pytest.approx(20.0, abs=2.0)
    other = NoiseFlood(snr_db=20.0)(Waveform(samples=samples * 0.5))
    assert not np.array_equal(flooded.samples - wave.samples,
                              other.samples - 0.5 * wave.samples)


def test_compose_applies_in_sequence(samples):
    wave = Waveform(samples=samples)
    composed = Compose([BitDepthQuantize(8), AmplitudeClip(0.5)])
    by_hand = AmplitudeClip(0.5)(BitDepthQuantize(8)(wave))
    assert np.allclose(composed(wave).samples, by_hand.samples)
    assert composed.name == "quantize-8+clip-0.5"


def test_parse_transform_specs():
    assert parse_transform("quantize:6").bits == 6
    assert parse_transform("lowpass").cutoff_hz == 3000.0
    assert isinstance(parse_transform("quantize:8+median:5"), Compose)
    transforms = parse_transforms("quantize:8, resample:2 ,noise:25")
    assert [t.name for t in transforms] == ["quantize-8", "resample-2",
                                            "noise-25"]
    with pytest.raises(ValueError):
        parse_transform("reverb:3")
    with pytest.raises(ValueError):
        parse_transform("quantize:loud")
    with pytest.raises(ValueError):
        parse_transforms(" , ")


def test_default_suite_names_are_unique():
    suite = default_transform_suite()
    names = [t.name for t in suite]
    assert len(names) == len(set(names)) == 5


# ---------------------------------------------------------- TransformedASR
def test_transformed_asr_identity_and_cache_keys(ds0, clips):
    versions = transformed_suite(ds0)
    names = {v.short_name for v in versions}
    assert len(names) == len(versions)
    keys = {TranscriptionCache.key_for(v, clips[0]) for v in [ds0, *versions]}
    assert len(keys) == len(versions) + 1  # no collisions with the base ASR


def test_transformed_asr_transcribes_benign_speech(ds0, clips):
    quantized = TransformedASR(ds0, BitDepthQuantize(8))
    original = ds0.transcribe(clips[0]).text
    through = quantized.transcribe(clips[0])
    assert through.asr_name == quantized.name
    assert through.text == original  # 8-bit quantisation is transparent


# ------------------------------------------------- TransformEnsembleDetector
def test_ensemble_requires_some_auxiliary(ds0):
    with pytest.raises(ValueError):
        TransformEnsembleDetector(ds0, transforms=[])


def test_ensemble_shape_and_names(ds0):
    detector = TransformEnsembleDetector(ds0, transforms=FAST_TRANSFORMS(),
                                         cache=False, workers=0)
    assert detector.n_features == 2
    assert detector.transform_names == ("quantize-6", "lowpass-2500")
    assert "DS0~quantize-6" in detector.system_name


def test_combined_ensemble_orders_asrs_first(ds0, asr_suite):
    detector = TransformEnsembleDetector(
        ds0, transforms=FAST_TRANSFORMS(),
        asr_auxiliaries=[asr_suite["DS1"]], cache=False, workers=0)
    short_names = [asr.short_name for asr in detector.auxiliary_asrs]
    assert short_names == ["DS1", "DS0~quantize-6", "DS0~lowpass-2500"]
    assert detector.n_features == 3


def test_scores_bit_identical_across_paths(ds0, clips):
    """Sequential, batched, micro-batched and streamed scores all agree."""
    make = lambda workers: TransformEnsembleDetector(  # noqa: E731
        ds0, transforms=FAST_TRANSFORMS(), cache=False, workers=workers)

    sequential = make(0)
    reference = sequential.extract_features(clips)

    batched = make(None)
    pipeline = DetectionPipeline(batched)
    assert np.array_equal(pipeline.extract_features(clips), reference)

    labels = np.array([0, 0, 1])
    batched.fit_features(reference, labels)
    with MicroBatcher(pipeline, max_batch_size=2,
                      max_latency_seconds=0.005) as batcher:
        results = batcher.detect_many(clips)
    micro = np.array([result.scores for result in results])
    assert np.array_equal(micro, reference)

    # One stream window per clip (window == clip length, hop == window):
    # every window's scores must equal the per-clip reference row.
    streaming = StreamingDetector(
        batched, config=StreamConfig(window_seconds=clips[0].duration,
                                     hop_seconds=clips[0].duration))
    stream_result = streaming.detect_stream(clips[0])
    assert len(stream_result.windows) == 1
    assert np.array_equal(stream_result.windows[0].scores, reference[0])


def test_ensemble_detects_end_to_end(ds0, clips, rng):
    detector = TransformEnsembleDetector(ds0, transforms=FAST_TRANSFORMS(),
                                         workers=0, cache=False)
    features = detector.extract_features(clips)
    detector.fit_features(features, np.array([0, 0, 1]))
    result = detector.detect(clips[0])
    assert result.scores.shape == (2,)
    assert set(result.auxiliary_transcriptions) == {"DS0~quantize-6",
                                                    "DS0~lowpass-2500"}
    assert isinstance(result.is_adversarial, bool)


def test_ensemble_fit_bundle_and_separation(ds0, tiny_bundle):
    """Transform disagreement separates real AEs from benign audio."""
    detector = TransformEnsembleDetector(ds0, classifier="SVM")
    detector.fit_bundle(tiny_bundle)
    samples = tiny_bundle.all_samples
    features = detector.extract_features([s.waveform for s in samples])
    labels = np.array([s.label for s in samples])
    benign_mean = features[labels == 0].mean()
    adversarial_mean = features[labels == 1].mean()
    assert benign_mean > adversarial_mean
    report = detector.evaluate_features(features, labels)
    assert report.accuracy > 0.6  # in-sample, tiny data: a sanity floor


def test_transform_ensemble_comparison_table(tiny_bundle):
    from repro.experiments import run_transform_ensemble_comparison

    table = run_transform_ensemble_comparison(scale="tiny",
                                              transforms=FAST_TRANSFORMS())
    assert [row["system"] for row in table.rows] == ["transform", "multi-asr",
                                                     "combined"]
    for row in table.rows:
        for key in ("accuracy", "fpr", "fnr"):
            assert 0.0 <= row[key] <= 1.0
    assert table.rows[0]["n_versions"] == 2
    assert table.rows[2]["n_versions"] == 5
    markdown = table.to_markdown()
    assert "accuracy" in markdown and "fpr" in markdown and "fnr" in markdown


def test_bootstrap_defense_modes(tiny_bundle):
    from repro.core.bootstrap import default_detector

    detector = default_detector(scale="tiny", defense="transform",
                                transforms=FAST_TRANSFORMS())
    assert detector.n_features == 2
    combined = default_detector(scale="tiny", defense="combined",
                                transforms=FAST_TRANSFORMS())
    assert combined.n_features == 5  # 3 ASR auxiliaries + 2 transforms
    with pytest.raises(KeyError):
        default_detector(scale="tiny", defense="waveguard")
