"""Doc-sanity: the code snippets in the docs actually run.

Executes every ```python fenced block of ``docs/API.md`` and the README
top to bottom (one shared namespace per file, so snippets may build on
earlier ones, exactly as the docs promise).  Bash/console blocks are
ignored.  This is what keeps the documented public API from silently
rotting: renaming a re-export or changing a signature fails this test.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_FENCE = re.compile(r"^```(\w*)\s*$")


def python_blocks(path: str) -> list[tuple[int, str]]:
    """The ```python fenced blocks of ``path`` as (line, source) pairs."""
    blocks = []
    language = None
    lines: list[str] = []
    start = 0
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            fence = _FENCE.match(line.strip())
            if fence and language is None:
                language = fence.group(1)
                lines, start = [], number + 1
            elif line.strip() == "```" and language is not None:
                if language == "python":
                    blocks.append((start, "".join(lines)))
                language = None
            elif language is not None:
                lines.append(line)
    return blocks


def run_file_snippets(path: str) -> int:
    blocks = python_blocks(path)
    assert blocks, f"no ```python blocks found in {path}"
    namespace: dict = {"__name__": "__doc_snippet__"}
    for line, source in blocks:
        code = compile(source, f"{os.path.basename(path)}:{line}", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs
    return len(blocks)


@pytest.mark.parametrize("relative", ["docs/API.md", "docs/BACKENDS.md",
                                      "docs/CONFIG.md", "docs/FEATURES.md",
                                      "docs/SERVING.md", "README.md"])
def test_documented_snippets_run(relative):
    assert run_file_snippets(os.path.join(REPO_ROOT, relative)) >= 2


def test_public_surface_matches_docs():
    """Every name docs/API.md imports from repro is actually re-exported."""
    import repro

    with open(os.path.join(REPO_ROOT, "docs", "API.md"),
              encoding="utf-8") as handle:
        text = handle.read()
    imported = set()
    for match in re.finditer(r"^from repro import (.+)$", text, re.MULTILINE):
        imported.update(name.strip() for name in match.group(1).split(","))
    assert imported, "docs/API.md shows no 'from repro import ...' lines"
    missing = sorted(name for name in imported if name not in repro.__all__)
    assert not missing, f"documented but not re-exported: {missing}"
