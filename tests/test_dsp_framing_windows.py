"""Tests for framing, windows, mel filterbank and DCT."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsp.dct import dct_matrix
from repro.dsp.framing import frame_signal, num_frames, overlap_add
from repro.dsp.mel import hz_to_mel, mel_filterbank, mel_to_hz
from repro.dsp.windows import hamming_window, hann_window


def test_num_frames_basic():
    assert num_frames(400, 400, 160) == 1
    assert num_frames(560, 400, 160) == 2
    assert num_frames(100, 400, 160) == 0


def test_num_frames_invalid():
    with pytest.raises(ValueError):
        num_frames(100, 0, 10)


def test_frame_signal_shape_and_content():
    signal = np.arange(1000, dtype=float)
    frames = frame_signal(signal, 400, 160)
    assert frames.shape[1] == 400
    assert np.array_equal(frames[0], signal[:400])
    assert np.array_equal(frames[1][:240], signal[160:400])


def test_frame_signal_pads_short_input():
    frames = frame_signal(np.ones(100), 400, 160)
    assert frames.shape == (1, 400)
    assert frames[0, :100].sum() == 100


def test_frame_signal_rejects_2d():
    with pytest.raises(ValueError):
        frame_signal(np.ones((10, 10)), 4, 2)


def test_overlap_add_inverts_non_overlapping_framing():
    signal = np.random.default_rng(0).standard_normal(800)
    frames = frame_signal(signal, 200, 200)
    reconstructed = overlap_add(frames, 200, n_samples=800)
    assert np.allclose(reconstructed, signal)


@given(st.integers(min_value=2, max_value=512))
def test_windows_bounded(length):
    for window in (hamming_window(length), hann_window(length)):
        assert window.shape == (length,)
        assert np.all(window <= 1.0 + 1e-12)
        assert np.all(window >= -1e-12)


def test_window_invalid_length():
    with pytest.raises(ValueError):
        hamming_window(0)


def test_mel_roundtrip():
    freqs = np.array([0.0, 100.0, 1000.0, 8000.0])
    assert np.allclose(mel_to_hz(hz_to_mel(freqs)), freqs)


def test_mel_filterbank_shape_and_coverage():
    bank = mel_filterbank(26, 512, 16000)
    assert bank.shape == (26, 257)
    assert np.all(bank >= 0)
    assert np.all(bank.sum(axis=1) > 0)


def test_mel_filterbank_invalid_range():
    with pytest.raises(ValueError):
        mel_filterbank(10, 512, 16000, f_min=9000.0)


def test_dct_matrix_orthonormal_rows():
    matrix = dct_matrix(13, 26)
    gram = matrix @ matrix.T
    assert np.allclose(gram, np.eye(13), atol=1e-10)


def test_dct_matrix_invalid():
    with pytest.raises(ValueError):
        dct_matrix(30, 26)
