"""Tests for the formant speech synthesiser."""

import numpy as np
import pytest

from repro.audio.synthesis import SpeakerProfile, SpeechSynthesizer
from repro.text.phonemes import SILENCE


def test_synthesize_returns_labelled_waveform(synthesizer):
    wave = synthesizer.synthesize("open the door")
    assert wave.text == "open the door"
    assert wave.label == "benign"
    assert wave.duration > 0.3
    assert wave.peak <= 1.0
    assert np.all(np.isfinite(wave.samples))


def test_synthesize_different_speakers_differ(synthesizer):
    low = synthesizer.synthesize("open the door", speaker=SpeakerProfile(pitch_hz=100))
    high = synthesizer.synthesize("open the door", speaker=SpeakerProfile(pitch_hz=200))
    n = min(len(low), len(high))
    assert not np.allclose(low.samples[:n], high.samples[:n])


def test_longer_sentences_are_longer(synthesizer):
    short = synthesizer.synthesize("open")
    long = synthesizer.synthesize("open the front door right now please")
    assert long.duration > short.duration


def test_phoneme_exemplar_durations(synthesizer):
    vowel = synthesizer.phoneme_exemplar("AA", duration=0.1)
    assert len(vowel) == pytest.approx(0.1 * synthesizer.sample_rate, rel=0.05)
    silence = synthesizer.phoneme_exemplar(SILENCE, duration=0.1)
    assert np.abs(silence).max() < 0.05


def test_vowel_exemplar_has_low_frequency_energy(synthesizer):
    vowel = synthesizer.phoneme_exemplar("AA", duration=0.12)
    fricative = synthesizer.phoneme_exemplar("S", duration=0.12)
    freqs_v = np.fft.rfftfreq(len(vowel), 1 / synthesizer.sample_rate)
    freqs_f = np.fft.rfftfreq(len(fricative), 1 / synthesizer.sample_rate)
    spectrum_v = np.abs(np.fft.rfft(vowel))
    spectrum_f = np.abs(np.fft.rfft(fricative))
    centroid_v = (freqs_v * spectrum_v).sum() / spectrum_v.sum()
    centroid_f = (freqs_f * spectrum_f).sum() / spectrum_f.sum()
    assert centroid_v < centroid_f


def test_random_speaker_profiles_vary():
    rng = np.random.default_rng(0)
    profiles = [SpeakerProfile.random(rng) for _ in range(5)]
    pitches = {p.pitch_hz for p in profiles}
    assert len(pitches) == 5
