"""Tests for repro.config."""

import pytest

from repro.config import PAPER, SMALL, TINY, ReproScale, get_scale, runtime


def test_presets_have_expected_ordering():
    assert TINY.n_benign < SMALL.n_benign < PAPER.n_benign
    assert PAPER.n_benign == 2400
    assert PAPER.n_whitebox == 1800
    assert PAPER.n_blackbox == 600


def test_adversarial_total():
    assert TINY.n_adversarial == TINY.n_whitebox + TINY.n_blackbox


def test_scaled_factor():
    scaled = SMALL.scaled(0.5)
    assert scaled.n_benign == SMALL.n_benign // 2
    assert scaled.n_whitebox == SMALL.n_whitebox // 2


def test_scaled_rejects_nonpositive():
    with pytest.raises(ValueError):
        SMALL.scaled(0)


def test_get_scale_by_name():
    assert get_scale("tiny") is TINY
    assert get_scale("paper") is PAPER


def test_get_scale_unknown_name():
    with pytest.raises(KeyError):
        get_scale("gigantic")


def test_get_scale_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert get_scale() is TINY


def test_runtime_singleton():
    assert runtime() is runtime()


def test_scale_is_frozen():
    with pytest.raises(Exception):
        TINY.n_benign = 5
