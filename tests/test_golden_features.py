"""Golden-fixture regression test for the front-end feature kernels.

``tests/fixtures/golden_features.npz`` holds the raw samples and the
reference MFCC / LPCC feature matrices of three fixed utterances,
computed by the seed library's per-clip path when the vectorized front
end landed.  Both backends must reproduce the stored matrices *exactly*
(``np.array_equal``): any change to the DSP arithmetic — reordered
reductions, dtype drift, a "harmless" refactor of the Levinson-Durbin
recursion — fails this test even if the hypothesis parity tests still
pass (those only pin fast == reference, not either == history).
"""

import os

import numpy as np
import pytest

from repro.dsp.engine import get_feature_backend
from repro.dsp.features import LpcFeatureExtractor, MfccFeatureExtractor

FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "fixtures", "golden_features.npz")
N_UTTERANCES = 3


@pytest.fixture(scope="module")
def golden():
    with np.load(FIXTURE, allow_pickle=False) as payload:
        return {key: payload[key] for key in payload.files}


@pytest.fixture(scope="module")
def extractors():
    return {"mfcc": MfccFeatureExtractor(), "lpc": LpcFeatureExtractor()}


def test_fixture_has_three_utterances(golden):
    assert list(golden["sentences"].shape) == [N_UTTERANCES]
    for i in range(N_UTTERANCES):
        assert golden[f"samples_{i}"].ndim == 1
        assert golden[f"mfcc_{i}"].shape[1] == MfccFeatureExtractor().feature_dim
        assert golden[f"lpc_{i}"].shape[1] == LpcFeatureExtractor().feature_dim


@pytest.mark.parametrize("backend_name", ["reference", "fast"])
@pytest.mark.parametrize("family", ["mfcc", "lpc"])
def test_backends_reproduce_golden_features(golden, extractors, backend_name,
                                            family):
    backend = get_feature_backend(backend_name)
    extractor = extractors[family]
    for i in range(N_UTTERANCES):
        features = backend.features(extractor, golden[f"samples_{i}"], 16_000)
        assert features.dtype == np.float64
        assert np.array_equal(features, golden[f"{family}_{i}"]), \
            f"{backend_name} backend diverged from golden {family} " \
            f"features of utterance {i} ({golden['sentences'][i]!r})"


@pytest.mark.parametrize("family", ["mfcc", "lpc"])
def test_batched_path_reproduces_golden_features(golden, extractors, family):
    extractor = extractors[family]
    batch = [golden[f"samples_{i}"] for i in range(N_UTTERANCES)]
    for i, features in enumerate(extractor.transform_batch(batch)):
        assert np.array_equal(features, golden[f"{family}_{i}"])
