"""Tests for the concurrency-safe on-disk store layer (:mod:`repro.store`).

Covers the three primitives every cache builds on — atomic snapshot
writes, the append-only journal, the content-addressed directory store —
plus the regression the layer exists for: a writer killed mid-save must
never corrupt or truncate the previous store, and concurrent writer
processes must never lose each other's records.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.asr.base import Transcription
from repro.dsp.feature_cache import FeatureCache
from repro.pipeline.cache import TranscriptionCache
from repro.similarity.score_cache import PairScoreCache
from repro.store import (
    ContentDirectoryStore,
    Journal,
    atomic_write_bytes,
    atomic_write_text,
)

_CTX = multiprocessing.get_context("fork")


def _transcription(text: str) -> Transcription:
    return Transcription(text=text, phonemes=("t", "e"), frame_labels=(1, 2),
                         asr_name="T", elapsed_seconds=0.01, extra={})


# ------------------------------------------------------------ atomic writes


def test_atomic_write_replaces_complete_content(tmp_path):
    path = str(tmp_path / "store.json")
    atomic_write_text(path, "old")
    atomic_write_text(path, "new content")
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "new content"


def test_atomic_write_leaves_no_temp_litter(tmp_path):
    path = str(tmp_path / "store.bin")
    atomic_write_bytes(path, b"x" * 1024)
    assert sorted(os.listdir(tmp_path)) == ["store.bin"]


def test_atomic_write_failure_keeps_old_file_and_cleans_up(tmp_path,
                                                           monkeypatch):
    path = str(tmp_path / "store.json")
    atomic_write_text(path, "intact")

    def exploding_replace(src, dst):
        raise OSError("injected replace failure")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError, match="injected"):
        atomic_write_text(path, "never lands")
    monkeypatch.undo()
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "intact"
    assert sorted(os.listdir(tmp_path)) == ["store.json"]


def _killed_mid_save(cache_path: str, kind: str) -> None:
    """Child body: die between the temp write and the atomic replace."""
    os.replace = lambda src, dst: os._exit(17)  # noqa: simulated crash
    if kind == "transcription":
        cache = TranscriptionCache(path=cache_path)
        cache.put("k-new", _transcription("doomed"))
        cache.save()
    else:
        cache = PairScoreCache(path=cache_path)
        cache.put("k-new", 0.25)
        cache.save()
    os._exit(99)  # never reached: save() dies in the fake replace


@pytest.mark.timeout(30)
def test_writer_killed_mid_save_keeps_transcription_store(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = TranscriptionCache(path=path)
    cache.put("k-old", _transcription("survivor"))
    cache.save()

    child = _CTX.Process(target=_killed_mid_save, args=(path, "transcription"))
    child.start()
    child.join(timeout=20)
    assert child.exitcode == 17, "child must have died inside save()"

    reloaded = TranscriptionCache(path=path)
    assert reloaded.get("k-old").text == "survivor"
    assert reloaded.get("k-new") is None


@pytest.mark.timeout(30)
def test_writer_killed_mid_save_keeps_score_store(tmp_path):
    path = str(tmp_path / "scores.json")
    cache = PairScoreCache(path=path)
    cache.put("k-old", 0.75)
    cache.save()

    child = _CTX.Process(target=_killed_mid_save, args=(path, "score"))
    child.start()
    child.join(timeout=20)
    assert child.exitcode == 17

    reloaded = PairScoreCache(path=path)
    assert reloaded.get("k-old") == 0.75
    assert reloaded.get("k-new") is None


# ---------------------------------------------------------------- journal


def test_journal_roundtrip_and_incremental_replay(tmp_path):
    path = str(tmp_path / "j.jsonl")
    writer = Journal(path)
    writer.append({"k": "a", "v": 1})
    writer.append({"k": "b", "v": 2})

    reader = Journal(path)
    assert [r["k"] for r in reader.replay()] == ["a", "b"]
    assert reader.replay() == []  # nothing new

    writer.append({"k": "c", "v": 3})
    assert [r["k"] for r in reader.replay()] == ["c"]


def test_journal_in_progress_tail_is_reread_later(tmp_path):
    path = str(tmp_path / "j.jsonl")
    writer = Journal(path)
    writer.append({"k": "a", "v": 1})
    reader = Journal(path)
    reader.replay()

    with open(path, "ab") as handle:
        handle.write(b'{"k":"torn"')  # a writer died mid-append
    assert reader.replay() == [], "an unterminated tail must not be consumed"

    with open(path, "ab") as handle:
        handle.write(b',"v":2}\n')  # the append completes after all
    assert [r["k"] for r in reader.replay()] == ["torn"]
    assert reader.corrupt_lines == 0


def test_journal_corrupt_line_skipped_and_counted(tmp_path):
    path = str(tmp_path / "j.jsonl")
    writer = Journal(path)
    writer.append({"k": "a", "v": 1})
    with open(path, "ab") as handle:
        handle.write(b"%% not json %%\n")
        handle.write(b'[1, 2, 3]\n')  # complete JSON but not an object
    writer.append({"k": "b", "v": 2})

    reader = Journal(path)
    assert [r["k"] for r in reader.replay()] == ["a", "b"]
    assert reader.corrupt_lines == 2


def test_journal_compaction_resets_stale_readers(tmp_path):
    path = str(tmp_path / "j.jsonl")
    writer = Journal(path)
    for i in range(10):
        writer.append({"k": f"k{i}", "v": i})
    reader = Journal(path)
    assert len(reader.replay()) == 10

    writer.rewrite([{"k": "only", "v": 0}])  # compaction shrinks the file
    assert [r["k"] for r in reader.replay()] == ["only"], \
        "a reader past the new EOF must restart from the top"


def _journal_hammer(path: str, writer_id: int, n_records: int) -> None:
    journal = Journal(path)
    for i in range(n_records):
        journal.append({"w": writer_id, "i": i})


@pytest.mark.timeout(60)
def test_journal_concurrent_processes_lose_no_records(tmp_path):
    path = str(tmp_path / "hammer.jsonl")
    n_writers, per_writer = 4, 50
    procs = [_CTX.Process(target=_journal_hammer,
                          args=(path, writer_id, per_writer))
             for writer_id in range(n_writers)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=30)
        assert proc.exitcode == 0

    records = Journal(path).replay()
    assert len(records) == n_writers * per_writer
    seen = {(r["w"], r["i"]) for r in records}
    assert seen == {(w, i) for w in range(n_writers)
                    for i in range(per_writer)}, \
        "concurrent appends must neither interleave nor vanish"


# ----------------------------------------------------- journal-backed caches


def test_transcription_journal_cache_shares_across_instances(tmp_path):
    path = str(tmp_path / "t.jsonl")
    writer = TranscriptionCache(path=path)
    reader = TranscriptionCache(path=path)

    writer.put("k1", _transcription("hello"))
    assert reader.get("k1") is None  # not merged yet
    assert reader.refresh() == 1
    assert reader.get("k1").text == "hello"
    assert reader.get("k1").phonemes == ("t", "e")


def test_score_journal_cache_shares_across_instances(tmp_path):
    path = str(tmp_path / "s.jsonl")
    writer = PairScoreCache(path=path)
    reader = PairScoreCache(path=path)

    writer.put("pair", 0.625)
    assert reader.refresh() == 1
    assert reader.get("pair") == 0.625


def _cache_writer_process(path: str, writer_id: int, n: int) -> None:
    cache = PairScoreCache(path=path)
    for i in range(n):
        cache.put(f"w{writer_id}-{i}", float(writer_id) + i / 1000.0)


@pytest.mark.timeout(60)
def test_score_cache_concurrent_writer_processes(tmp_path):
    path = str(tmp_path / "scores.jsonl")
    n_writers, per_writer = 3, 40
    procs = [_CTX.Process(target=_cache_writer_process,
                          args=(path, writer_id, per_writer))
             for writer_id in range(n_writers)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=30)
        assert proc.exitcode == 0

    merged = PairScoreCache(path=path)
    assert len(merged) == n_writers * per_writer
    for writer_id in range(n_writers):
        for i in range(per_writer):
            assert merged.get(f"w{writer_id}-{i}") == pytest.approx(
                float(writer_id) + i / 1000.0)


def test_journal_cache_save_compacts_duplicates(tmp_path):
    path = str(tmp_path / "s.jsonl")
    cache = PairScoreCache(path=path)
    for _ in range(5):
        cache.put("same-key", 0.5)  # five journal lines, one logical entry
    assert sum(1 for _ in open(path)) == 5
    cache.save()
    assert sum(1 for _ in open(path)) == 1
    assert PairScoreCache(path=path).get("same-key") == 0.5


# --------------------------------------------------- content-directory store


def test_directory_store_roundtrip_and_shared_reads(tmp_path):
    directory = str(tmp_path / "features")
    store = ContentDirectoryStore(directory)
    matrix = np.arange(20, dtype=np.float64).reshape(4, 5)
    store.write("key-a", matrix)

    other = ContentDirectoryStore(directory)
    assert np.array_equal(other.read("key-a"), matrix)
    assert other.read("missing") is None
    assert len(other) == 1


def test_directory_store_corrupt_entry_is_a_miss(tmp_path):
    directory = str(tmp_path / "features")
    store = ContentDirectoryStore(directory)
    store.write("good", np.ones((2, 2)))
    with open(store._entry_path("bad"), "wb") as handle:
        handle.write(b"not an npz file")

    assert store.read("bad") is None
    items = store.items()
    assert [key for key, _ in items] == ["good"]


def test_feature_cache_directory_mode_cross_instance(tmp_path):
    directory = str(tmp_path / "features")
    writer = FeatureCache(path=directory)
    matrix = np.linspace(0.0, 1.0, 12).reshape(3, 4)
    writer.put("fk", matrix)

    reader = FeatureCache(path=directory)
    value = reader.get("fk")
    assert np.array_equal(value, matrix)
    assert not value.flags.writeable
    assert reader.stats.hits == 1 and reader.stats.misses == 0


def _feature_writer_process(directory: str, writer_id: int, n: int) -> None:
    cache = FeatureCache(path=directory)
    for i in range(n):
        # Overlapping keys across writers: identical values by design
        # (entries are pure functions of their key), so whoever lands
        # last installs the same bytes.
        key = f"shared-{i}"
        cache.put(key, np.full((3, 3), float(i)))


@pytest.mark.timeout(60)
def test_feature_directory_concurrent_writers_agree(tmp_path):
    directory = str(tmp_path / "features")
    procs = [_CTX.Process(target=_feature_writer_process,
                          args=(directory, writer_id, 20))
             for writer_id in range(3)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=30)
        assert proc.exitcode == 0

    store = ContentDirectoryStore(directory)
    assert len(store) == 20
    for i in range(20):
        assert np.array_equal(store.read(f"shared-{i}"),
                              np.full((3, 3), float(i)))


# ----------------------------------------------------------- cache policies


def test_cache_policy_accepts_journal_paths(tmp_path):
    from repro.caching import resolve_cache_policy
    from repro.errors import UnknownComponentError

    journal = resolve_cache_policy(str(tmp_path / "c.jsonl"),
                                   PairScoreCache, "score cache")
    assert isinstance(journal, PairScoreCache)
    snapshot = resolve_cache_policy(str(tmp_path / "c.json"),
                                    PairScoreCache, "score cache")
    assert isinstance(snapshot, PairScoreCache)
    with pytest.raises(UnknownComponentError):
        resolve_cache_policy("sharedd", PairScoreCache, "score cache")


# ------------------------------------------------------- property (hypothesis)


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_KEYS = st.text(alphabet="abcdef", min_size=1, max_size=4)
_RECORDS = st.lists(st.tuples(_KEYS, st.floats(allow_nan=False,
                                               allow_infinity=False,
                                               width=32)),
                    max_size=30)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(records=_RECORDS, split=st.integers(min_value=0, max_value=30))
def test_journal_merge_keeps_last_write_per_key(tmp_path_factory, records,
                                                split):
    """Two interleaved writers; replay == append order; merge == last wins."""
    tmp_path = tmp_path_factory.mktemp("journal-prop")
    path = str(tmp_path / "p.jsonl")
    writer_a, writer_b = Journal(path), Journal(path)
    for i, (key, value) in enumerate(records):
        writer = writer_a if i < split else writer_b
        writer.append({"k": key, "v": value})

    replayed = Journal(path).replay()
    assert [(r["k"], r["v"]) for r in replayed] \
        == [(k, float(v)) for k, v in records]

    cache = PairScoreCache(path=path)
    expected: dict[str, float] = {}
    for key, value in records:
        expected[key] = float(value)
    assert len(cache) == len(expected)
    for key, value in expected.items():
        assert cache.get(key) == value


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(chunks=st.lists(st.lists(st.tuples(_KEYS, st.integers(0, 99)),
                                max_size=10),
                       max_size=5))
def test_journal_refresh_is_idempotent_across_chunks(tmp_path_factory,
                                                     chunks):
    """refresh() after each chunk sees exactly the new records, once."""
    tmp_path = tmp_path_factory.mktemp("journal-prop")
    path = str(tmp_path / "p.jsonl")
    writer = Journal(path)
    reader = Journal(path)
    total = 0
    for chunk in chunks:
        for key, value in chunk:
            writer.append({"k": key, "v": value})
        got = reader.replay()
        assert [(r["k"], r["v"]) for r in got] == [(k, v) for k, v in chunk]
        total += len(chunk)
    assert reader.replay() == []
    assert len(Journal(path).replay()) == total
