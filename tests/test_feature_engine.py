"""Tests for the feature engine, the feature cache, and their wiring.

Covers the cache itself (LRU order, eviction accounting, the ``.npz``
disk round-trip), cross-suite-member sharing (two front ends with equal
configuration tags hit one entry), the spec / CLI / env configuration
surface (``pipeline.features``), and the headline guarantee: a detector
with the feature engine on produces *identical* verdicts and scores to
one with it off, on all four execution paths — sequential detection,
the batched pipeline, streaming, and the transform ensemble.
"""

import json

import numpy as np
import pytest

from repro.audio.waveform import Waveform
from repro.cli import main
from repro.core.detector import MVPEarsDetector
from repro.defenses.ensemble import TransformEnsembleDetector
from repro.defenses.transforms import parse_transforms
from repro.dsp.engine import (
    FeatureEngine,
    get_shared_feature_cache,
    resolve_feature_cache,
)
from repro.dsp.feature_cache import FeatureCache, samples_fingerprint
from repro.dsp.features import LogMelFeatureExtractor, MfccFeatureExtractor
from repro.pipeline.detection import DetectionPipeline
from repro.serving.chunker import StreamConfig
from repro.serving.streaming import StreamingDetector
from repro.specs import DetectorSpec, FeaturesSpec, InvalidSpecError

SR = 16_000


def _clip(seed: int, length: int = 1200) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=length)


# -------------------------------------------------------------- cache basics
def test_cache_key_includes_tag_and_content():
    samples = _clip(0)
    key = FeatureCache.key_for("mfcc:test", samples, SR)
    assert key == f"mfcc:test:{samples_fingerprint(samples, SR)}"
    assert key != FeatureCache.key_for("lpc:test", samples, SR)
    assert key != FeatureCache.key_for("mfcc:test", samples, 8_000)


def test_cache_hit_miss_and_lru_eviction():
    cache = FeatureCache(capacity=2)
    assert cache.get("a") is None                      # miss
    cache.put("a", np.ones((2, 2)))
    cache.put("b", np.zeros((2, 2)))
    assert cache.get("a") is not None                  # "a" now most recent
    cache.put("c", np.ones((1, 1)))                    # evicts LRU "b"
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.evictions == 1
    assert cache.stats.lookups == 2
    assert cache.stats.hit_rate == 0.5


def test_cache_entries_are_frozen_copies():
    cache = FeatureCache()
    original = np.ones((2, 3))
    cache.put("k", original)
    original[:] = 7.0                                  # caller keeps mutating
    stored = cache.get("k")
    assert np.array_equal(stored, np.ones((2, 3)))
    with pytest.raises(ValueError):
        stored[0, 0] = 9.0                             # read-only entry


def test_cache_clear_resets_stats():
    cache = FeatureCache()
    cache.put("k", np.ones(3))
    cache.get("k")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.lookups == 0
    assert cache.stats.hit_rate == 0.0


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        FeatureCache(capacity=0)


# ---------------------------------------------------------- disk round-trip
def test_cache_disk_round_trip(tmp_path):
    path = str(tmp_path / "features.npz")
    cache = FeatureCache(path=path)
    matrices = {f"key_{i}": np.random.default_rng(i).standard_normal((4, 3))
                for i in range(3)}
    for key, value in matrices.items():
        cache.put(key, value)
    assert cache.save() == path

    reloaded = FeatureCache(path=path)                 # eager load
    assert len(reloaded) == 3
    for key, value in matrices.items():
        assert np.array_equal(reloaded.get(key), value)

    merged = FeatureCache()
    assert merged.load(path) == 3
    assert np.array_equal(merged.get("key_0"), matrices["key_0"])


def test_cache_save_without_path_raises():
    with pytest.raises(ValueError):
        FeatureCache().save()


# ------------------------------------------------------------ policy surface
def test_resolve_feature_cache_policies(tmp_path):
    assert resolve_feature_cache("shared") is get_shared_feature_cache()
    assert resolve_feature_cache(True) is get_shared_feature_cache()
    assert resolve_feature_cache("off") is None
    assert resolve_feature_cache(False) is None
    assert resolve_feature_cache(None) is None
    private = resolve_feature_cache("private")
    assert isinstance(private, FeatureCache)
    assert private is not get_shared_feature_cache()
    path = str(tmp_path / "store.npz")
    on_disk = resolve_feature_cache(path)
    assert on_disk.path == path
    instance = FeatureCache()
    assert resolve_feature_cache(instance) is instance
    with pytest.raises(ValueError):
        resolve_feature_cache("bogus-policy")


# ------------------------------------------------------------ feature engine
def test_engine_caches_and_shares_across_equal_tags():
    cache = FeatureCache()
    engine = FeatureEngine(backend="fast", cache=cache)
    samples = _clip(1)
    first = MfccFeatureExtractor()
    twin = MfccFeatureExtractor()                       # same configuration
    assert first.cache_tag == twin.cache_tag
    computed = engine.features(first, samples, SR)
    assert cache.stats.misses == 1
    shared = engine.features(twin, samples, SR)         # cross-member share
    assert cache.stats.hits == 1
    assert np.array_equal(computed, shared)
    assert np.array_equal(computed, first.transform(samples))


def test_engine_distinct_tags_do_not_collide():
    cache = FeatureCache()
    engine = FeatureEngine(cache=cache)
    samples = _clip(2)
    mfcc = engine.features(MfccFeatureExtractor(), samples, SR)
    logmel = engine.features(LogMelFeatureExtractor(), samples, SR)
    assert cache.stats.misses == 2
    assert mfcc.shape != logmel.shape


def test_engine_skips_untagged_extractors():
    class Anonymous(MfccFeatureExtractor):
        @property
        def cache_tag(self):
            return None

    cache = FeatureCache()
    engine = FeatureEngine(cache=cache)
    engine.features(Anonymous(), _clip(3), SR)
    assert len(cache) == 0
    assert cache.stats.lookups == 0


def test_engine_without_cache_reports_zero_stats():
    engine = FeatureEngine(cache=None)
    engine.features(MfccFeatureExtractor(), _clip(4), SR)
    assert engine.stats.lookups == 0


def test_prewarm_dedupes_and_feeds_later_lookups():
    cache = FeatureCache()
    engine = FeatureEngine(backend="fast", cache=cache)
    extractor = MfccFeatureExtractor()
    a, b = _clip(5), _clip(6, length=900)
    computed = engine.prewarm(extractor, [(a, SR), (b, SR), (a, SR)])
    assert computed == 2                                # duplicate a deduped
    before_hits = cache.stats.hits
    assert np.array_equal(engine.features(extractor, a, SR),
                          extractor.transform(a))
    assert np.array_equal(engine.features(extractor, b, SR),
                          extractor.transform(b))
    assert cache.stats.hits == before_hits + 2
    assert engine.prewarm(extractor, [(a, SR), (b, SR)]) == 0  # already warm


def test_engine_rejects_unknown_backend():
    with pytest.raises(KeyError):
        FeatureEngine(backend="warp-drive")


# ------------------------------------------------------------- spec surface
def test_features_spec_round_trip_and_defaults():
    spec = DetectorSpec()
    assert spec.pipeline.features == FeaturesSpec(backend="fast",
                                                  cache="shared")
    assert DetectorSpec.from_dict(spec.to_dict()) == spec
    custom = DetectorSpec.from_dict(
        {"pipeline": {"features": {"backend": "reference", "cache": "off"}}})
    assert custom.pipeline.features.backend == "reference"
    assert custom.pipeline.features.cache == "off"


def test_features_spec_validation():
    bad = DetectorSpec.from_dict(
        {"pipeline": {"features": {"backend": "warp", "cache": "sideways"}}})
    problems = bad.problems()
    assert any("features.backend" in problem for problem in problems)
    assert any("features.cache" in problem for problem in problems)
    with pytest.raises(InvalidSpecError):
        bad.validate()
    with pytest.raises(InvalidSpecError):
        DetectorSpec.from_dict({"pipeline": {"features": {"nope": 1}}})


def test_features_spec_path_policy_is_valid():
    spec = DetectorSpec.from_dict(
        {"pipeline": {"features": {"cache": "/tmp/features.npz"}}})
    assert spec.problems() == []


def test_feature_flags_reach_the_spec(capsys):
    assert main(["config", "show", "--feature-backend", "reference",
                 "--feature-cache", "private"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["pipeline"]["features"] == {"backend": "reference",
                                               "cache": "private"}


def test_feature_env_overlays(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_FEATURE_BACKEND", "off")
    monkeypatch.setenv("REPRO_FEATURE_CACHE", "off")
    assert main(["config", "show"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["pipeline"]["features"] == {"backend": "off",
                                               "cache": "off"}


def test_build_feature_engine_off_returns_none():
    from repro.build import build_feature_engine

    assert build_feature_engine(FeaturesSpec(backend="off")) is None
    engine = build_feature_engine(FeaturesSpec(backend="fast",
                                               cache="private"))
    assert isinstance(engine, FeatureEngine)


# ----------------------------------------------------- four-path detector parity
def _train(detector, rng):
    n_aux = detector.n_features
    features = np.vstack([rng.uniform(0.85, 1.0, (40, n_aux)),
                          rng.uniform(0.0, 0.4, (40, n_aux))])
    labels = np.concatenate([np.zeros(40, dtype=int), np.ones(40, dtype=int)])
    return detector.fit_features(features, labels)


@pytest.fixture(scope="module")
def parity_clips(synthesizer):
    sentences = ("open the front door",
                 "the storm passed over the hills before sunset")
    return [synthesizer.synthesize(text) for text in sentences]


@pytest.fixture(scope="module")
def detector_pair(ds0, asr_suite, rng):
    """The same trained detector with the feature engine off and on."""
    def build(feature_engine):
        return _train(
            MVPEarsDetector(ds0, [asr_suite["DS1"], asr_suite["GCS"]],
                            workers=0, cache=False,
                            feature_engine=feature_engine),
            np.random.default_rng(7))
    return (build(None),
            build(FeatureEngine(backend="fast", cache=FeatureCache())))


def _assert_same_result(plain, fast):
    assert plain.is_adversarial == fast.is_adversarial
    assert np.array_equal(plain.scores, fast.scores)
    assert plain.target_transcription == fast.target_transcription
    assert plain.auxiliary_transcriptions == fast.auxiliary_transcriptions


def test_sequential_detection_parity(detector_pair, parity_clips):
    plain, fast = detector_pair
    for clip in parity_clips:
        _assert_same_result(plain.detect(clip), fast.detect(clip))


def test_batched_pipeline_parity(detector_pair, parity_clips):
    plain, fast = detector_pair
    batch_plain = DetectionPipeline(plain).detect_batch(parity_clips)
    batch_fast = DetectionPipeline(fast).detect_batch(parity_clips)
    assert np.array_equal(batch_plain.features, batch_fast.features)
    assert np.array_equal(batch_plain.predictions, batch_fast.predictions)
    # The fast pipeline actually exercised the feature cache (decoding
    # hits entries the batch prewarm — or an earlier test — filled in).
    assert batch_fast.feature_cache_hits > 0
    assert batch_plain.feature_cache_misses == 0
    assert batch_plain.feature_cache_hits == 0


def test_streamed_detection_parity(detector_pair):
    plain, fast = detector_pair
    stream = Waveform(np.concatenate([_clip(8, SR), _clip(9, SR)]),
                      sample_rate=SR)
    config = StreamConfig(window_seconds=1.0, hop_seconds=0.5)
    result_plain = StreamingDetector(plain, config=config).detect_stream(stream)
    result_fast = StreamingDetector(fast, config=config).detect_stream(stream)
    assert len(result_plain.windows) == len(result_fast.windows)
    for window_plain, window_fast in zip(result_plain.windows,
                                         result_fast.windows):
        assert window_plain.is_adversarial == window_fast.is_adversarial
        assert np.array_equal(window_plain.scores, window_fast.scores)
    assert result_plain.is_adversarial == result_fast.is_adversarial


def test_transform_ensemble_parity(ds0, parity_clips):
    transforms = parse_transforms("quantize:6,resample:8000")
    rng_seed = 7

    def build(feature_engine):
        return _train(
            TransformEnsembleDetector(ds0, transforms=transforms,
                                      workers=0, cache=False,
                                      feature_engine=feature_engine),
            np.random.default_rng(rng_seed))

    plain = build(None)
    cache = FeatureCache()
    fast = build(FeatureEngine(backend="fast", cache=cache))
    for clip in parity_clips:
        _assert_same_result(plain.detect(clip), fast.detect(clip))
    # Transformed views must decode their own (transformed) samples, so
    # only the raw target decodes go through the feature engine.
    assert cache.stats.misses == len(parity_clips)
