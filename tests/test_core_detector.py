"""Tests for the MVP-EARS detector, threshold detector and score features."""

import numpy as np
import pytest

from repro.core.detector import MVPEarsDetector
from repro.core.features import score_vector, scores_from_transcriptions
from repro.core.threshold import ThresholdDetector


def _synthetic_scores(rng, n=60):
    benign = rng.uniform(0.85, 1.0, size=(n, 3))
    adversarial = rng.uniform(0.0, 0.45, size=(n, 3))
    features = np.vstack([benign, adversarial])
    labels = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return features, labels


def test_detector_requires_auxiliaries(ds0):
    with pytest.raises(ValueError):
        MVPEarsDetector(ds0, [])


def test_detector_system_name(ds0, asr_suite):
    detector = MVPEarsDetector(ds0, [asr_suite["DS1"], asr_suite["GCS"]])
    assert detector.system_name == "DS0+{DS1, GCS}"
    assert detector.n_features == 2


def test_detector_fit_features_validation(ds0, asr_suite, rng):
    detector = MVPEarsDetector(ds0, [asr_suite["DS1"]])
    with pytest.raises(ValueError):
        detector.fit_features(rng.random((10, 3)), np.zeros(10))


def test_detector_predict_before_fit_raises(ds0, asr_suite, benign_waveform):
    detector = MVPEarsDetector(ds0, [asr_suite["DS1"]])
    with pytest.raises(RuntimeError):
        detector.detect(benign_waveform)


def test_detector_on_synthetic_scores(ds0, asr_suite, rng):
    detector = MVPEarsDetector(ds0, [asr_suite["DS1"], asr_suite["GCS"],
                                     asr_suite["AT"]])
    features, labels = _synthetic_scores(rng)
    detector.fit_features(features, labels)
    report = detector.evaluate_features(features, labels)
    assert report.accuracy > 0.97
    predictions = detector.predict_features(np.array([[0.95, 0.9, 0.97],
                                                      [0.1, 0.2, 0.15]]))
    assert predictions.tolist() == [0, 1]


def test_detector_end_to_end_detect(ds0, asr_suite, benign_waveform, rng):
    detector = MVPEarsDetector(ds0, [asr_suite["DS1"]])
    features, labels = _synthetic_scores(rng)
    detector.fit_features(features[:, :1], labels)
    result = detector.detect(benign_waveform)
    assert result.is_adversarial in (True, False)
    assert result.scores.shape == (1,)
    assert set(result.timing) >= {"recognition", "similarity", "classification"}
    assert result.target_transcription
    assert "DS1" in result.auxiliary_transcriptions


def test_score_vector_matches_manual(ds0, asr_suite, benign_waveform):
    aux = [asr_suite["DS1"]]
    vector = score_vector(benign_waveform, ds0, aux)
    manual = scores_from_transcriptions(
        ds0.transcribe(benign_waveform).text,
        [asr_suite["DS1"].transcribe(benign_waveform).text])
    assert np.allclose(vector, manual)
    assert 0.0 <= vector[0] <= 1.0


def test_threshold_detector_fit_and_rates(rng):
    benign = rng.uniform(0.8, 1.0, size=(200, 3))
    adversarial = rng.uniform(0.0, 0.5, size=(100, 3))
    detector = ThresholdDetector().fit_benign(benign, max_fpr=0.05)
    assert detector.threshold > 0.5
    assert detector.false_positive_rate(benign) <= 0.05
    assert detector.defense_rate(adversarial) > 0.95


def test_threshold_detector_validation(rng):
    with pytest.raises(RuntimeError):
        ThresholdDetector().predict(rng.random((3, 2)))
    with pytest.raises(ValueError):
        ThresholdDetector().fit_benign(np.zeros((0, 3)))
    with pytest.raises(ValueError):
        ThresholdDetector().fit_benign(rng.random((5, 3)), max_fpr=1.5)


def test_threshold_detector_1d_scores(rng):
    detector = ThresholdDetector(threshold=0.7)
    scores = np.array([0.9, 0.5, 0.71])
    assert detector.predict(scores).tolist() == [0, 1, 0]
    assert np.allclose(detector.decision_scores(scores), -scores)
