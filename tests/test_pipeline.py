"""Tests for the parallel transcription engine and batched detection pipeline."""

import numpy as np
import pytest

from repro.asr.base import ASRSystem, Transcription
from repro.audio.waveform import Waveform
from repro.core.detector import MVPEarsDetector
from repro.core.features import score_vectors
from repro.pipeline.cache import TranscriptionCache, waveform_fingerprint
from repro.pipeline.detection import DetectionPipeline
from repro.pipeline.engine import TranscriptionEngine, resolve_worker_count


class CountingASR(ASRSystem):
    """Deterministic stub ASR that counts real decodes."""

    def __init__(self, short_name="CNT", text="hello world"):
        self.name = f"Counting {short_name}"
        self.short_name = short_name
        self.text = text
        self.calls = 0

    def _transcribe_samples(self, samples, sample_rate):
        self.calls += 1
        return Transcription(text=self.text)


@pytest.fixture(scope="module")
def clips(synthesizer):
    sentences = (
        "the storm passed over the hills before sunset",
        "open the front door",
        "the captain studied the map for a long time",
    )
    return [synthesizer.synthesize(text) for text in sentences]


def _train(detector, rng):
    n_aux = detector.n_features
    features = np.vstack([rng.uniform(0.85, 1.0, (40, n_aux)),
                          rng.uniform(0.0, 0.4, (40, n_aux))])
    labels = np.concatenate([np.zeros(40, dtype=int), np.ones(40, dtype=int)])
    return detector.fit_features(features, labels)


# ----------------------------------------------------------------- engine


def test_parallel_matches_sequential_transcriptions(ds0, asr_suite, clips):
    auxiliaries = [asr_suite["DS1"], asr_suite["GCS"]]
    sequential = TranscriptionEngine(ds0, auxiliaries, workers=0, cache=False)
    parallel = TranscriptionEngine(ds0, auxiliaries, workers=3, cache=False)
    with parallel:
        for clip in clips:
            a = sequential.transcribe(clip)
            b = parallel.transcribe(clip)
            assert a.target.text == b.target.text
            assert a.auxiliary_texts == b.auxiliary_texts


def test_parallel_matches_sequential_verdicts(ds0, asr_suite, clips, rng):
    auxiliaries = [asr_suite["DS1"], asr_suite["GCS"]]
    seq = _train(MVPEarsDetector(ds0, auxiliaries, workers=0, cache=False), rng)
    par = _train(MVPEarsDetector(ds0, auxiliaries, workers=3, cache=False), rng)
    for clip in clips:
        a, b = seq.detect(clip), par.detect(clip)
        assert a.is_adversarial == b.is_adversarial
        assert np.allclose(a.scores, b.scores)
        assert a.target_transcription == b.target_transcription


def test_workers_zero_uses_no_pool(ds0, asr_suite, clips):
    engine = TranscriptionEngine(ds0, [asr_suite["DS1"]], workers=0, cache=False)
    suite = engine.transcribe(clips[0])
    assert engine._pool is None
    assert suite.target.text
    assert set(suite.auxiliaries) == {"DS1"}
    assert suite.wall_seconds > 0
    assert engine.transcribe_batch([]) == []


def test_engine_validates_workers(ds0, asr_suite):
    with pytest.raises(ValueError):
        TranscriptionEngine(ds0, [asr_suite["DS1"]], workers=-1)


def test_resolve_worker_count(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert resolve_worker_count() == 6
    assert resolve_worker_count(n_tasks=2) == 2
    monkeypatch.delenv("REPRO_WORKERS")
    assert resolve_worker_count() >= 1


def test_batch_matches_per_clip(ds0, asr_suite, clips):
    engine = TranscriptionEngine(ds0, [asr_suite["DS1"]], workers=2, cache=False)
    batch = engine.transcribe_batch(clips)
    assert len(batch) == len(clips)
    for clip, suite in zip(clips, batch):
        single = engine.transcribe(clip)
        assert suite.target.text == single.target.text
        assert suite.auxiliary_texts == single.auxiliary_texts


# ------------------------------------------------------------------ cache


def test_fingerprint_depends_on_content_only(clips):
    same = clips[0].with_label("adversarial")
    assert waveform_fingerprint(clips[0]) == waveform_fingerprint(same)
    assert waveform_fingerprint(clips[0]) != waveform_fingerprint(clips[1])


def test_engine_cache_hit_on_repeat(ds0, asr_suite, clips):
    cache = TranscriptionCache()
    engine = TranscriptionEngine(ds0, [asr_suite["DS1"], asr_suite["GCS"]],
                                 workers=2, cache=cache)
    first = engine.transcribe(clips[0])
    assert (first.cache_hits, first.cache_misses) == (0, 3)
    second = engine.transcribe(clips[0])
    assert (second.cache_hits, second.cache_misses) == (3, 0)
    assert second.target.text == first.target.text
    assert cache.stats.hits == 3 and cache.stats.misses == 3
    assert cache.stats.hit_rate == 0.5


def test_repeated_detection_hits_cache(ds0, asr_suite, clips, rng):
    cache = TranscriptionCache()
    detector = _train(MVPEarsDetector(ds0, [asr_suite["DS1"]], workers=2,
                                      cache=cache), rng)
    detector.detect(clips[0])
    misses_after_first = cache.stats.misses
    detector.detect(clips[0])
    assert cache.stats.misses == misses_after_first
    assert cache.stats.hits >= 2  # target + auxiliary both served from cache


def test_duplicate_clips_in_batch_decode_once(clips):
    asr = CountingASR()
    engine = TranscriptionEngine(asr, [], workers=2, cache=TranscriptionCache())
    suites = engine.transcribe_batch([clips[0], clips[0], clips[0]])
    assert asr.calls == 1  # single-flight: concurrent duplicates coalesce
    assert all(suite.target.text == "hello world" for suite in suites)


def test_cache_key_distinguishes_same_short_name():
    a = CountingASR(short_name="X", text="from a")
    a.name = "variant a"
    b = CountingASR(short_name="X", text="from b")
    b.name = "variant b"
    cache = TranscriptionCache()
    engine_a = TranscriptionEngine(a, [], workers=0, cache=cache)
    engine_b = TranscriptionEngine(b, [], workers=0, cache=cache)
    clip = Waveform(np.linspace(-0.1, 0.1, 400))
    assert engine_a.transcribe(clip).target.text == "from a"
    assert engine_b.transcribe(clip).target.text == "from b"
    assert b.calls == 1  # not served a's cached transcription


def test_cache_lru_eviction():
    cache = TranscriptionCache(capacity=2)
    for key in ("a", "b", "c"):
        cache.put(key, Transcription(text=key))
    assert len(cache) == 2
    assert cache.get("a") is None
    assert cache.get("c").text == "c"


def test_cache_disk_round_trip(tmp_path, clips):
    asr = CountingASR()
    path = str(tmp_path / "transcriptions.json")
    engine = TranscriptionEngine(asr, [], workers=0,
                                 cache=TranscriptionCache(path=path))
    engine.transcribe(clips[0])
    assert asr.calls == 1
    engine.save_cache()

    # A new process would construct a fresh cache from the same file and
    # never touch the decoder again.
    reloaded = TranscriptionEngine(asr, [], workers=0,
                                   cache=TranscriptionCache(path=path))
    suite = reloaded.transcribe(clips[0])
    assert asr.calls == 1
    assert suite.target.text == "hello world"
    assert suite.cache_hits == 1


# --------------------------------------------------------------- pipeline


def test_pipeline_timing_keys_and_predictions(ds0, asr_suite, clips, rng):
    detector = _train(MVPEarsDetector(ds0, [asr_suite["DS1"], asr_suite["GCS"]],
                                      workers=2, cache=False), rng)
    pipeline = DetectionPipeline(detector)
    batch = pipeline.detect_batch(clips)
    assert set(batch.stage_seconds) == {"recognition", "similarity",
                                        "classification", "total"}
    assert len(batch) == len(clips)
    assert batch.features.shape == (len(clips), 2)
    for result in batch.results:
        assert set(result.timing) >= {"recognition", "recognition_overhead",
                                      "similarity", "classification"}
    # Batched verdicts agree with per-clip detection.
    for clip, result in zip(clips, batch.results):
        assert result.is_adversarial == detector.detect(clip).is_adversarial
    assert batch.n_adversarial == int(np.sum(batch.predictions == 1))
    means = batch.mean_stage_seconds()
    assert means["total"] == pytest.approx(batch.stage_seconds["total"] / len(clips))


def test_pipeline_empty_batch(ds0, asr_suite, rng):
    detector = _train(MVPEarsDetector(ds0, [asr_suite["DS1"]], workers=0,
                                      cache=False), rng)
    batch = DetectionPipeline(detector).detect_batch([])
    assert len(batch) == 0
    assert batch.stage_seconds["total"] == 0.0


def test_score_vectors_through_engine_matches_manual(ds0, asr_suite, clips):
    auxiliaries = [asr_suite["DS1"], asr_suite["GCS"]]
    engine = TranscriptionEngine(ds0, auxiliaries, workers=2, cache=False)
    via_engine = score_vectors(clips, ds0, auxiliaries, engine=engine)
    sequential = score_vectors(clips, ds0, auxiliaries, workers=0)
    assert np.allclose(via_engine, sequential)
    assert via_engine.shape == (len(clips), 2)
