"""Tests for phonetic encodings, string metrics and the combined scorers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity.phonetic import metaphone, phonetic_encode, soundex
from repro.similarity.scorer import SIMILARITY_METHODS, get_scorer
from repro.similarity.string_metrics import (
    cosine_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_ratio,
)

_texts = st.text(alphabet="abcdefghij ", max_size=30)
_metrics = [cosine_similarity, jaccard_similarity, jaro_similarity,
            jaro_winkler_similarity, levenshtein_ratio]


def test_soundex_known_values():
    assert soundex("robert") == soundex("rupert")
    assert soundex("open")[0] == "O"
    assert len(soundex("door")) == 4
    assert soundex("") == ""


def test_metaphone_similar_sounding_words_collide():
    assert metaphone("there") == metaphone("their")
    assert metaphone("night") == metaphone("nite")
    assert metaphone("") == ""


def test_metaphone_distinguishes_different_words():
    assert metaphone("door") != metaphone("cat")


def test_phonetic_encode_sentences():
    encoded = phonetic_encode("open the door")
    assert len(encoded.split(" ")) == 3
    with pytest.raises(ValueError):
        phonetic_encode("open", algorithm="nope")


def test_jaccard_and_cosine_word_level():
    assert jaccard_similarity("open the door", "open the door") == 1.0
    assert jaccard_similarity("open the door", "close a window") == 0.0
    assert cosine_similarity("open the door", "open the window") > 0.5


def test_jaro_winkler_known_behaviour():
    assert jaro_winkler_similarity("martha", "marhta") > 0.9
    assert jaro_winkler_similarity("abc", "abc") == 1.0
    assert jaro_winkler_similarity("abc", "xyz") == 0.0
    # The common-prefix bonus makes Jaro-Winkler >= Jaro.
    assert jaro_winkler_similarity("prefix", "prefab") >= jaro_similarity("prefix", "prefab")


def test_jaro_winkler_prefix_scale_validation():
    with pytest.raises(ValueError):
        jaro_winkler_similarity("a", "a", prefix_scale=0.5)


@given(_texts, _texts)
def test_metrics_bounded_and_symmetric(a, b):
    for metric in _metrics:
        value = metric(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert metric(a, b) == pytest.approx(metric(b, a))


@given(_texts)
def test_metrics_identity(a):
    for metric in _metrics:
        assert metric(a, a) == pytest.approx(1.0)


def test_scorer_registry():
    assert len(SIMILARITY_METHODS) == 6
    scorer = get_scorer()
    assert scorer.name == "PE_JaroWinkler"
    with pytest.raises(KeyError):
        get_scorer("nope")


def test_scorer_benign_vs_adversarial_separation():
    scorer = get_scorer()
    benign = scorer.score("open the front door now", "open the front door now")
    near = scorer.score("open the front door now", "open the front door no")
    different = scorer.score("the old man walked slowly along the river",
                             "send all my money to this account now please")
    assert benign == pytest.approx(1.0)
    assert near > different


def test_phonetic_encoding_forgives_sound_alike_words():
    with_pe = get_scorer("PE_JaroWinkler")
    without_pe = get_scorer("JaroWinkler")
    a = "there house is near"
    b = "their house is near"
    assert with_pe.score(a, b) >= without_pe.score(a, b)


@given(_texts, _texts)
def test_all_scorers_bounded(a, b):
    for method in SIMILARITY_METHODS:
        value = get_scorer(method).score(a, b)
        assert 0.0 <= value <= 1.0
