"""Tests for the unified experiment runner (PR 8).

Covers the spec tree additions (``ExperimentSpec`` / ``SweepSpec``),
the experiment registry, wrapper↔runner parity for the ported
experiments, resumable sharded execution (including a fork-child kill
mid-run), sweep expansion/merging, and the ``repro run`` / ``repro
sweep`` CLI surface.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os

import numpy as np
import pytest

from repro import experiments as E
from repro.cli import main
from repro.config import TINY
from repro.experiments import (
    RunSpecMismatch,
    RunStore,
    build_experiment,
    execute_experiment,
    experiment_defaults,
    experiment_names,
    run_sweep,
)
from repro.experiments.runner import canonical_rows
from repro.errors import UnknownComponentError
from repro.specs import ExperimentSpec, InvalidSpecError, SweepSpec

_CTX = multiprocessing.get_context("fork")


def _nn(value):
    """NaN-normalise a canonical-row structure so NaN == NaN in asserts."""
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, list):
        return [_nn(item) for item in value]
    if isinstance(value, dict):
        return {key: _nn(item) for key, item in value.items()}
    return value


def _execute(name: str, params: dict | None = None, **kwargs):
    spec = ExperimentSpec(experiment=name, scale="tiny",
                          params=params or {}).validate()
    return execute_experiment(build_experiment(spec), **kwargs)


# ------------------------------------------------------------------- specs


def test_experiment_spec_roundtrip_and_strict_parse():
    spec = ExperimentSpec(experiment="single_aux", scale="tiny",
                          params={"n_splits": 3})
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(InvalidSpecError, match="unknown field"):
        ExperimentSpec.from_dict({"experiment": "single_aux", "bogus": 1})


def test_experiment_spec_env_overlay_and_with_value():
    spec = ExperimentSpec(experiment="single_aux", scale="tiny")
    assert spec.with_env_overlay({"REPRO_SCALE": "small"}).scale == "small"
    assert spec.with_env_overlay({}).scale == "tiny"
    assert spec.with_value("params.n_splits", 2).params["n_splits"] == 2
    assert spec.with_value("detector.classifier.name",
                           "KNN").detector.classifier.name == "KNN"
    assert spec.params == {}  # with_value copies


def test_experiment_spec_validate_lists_every_problem():
    spec = ExperimentSpec(experiment="no_such_experiment", scale="huge",
                          workers=-1)
    with pytest.raises(InvalidSpecError) as excinfo:
        spec.validate()
    message = str(excinfo.value)
    assert "no_such_experiment" in message
    assert "huge" in message
    assert "workers" in message


def test_experiment_spec_rejects_unknown_param():
    spec = ExperimentSpec(experiment="single_aux", scale="tiny",
                          params={"bogus_knob": 1})
    with pytest.raises(InvalidSpecError, match="bogus_knob"):
        spec.validate()


def test_sweep_points_cartesian_and_stable_labels():
    sweep = SweepSpec(
        base=ExperimentSpec(experiment="nontargeted", scale="tiny"),
        grid=(("params.max_fpr", (0.05, 0.1)),
              ("detector.classifier.name", ("SVM", "KNN"))))
    points = sweep.points()
    assert [point.label for point in points] == [
        "000-max_fpr=0.05,name=SVM", "001-max_fpr=0.05,name=KNN",
        "002-max_fpr=0.1,name=SVM", "003-max_fpr=0.1,name=KNN"]
    assert points[2].spec.params["max_fpr"] == 0.1
    assert points[1].spec.detector.classifier.name == "KNN"
    # labels are a pure function of the sweep: rerunning yields the same
    assert [p.label for p in sweep.points()] == [p.label for p in points]


def test_sweep_empty_grid_is_single_base_point():
    sweep = SweepSpec(base=ExperimentSpec(experiment="nontargeted"))
    points = sweep.points()
    assert len(points) == 1
    assert points[0].label == "000-base"
    assert points[0].spec == sweep.base


def test_sweep_from_dict_rejects_bad_grids():
    base = {"experiment": "nontargeted", "scale": "tiny"}
    with pytest.raises(InvalidSpecError, match="list"):
        SweepSpec.from_dict({**base, "grid": {"params.max_fpr": 0.05}})
    with pytest.raises(InvalidSpecError, match="at least one"):
        SweepSpec.from_dict({**base, "grid": {"params.max_fpr": []}})


def test_sweep_validate_reports_bad_overlay_path():
    sweep = SweepSpec(base=ExperimentSpec(experiment="nontargeted",
                                          scale="tiny"),
                      grid=(("detector.no_such_field", (1,)),))
    with pytest.raises(InvalidSpecError, match="no_such_field"):
        sweep.validate()


# ---------------------------------------------------------------- registry


def test_registry_knows_every_ported_experiment():
    names = experiment_names()
    assert {"similarity_methods", "single_aux", "multi_aux", "asr_count",
            "nontargeted", "unseen_threshold", "figure5_roc", "cross_attack",
            "mae_accuracy", "mae_cross_type", "mae_comprehensive",
            "table1_example", "table2_dataset_summary", "figure4_histograms",
            "kaldi_ablation", "baseline_comparison", "transferability",
            "transform_ensemble", "overhead", "scored_dataset"} <= set(names)
    assert list(names) == sorted(names)


def test_registry_unknown_name_raises():
    with pytest.raises(UnknownComponentError, match="no_such"):
        build_experiment(ExperimentSpec(experiment="no_such"))
    with pytest.raises(UnknownComponentError):
        experiment_defaults("no_such")


def test_experiment_defaults_are_copies():
    defaults = experiment_defaults("single_aux")
    assert defaults["n_splits"] == 5
    defaults["n_splits"] = 99
    assert experiment_defaults("single_aux")["n_splits"] == 5


# ------------------------------------------------------- wrapper parity

# Each case: experiment name, spec params, and the legacy wrapper call
# producing the table the runner must match bit-for-bit (after the JSON
# canonicalisation resume applies to every row).
PARITY_CASES = [
    ("table2_dataset_summary", {},
     lambda d, b: E.run_table2_dataset_summary(d).rows),
    ("similarity_methods", {},
     lambda d, b: E.run_table3_similarity_methods(d).rows),
    ("single_aux", {"n_splits": 3},
     lambda d, b: E.run_table4_single_auxiliary(d, n_splits=3).rows),
    ("multi_aux", {"n_splits": 3},
     lambda d, b: E.run_table5_multi_auxiliary(d, n_splits=3).rows),
    ("asr_count", {"n_splits": 3},
     lambda d, b: E.run_table6_asr_count_impact(d, n_splits=3).rows),
    ("unseen_threshold", {},
     lambda d, b: E.run_table7_threshold_detector(d).rows),
    ("cross_attack", {},
     lambda d, b: E.run_table8_cross_attack(d).rows),
    ("mae_accuracy", {"n_per_type": TINY.n_mae_per_type},
     lambda d, b: E.run_table10_mae_accuracy(
         d, n_per_type=TINY.n_mae_per_type).rows),
    ("mae_cross_type", {"n_per_type": TINY.n_mae_per_type},
     lambda d, b: E.run_table11_cross_type_defense(
         d, n_per_type=TINY.n_mae_per_type).rows),
    ("mae_comprehensive", {"n_per_type": TINY.n_mae_per_type},
     lambda d, b: E.run_table12_comprehensive(
         d, n_per_type=TINY.n_mae_per_type).rows),
    ("nontargeted", {},
     lambda d, b: E.run_nontargeted_detection(d).rows),
    ("transferability", {"max_aes": 4},
     lambda d, b: E.run_transferability_study(b, max_aes=4).rows),
    ("baseline_comparison", {"max_samples": 12},
     lambda d, b: E.run_baseline_comparison(b, max_samples=12).rows),
    ("kaldi_ablation", {"max_samples": 8, "n_splits": 2},
     lambda d, b: E.run_kaldi_auxiliary_ablation(
         b, d, max_samples=8, n_splits=2).rows),
    ("table1_example", {},
     lambda d, b: E.run_table1_example().rows),
    ("transform_ensemble", {},
     lambda d, b: E.run_transform_ensemble_comparison(scale="tiny").rows),
]


@pytest.mark.parametrize("name,params,wrapper", PARITY_CASES,
                         ids=[case[0] for case in PARITY_CASES])
def test_wrapper_parity(name, params, wrapper, tiny_dataset, tiny_bundle):
    result = _execute(name, params)
    assert result.complete
    expected = canonical_rows(wrapper(tiny_dataset, tiny_bundle))
    assert _nn(result.table.rows) == _nn(expected)


def test_figure4_parity(tiny_dataset):
    from repro.experiments import run_figure4_histograms

    result = _execute("figure4_histograms")
    expected = run_figure4_histograms(tiny_dataset)
    assert [row["system"] for row in result.table.rows] \
        == [hist.system for hist in expected]
    for row, hist in zip(result.table.rows, expected):
        assert row["overlap_fraction"] == pytest.approx(hist.overlap_fraction)


def test_figure5_parity(tiny_dataset):
    from repro.experiments import run_figure5_roc

    result = _execute("figure5_roc")
    expected = run_figure5_roc(tiny_dataset)
    assert [row["system"] for row in result.table.rows] \
        == [roc.system for roc in expected]
    for row, roc in zip(result.table.rows, expected):
        assert row["auc"] == pytest.approx(roc.auc)


def test_overhead_experiment_structure(tiny_dataset, tiny_bundle):
    """Overhead rows are wall-clock timings — pin the shape, not values."""
    result = _execute("overhead", {"max_samples": 4})
    expected = E.run_overhead_measurement(tiny_bundle, tiny_dataset,
                                          max_samples=4)
    assert result.complete
    assert [row["component"] for row in result.table.rows] \
        == [row["component"] for row in expected.rows]
    assert all(row["mean_seconds"] >= 0 for row in result.table.rows)


def test_scored_dataset_experiment_rebuilds_identically(tiny_dataset):
    result = _execute("scored_dataset", {"chunk_size": 7})
    assert result.complete and result.total_units > 1
    from repro.datasets.scores import load_scored_dataset

    rebuilt = load_scored_dataset(TINY)
    assert np.array_equal(rebuilt.labels, tiny_dataset.labels)
    assert rebuilt.kinds == tiny_dataset.kinds
    assert rebuilt.target_texts == tiny_dataset.target_texts
    assert rebuilt.auxiliary_texts == tiny_dataset.auxiliary_texts
    assert np.array_equal(rebuilt.scores, tiny_dataset.scores)


# ------------------------------------------------------ sharded execution


def test_run_store_journals_and_resumes(tmp_path, tiny_dataset):
    run_dir = str(tmp_path / "run")
    first = _execute("nontargeted", store=RunStore(run_dir), max_shards=1)
    assert not first.complete
    assert first.table is None
    assert first.executed_units == 1
    manifest = RunStore(run_dir).manifest()
    assert manifest["status"] == "incomplete"

    second = _execute("nontargeted", store=RunStore(run_dir))
    assert second.complete
    assert second.resumed_units == 1
    assert second.executed_units == first.total_units - 1
    fresh = _execute("nontargeted")
    assert second.table.rows == fresh.table.rows
    report = RunStore(run_dir).report()
    assert report["rows"] == second.table.rows


def test_run_store_rejects_different_spec(tmp_path, tiny_dataset):
    run_dir = str(tmp_path / "run")
    _execute("nontargeted", store=RunStore(run_dir), max_shards=1)
    with pytest.raises(RunSpecMismatch):
        _execute("nontargeted", {"max_fpr": 0.2}, store=RunStore(run_dir))


def test_run_store_ignores_worker_count(tmp_path, tiny_dataset):
    run_dir = str(tmp_path / "run")
    spec = ExperimentSpec(experiment="nontargeted", scale="tiny").validate()
    execute_experiment(build_experiment(spec), store=RunStore(run_dir),
                       max_shards=1)
    resumed = ExperimentSpec(experiment="nontargeted", scale="tiny",
                             workers=2).validate()
    result = execute_experiment(build_experiment(resumed),
                                store=RunStore(run_dir))
    assert result.complete and result.resumed_units == 1


@pytest.mark.timeout(120)
def test_forked_execution_matches_inline(tiny_dataset, tmp_path):
    spec = ExperimentSpec(experiment="nontargeted", scale="tiny",
                          workers=2).validate()
    forked = execute_experiment(build_experiment(spec),
                                store=RunStore(str(tmp_path / "run")))
    inline = _execute("nontargeted")
    assert forked.complete
    assert forked.table.rows == inline.table.rows


def _crash_on_second_shard(run_dir: str) -> None:
    """Child target: die mid-run after exactly one shard committed."""
    spec = ExperimentSpec(experiment="nontargeted", scale="tiny").validate()
    experiment = build_experiment(spec)
    real = experiment.run_shard
    done = []

    def sabotaged(unit):
        if done:
            os._exit(17)  # simulated kill between shards
        done.append(unit.key)
        return real(unit)

    experiment.run_shard = sabotaged
    execute_experiment(experiment, store=RunStore(run_dir))
    os._exit(99)  # never reached: the run dies on shard two


@pytest.mark.timeout(120)
def test_killed_run_resumes_without_reexecuting(tmp_path, tiny_dataset):
    run_dir = str(tmp_path / "run")
    child = _CTX.Process(target=_crash_on_second_shard, args=(run_dir,))
    child.start()
    child.join(timeout=60)
    assert child.exitcode == 17

    journaled = set(RunStore(run_dir).completed_shards())
    assert len(journaled) == 1

    spec = ExperimentSpec(experiment="nontargeted", scale="tiny").validate()
    experiment = build_experiment(spec)
    real = experiment.run_shard
    executed = []

    def counting(unit):
        executed.append(unit.key)
        return real(unit)

    experiment.run_shard = counting
    result = execute_experiment(experiment, store=RunStore(run_dir))
    assert result.complete
    assert result.resumed_units == 1
    assert not journaled & set(executed)  # completed shard never re-runs

    uninterrupted = _execute("nontargeted")
    assert result.table.rows == uninterrupted.table.rows


# ------------------------------------------------------------------ sweeps


def _sweep_spec() -> SweepSpec:
    return SweepSpec(
        base=ExperimentSpec(experiment="nontargeted", scale="tiny"),
        grid=(("params.max_fpr", (0.05, 0.1)),),
        name="fpr-sweep").validate()


def test_sweep_merges_reports_with_overlay_columns(tmp_path, tiny_dataset):
    result = run_sweep(_sweep_spec(), str(tmp_path / "sweep"))
    assert result.complete
    assert result.total_points == 2
    assert result.report["sweep"] == "fpr-sweep"
    labels = [point["label"] for point in result.report["points"]]
    assert labels == ["000-max_fpr=0.05", "001-max_fpr=0.1"]
    with open(os.path.join(result.run_dir, "report.md"),
              encoding="utf-8") as handle:
        markdown = handle.read()
    assert "max_fpr" in markdown.splitlines()[1]
    with open(os.path.join(result.run_dir, "report.json"),
              encoding="utf-8") as handle:
        assert json.load(handle) == result.report


def test_interrupted_sweep_resumes_bit_identical(tmp_path, tiny_dataset):
    baseline = run_sweep(_sweep_spec(), str(tmp_path / "uninterrupted"))
    interrupted_dir = str(tmp_path / "interrupted")
    first = run_sweep(_sweep_spec(), interrupted_dir, max_shards=2)
    assert not first.complete
    assert first.executed_units == 2
    second = run_sweep(_sweep_spec(), interrupted_dir)
    assert second.complete
    assert second.resumed_units == 2
    assert second.executed_units == baseline.executed_units - 2
    assert second.report == baseline.report


# --------------------------------------------------------------------- CLI


def test_cli_run_lists_experiments(capsys):
    assert main(["run"]) == 0
    out = capsys.readouterr().out
    assert "nontargeted" in out and "scored_dataset" in out


def test_cli_run_executes_and_resumes(tmp_path, tiny_dataset, capsys):
    run_dir = str(tmp_path / "run")
    args = ["run", "nontargeted", "--scale", "tiny", "--run-dir", run_dir,
            "--param", "max_fpr=0.1"]
    assert main([*args, "--max-shards", "1"]) == 3
    assert "incomplete" in capsys.readouterr().out
    assert main([*args, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["resumed_units"] == 1
    assert all(row["threshold"] is not None for row in payload["rows"])


def test_cli_run_rejects_bad_input(capsys):
    assert main(["run", "no_such_experiment"]) == 2
    assert "no_such_experiment" in capsys.readouterr().err
    assert main(["run", "nontargeted", "--param", "oops"]) == 2
    assert "KEY=VALUE" in capsys.readouterr().err


def test_cli_sweep_and_config_validate(tmp_path, tiny_dataset, capsys):
    grid = tmp_path / "sweep.json"
    grid.write_text(json.dumps({
        "experiment": "nontargeted", "scale": "tiny",
        "grid": {"params.max_fpr": [0.05, 0.1]}}))
    assert main(["config", "validate", str(grid)]) == 0
    assert "ok" in capsys.readouterr().out
    run_dir = str(tmp_path / "sweep-run")
    assert main(["sweep", str(grid), "--run-dir", run_dir]) == 0
    out = capsys.readouterr().out
    assert "max_fpr" in out and "defense_rate" in out


def test_cli_config_validate_flags_bad_experiment_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"experiment": "no_such_experiment"}))
    assert main(["config", "validate", str(bad)]) == 2
    assert "no_such_experiment" in capsys.readouterr().out
