"""Integration tests: dataset builders, scored datasets and experiments.

These tests exercise the full pipeline on the ``tiny`` scale preset.  The
first run generates the datasets (cached on disk afterwards), so this module
is the slowest part of the suite.
"""

import numpy as np
import pytest

from repro.config import TINY
from repro.datasets.scores import AUXILIARY_ORDER
from repro.experiments import (
    run_figure4_histograms,
    run_figure5_roc,
    run_nontargeted_detection,
    run_table2_dataset_summary,
    run_table3_similarity_methods,
    run_table4_single_auxiliary,
    run_table5_multi_auxiliary,
    run_table6_asr_count_impact,
    run_table7_threshold_detector,
    run_table8_cross_attack,
    run_table10_mae_accuracy,
    run_table11_cross_type_defense,
    run_table12_comprehensive,
)
from repro.experiments.runner import format_table
from repro.experiments.transferability import run_transferability_study


def test_bundle_sizes_match_scale(tiny_bundle):
    summary = tiny_bundle.summary()
    assert summary["benign"] == TINY.n_benign
    assert summary["whitebox"] == TINY.n_whitebox
    assert summary["blackbox"] == TINY.n_blackbox
    assert summary["nontargeted"] == TINY.n_nontargeted
    assert len(tiny_bundle.adversarial) == TINY.n_adversarial


def test_every_ae_fools_the_target_model(tiny_bundle, ds0):
    """The paper verifies that all AEs fool DS0; so does the builder."""
    for sample in tiny_bundle.adversarial:
        command = sample.waveform.metadata.get("target_text")
        assert command
        assert ds0.transcribe(sample.waveform).text == command


def test_scored_dataset_consistency(tiny_dataset):
    assert len(tiny_dataset) == (TINY.n_benign + TINY.n_adversarial
                                 + TINY.n_nontargeted)
    assert tiny_dataset.scores.shape == (len(tiny_dataset), 3)
    assert np.all((0.0 <= tiny_dataset.scores) & (tiny_dataset.scores <= 1.0))
    benign = tiny_dataset.benign_features()
    adversarial = tiny_dataset.adversarial_features()
    assert benign.shape[0] == TINY.n_benign
    assert adversarial.shape[0] == TINY.n_adversarial


def test_benign_scores_exceed_adversarial_scores(tiny_dataset):
    """The core feasibility claim (Figure 4): benign similarity > AE similarity."""
    benign = tiny_dataset.benign_features()
    adversarial = tiny_dataset.adversarial_features()
    assert benign.mean() > adversarial.mean() + 0.1
    # The minimum score across auxiliaries separates even better.
    assert benign.min(axis=1).mean() > adversarial.min(axis=1).mean() + 0.1


def test_features_for_other_method_recomputes(tiny_dataset):
    jaccard, labels = tiny_dataset.features_for(("DS1",), method="Jaccard")
    default, _ = tiny_dataset.features_for(("DS1",))
    assert jaccard.shape == default.shape
    assert labels.shape[0] == jaccard.shape[0]
    assert not np.allclose(jaccard, default)


def test_table2_summary(tiny_dataset):
    table = run_table2_dataset_summary(tiny_dataset)
    sizes = {row["dataset"]: row["samples"] for row in table.rows}
    assert sizes["Benign"] == TINY.n_benign
    assert sizes["White-box AEs"] == TINY.n_whitebox


def test_figure4_histograms(tiny_dataset):
    results = run_figure4_histograms(tiny_dataset)
    assert len(results) == 3
    for result in results:
        assert result.benign_counts.sum() == TINY.n_benign
        assert result.adversarial_counts.sum() == TINY.n_adversarial
        assert result.overlap_fraction < 0.8


def test_table3_similarity_methods(tiny_dataset):
    table = run_table3_similarity_methods(tiny_dataset)
    assert len(table.rows) == 6 * 4
    for row in table.rows:
        assert 0.0 <= row["accuracy"] <= 1.0
    assert "PE_JaroWinkler" in {row["method"] for row in table.rows}


def test_table4_and_table5_accuracy_shape(tiny_dataset):
    table4 = run_table4_single_auxiliary(tiny_dataset, n_splits=3)
    table5 = run_table5_multi_auxiliary(tiny_dataset, n_splits=3)
    assert len(table4.rows) == 9       # 3 classifiers x 3 systems
    assert len(table5.rows) == 12      # 3 classifiers x 4 systems
    best_single = max(row["accuracy_mean"] for row in table4.rows)
    best_multi = max(row["accuracy_mean"] for row in table5.rows)
    assert best_multi >= best_single - 0.05
    assert best_multi > 0.7


def test_table6_asr_count(tiny_dataset):
    table = run_table6_asr_count_impact(tiny_dataset, n_splits=3)
    assert len(table.rows) == 7
    assert {row["n_auxiliaries"] for row in table.rows} == {1, 2, 3}


def test_table7_and_figure5_unseen_attacks(tiny_dataset):
    table = run_table7_threshold_detector(tiny_dataset)
    assert len(table.rows) == 3
    for row in table.rows:
        assert row["fpr"] <= 0.05 + 1e-9
        assert 0.0 <= row["defense_rate"] <= 1.0
    # Per-row defense rates swing on 1-2 samples at tiny scale (the 5% FPR
    # budget admits zero benign outliers with only 16 benign samples), so the
    # statistical claim is asserted on the aggregate; see docs/EXPERIMENTS.md.
    mean_defense = np.mean([row["defense_rate"] for row in table.rows])
    assert mean_defense >= 0.4
    roc = run_figure5_roc(tiny_dataset)
    for curve in roc:
        assert 0.5 <= curve.auc <= 1.0


def test_table8_cross_attack(tiny_dataset):
    table = run_table8_cross_attack(tiny_dataset)
    assert len(table.rows) == 4
    for row in table.rows:
        assert 0.0 <= row["defense_rate_blackbox"] <= 1.0
        assert 0.0 <= row["defense_rate_whitebox"] <= 1.0


def test_mae_tables(tiny_dataset):
    table10 = run_table10_mae_accuracy(tiny_dataset, n_per_type=TINY.n_mae_per_type)
    assert len(table10.rows) == 6
    # Per-type accuracy is evaluated on ~12 held-out samples at tiny scale,
    # so individual rows sit within one sample of 0.6; assert a per-row floor
    # plus the aggregate claim instead (docs/EXPERIMENTS.md).
    assert all(row["accuracy"] > 0.5 for row in table10.rows)
    assert np.mean([row["accuracy"] for row in table10.rows]) > 0.6

    table11 = run_table11_cross_type_defense(tiny_dataset,
                                             n_per_type=TINY.n_mae_per_type)
    assert len(table11.rows) == 7
    # Training on Type-4 (fools DS1+GCS) should defend Type-1 (fools DS1
    # only).  At tiny scale the lambda-pools are estimated from only 28
    # samples, which caps the achievable rate well below the paper's ~1.0
    # (it converges to ~0.65 even with many synthesised vectors); assert a
    # better-than-chance floor here and see docs/EXPERIMENTS.md.
    type4_row = next(row for row in table11.rows if row["trained_on"] == "Type-4")
    assert type4_row["Type-1"] > 0.35

    table12 = run_table12_comprehensive(tiny_dataset, n_per_type=TINY.n_mae_per_type)
    rates = [row["defense_rate"] for row in table12.rows
             if not np.isnan(row["defense_rate"])]
    assert len(rates) == 4
    assert min(rates) > 0.35
    assert np.mean(rates) > 0.6


def test_nontargeted_detection(tiny_dataset):
    table = run_nontargeted_detection(tiny_dataset)
    assert len(table.rows) == 3
    # Only 6 nontargeted AEs exist at tiny scale, so a per-row >= 0.5 bound
    # is one-sample noise; assert the aggregate (docs/EXPERIMENTS.md).
    assert all(0.0 <= row["defense_rate"] <= 1.0 for row in table.rows)
    assert np.mean([row["defense_rate"] for row in table.rows]) >= 0.5


def test_transferability_study(tiny_bundle):
    table = run_transferability_study(tiny_bundle, max_aes=TINY.n_whitebox)
    rates = {row["asr"]: row["transfer_rate"] for row in table.rows}
    assert rates["DS0"] == 1.0
    for name in AUXILIARY_ORDER:
        assert rates[name] <= 0.25, f"AEs transfer to {name} too often"


def test_format_table_renders_markdown(tiny_dataset):
    table = run_table2_dataset_summary(tiny_dataset)
    markdown = table.to_markdown()
    assert "|" in markdown and "Benign" in markdown
    assert format_table([]) == "(no rows)\n"
