"""Tests for the acoustic model and the phoneme/word decoders."""

import numpy as np
import pytest

from repro.asr.acoustic import TemplateAcousticModel
from repro.asr.decoder import (
    WordDecoder,
    collapse_frame_labels,
    greedy_frame_labels,
    smoothed_frame_labels,
    split_at_silence,
    strip_silence,
    viterbi_frame_labels,
)
from repro.asr.registry import get_shared_language_model, get_shared_lexicon
from repro.dsp.features import MfccFeatureExtractor
from repro.text.phonemes import PHONEMES, PHONEME_TO_INDEX, SILENCE


@pytest.fixture(scope="module")
def acoustic_model(synthesizer_module):
    model = TemplateAcousticModel(MfccFeatureExtractor(), seed=5, template_noise=0.01)
    return model.fit(synthesizer_module)


@pytest.fixture(scope="module")
def synthesizer_module():
    from repro.audio.synthesis import SpeechSynthesizer

    return SpeechSynthesizer(seed=9, lexicon=get_shared_lexicon())


def test_unfitted_model_raises():
    model = TemplateAcousticModel(MfccFeatureExtractor(), seed=1)
    with pytest.raises(RuntimeError):
        model.logits(np.zeros((2, 13)))


def test_posteriors_are_distributions(acoustic_model, synthesizer_module):
    audio = synthesizer_module.synthesize("open the door")
    features = acoustic_model.feature_extractor.transform(audio.samples)
    posteriors = acoustic_model.posteriors(features)
    assert posteriors.shape == (features.shape[0], len(PHONEMES))
    assert np.allclose(posteriors.sum(axis=1), 1.0)
    assert np.all(posteriors >= 0)


def test_classify_vowel_exemplar(acoustic_model, synthesizer_module):
    exemplar = synthesizer_module.phoneme_exemplar("IY", duration=0.15)
    features = acoustic_model.feature_extractor.transform(exemplar)
    middle = features[len(features) // 2][None, :]
    labels = acoustic_model.classify_frames(middle)
    # The middle frame of a clean vowel exemplar should be that vowel (or at
    # worst a close front vowel).
    assert labels[0] in {"IY", "IH", "Y", "EY"}


def test_logits_gradient_matches_finite_difference(acoustic_model):
    rng = np.random.default_rng(2)
    features = rng.normal(size=(3, acoustic_model.feature_extractor.feature_dim))
    grad_logits = rng.normal(size=(3, len(PHONEMES)))
    analytic = acoustic_model.logits_gradient(features, grad_logits)
    eps = 1e-6
    for f, k in [(0, 0), (1, 5), (2, 8)]:
        plus = features.copy(); plus[f, k] += eps
        minus = features.copy(); minus[f, k] -= eps
        numeric = ((acoustic_model.logits(plus) * grad_logits).sum()
                   - (acoustic_model.logits(minus) * grad_logits).sum()) / (2 * eps)
        assert np.isclose(analytic[f, k], numeric, rtol=1e-4, atol=1e-6)


def test_target_margin_loss_zero_when_target_wins(acoustic_model):
    # Features equal to a template win that phoneme by a wide margin.
    index = PHONEME_TO_INDEX["AA"]
    features = acoustic_model.templates[index][None, :]
    loss, grad = acoustic_model.target_margin_loss(features, np.array([index]),
                                                   margin=0.1)
    assert loss == 0.0
    assert np.allclose(grad, 0.0)


def test_target_margin_loss_positive_for_wrong_target(acoustic_model):
    features = acoustic_model.templates[PHONEME_TO_INDEX["AA"]][None, :]
    loss, grad = acoustic_model.target_margin_loss(
        features, np.array([PHONEME_TO_INDEX["S"]]), margin=0.5)
    assert loss > 0.0
    assert np.any(grad != 0.0)


def test_greedy_and_smoothed_decoders():
    log_posteriors = np.log(np.array([[0.7, 0.2, 0.1], [0.6, 0.3, 0.1],
                                      [0.1, 0.8, 0.1]]))
    padded = np.full((3, len(PHONEMES)), -20.0)
    padded[:, :3] = log_posteriors
    labels = greedy_frame_labels(padded)
    assert labels[0] == PHONEMES[0] and labels[2] == PHONEMES[1]
    smoothed = smoothed_frame_labels(padded, window=1)
    assert len(smoothed) == 3


def test_viterbi_prefers_stable_paths():
    noisy = np.full((6, len(PHONEMES)), -10.0)
    noisy[:, 0] = -1.0
    noisy[3, 1] = -0.5      # single-frame blip
    labels = viterbi_frame_labels(noisy)
    assert labels.count(PHONEMES[0]) >= 5


def test_viterbi_subsampling_expands_back():
    posteriors = np.full((9, len(PHONEMES)), -5.0)
    labels = viterbi_frame_labels(posteriors, frame_subsampling_factor=3)
    assert len(labels) == 9


def test_collapse_and_silence_helpers():
    labels = ["SIL", "SIL", "AA", "AA", "AA", "B", "SIL", "SIL", "K", "K"]
    collapsed = collapse_frame_labels(labels, min_run=2)
    assert collapsed == ["SIL", "AA", "SIL", "K"]
    assert strip_silence(collapsed) == ["AA", "K"]
    assert split_at_silence(["AA", "SIL", "B", "K"]) == [["AA"], ["B", "K"]]
    with pytest.raises(ValueError):
        collapse_frame_labels(labels, min_run=0)


def test_word_decoder_exact_and_noisy_segments():
    decoder = WordDecoder(get_shared_lexicon(), get_shared_language_model())
    lexicon = get_shared_lexicon()
    phonemes = [SILENCE, *lexicon.pronounce("open"), SILENCE,
                *lexicon.pronounce("door"), SILENCE]
    text, words = decoder.decode(phonemes)
    assert text == "open door"
    assert words == ["open", "door"]

    # One wrong phoneme should still decode to the right word.
    noisy = [SILENCE, "D", "AO", "L", SILENCE]
    text, _ = decoder.decode(noisy)
    assert text == "door"


def test_word_decoder_empty_input():
    decoder = WordDecoder(get_shared_lexicon(), get_shared_language_model())
    assert decoder.decode([SILENCE, SILENCE]) == ("", [])
