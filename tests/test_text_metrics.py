"""Tests for WER / CER / edit distance."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.metrics import (
    character_error_rate,
    edit_distance,
    transcription_matches,
    word_error_rate,
)

_tokens = st.lists(st.sampled_from(["open", "the", "door", "now", "cat"]), max_size=8)


def test_edit_distance_basics():
    assert edit_distance("abc", "abc") == 0
    assert edit_distance("abc", "abd") == 1
    assert edit_distance("", "abc") == 3
    assert edit_distance("abc", "") == 3


def test_wer_exact_and_total_mismatch():
    assert word_error_rate("open the door", "open the door") == 0.0
    assert word_error_rate("open the door", "close a window") == 1.0


def test_wer_empty_reference():
    assert word_error_rate("", "") == 0.0
    assert word_error_rate("", "something") == 1.0


def test_cer_partial():
    assert 0.0 < character_error_rate("open", "opan") < 1.0


def test_transcription_matches_threshold():
    assert transcription_matches("open the door", "open the door")
    assert not transcription_matches("open the door", "open a door")
    assert transcription_matches("open the door", "open a door", max_wer=0.5)


@given(_tokens, _tokens)
def test_edit_distance_symmetry(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


@given(_tokens, _tokens)
def test_edit_distance_bounds(a, b):
    distance = edit_distance(a, b)
    assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))


@given(_tokens, _tokens, _tokens)
def test_edit_distance_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@given(_tokens)
def test_wer_identity(tokens):
    sentence = " ".join(tokens)
    assert word_error_rate(sentence, sentence) == 0.0
