"""Bit-identity parity harness for the vectorized DSP / decode kernels.

Every vectorized ("fast") kernel in the recognition stack ships next to
the seed library's per-clip / per-item reference implementation, and the
contract is ``==`` (``np.array_equal``), never ``allclose``: the batched
path must replay the reference's floating-point operations exactly.
These are property tests (hypothesis drives shapes, rates, dtypes and
contents, including empty and single-frame edge cases) covering:

* ``mel_filterbank`` vs ``mel_filterbank_reference``
* ``overlap_add`` vs ``overlap_add_reference``
* ``smoothed_frame_labels`` vs ``smoothed_frame_labels_reference``
* ``FeatureExtractor.transform_batch`` vs per-clip ``transform`` for all
  front-end families (MFCC, log-mel, mel-cepstrum, LPCC, LPC envelope)
* ``TemplateAcousticModel.log_posteriors_batch`` vs ``log_posteriors``
* ``batched_edit_distances`` / ``levenshtein_codes_batch`` vs
  ``edit_distance``
* ``BigramLanguageModel.word_scores`` vs per-word ``word_score``
* ``WordDecoder`` fast vs scalar lexicon search

plus the float64 dtype-stability guarantee of the front ends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr.decoder import (
    WordDecoder,
    smoothed_frame_labels,
    smoothed_frame_labels_reference,
)
from repro.asr.registry import get_shared_language_model, get_shared_lexicon
from repro.dsp.features import (
    LogMelFeatureExtractor,
    LpcFeatureExtractor,
    MfccFeatureExtractor,
)
from repro.dsp.framing import overlap_add, overlap_add_reference
from repro.dsp.mel import mel_filterbank, mel_filterbank_reference
from repro.text.metrics import (
    batched_edit_distances,
    edit_distance,
    levenshtein_codes_batch,
)
from repro.text.phonemes import PHONEMES, SILENCE


def _extractors():
    """One extractor per front-end family (small geometries for speed)."""
    return [
        MfccFeatureExtractor(),
        LogMelFeatureExtractor(frame_length=256, hop_length=128, n_fft=256,
                               n_mels=20),
        LogMelFeatureExtractor(frame_length=256, hop_length=128, n_fft=256,
                               n_mels=20, n_ceps=12),
        LpcFeatureExtractor(frame_length=240, hop_length=120, order=10,
                            style="cepstrum"),
        LpcFeatureExtractor(frame_length=240, hop_length=120, order=10,
                            n_bands=16, style="envelope"),
    ]


def _clip(rng: np.random.Generator, length: int) -> np.ndarray:
    return rng.uniform(-1.0, 1.0, size=length)


# ------------------------------------------------------------ mel filterbank
@given(n_filters=st.integers(min_value=2, max_value=40),
       n_fft=st.sampled_from([128, 256, 512]),
       sample_rate=st.sampled_from([8_000, 16_000, 22_050]))
def test_mel_filterbank_matches_reference(n_filters, n_fft, sample_rate):
    fast = mel_filterbank(n_filters, n_fft, sample_rate)
    reference = mel_filterbank_reference(n_filters, n_fft, sample_rate)
    assert fast.dtype == np.float64
    assert np.array_equal(fast, reference)


# --------------------------------------------------------------- overlap-add
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       count=st.integers(min_value=0, max_value=12),
       frame_length=st.integers(min_value=1, max_value=64),
       hop=st.integers(min_value=1, max_value=64))
def test_overlap_add_matches_reference(seed, count, frame_length, hop):
    frames = np.random.default_rng(seed).standard_normal((count, frame_length))
    fast = overlap_add(frames, hop)
    reference = overlap_add_reference(frames, hop)
    assert np.array_equal(fast, reference)


def test_overlap_add_empty_and_single_frame():
    assert overlap_add(np.zeros((0, 8)), 4).shape == (0,)
    frames = np.arange(8, dtype=float).reshape(1, 8)
    assert np.array_equal(overlap_add(frames, 3),
                          overlap_add_reference(frames, 3))


# ------------------------------------------------------- smoothed frame labels
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       n_frames=st.integers(min_value=0, max_value=40),
       window=st.integers(min_value=1, max_value=4))
def test_smoothed_frame_labels_match_reference(seed, n_frames, window):
    log_posteriors = np.log(np.random.default_rng(seed).dirichlet(
        np.ones(len(PHONEMES)), size=n_frames)) if n_frames else \
        np.zeros((0, len(PHONEMES)))
    fast = smoothed_frame_labels(log_posteriors, window=window)
    reference = smoothed_frame_labels_reference(log_posteriors, window=window)
    assert fast == reference


# ---------------------------------------------------------- front-end batches
@pytest.mark.parametrize("extractor", _extractors(),
                         ids=lambda e: e.cache_tag.split(":", 1)[0]
                         + ":" + e.cache_tag.split(":")[1])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       lengths=st.lists(st.sampled_from([0, 1, 37, 240, 256, 400, 1000, 2048]),
                        min_size=0, max_size=4))
@settings(max_examples=20, deadline=None)
def test_transform_batch_matches_per_clip(extractor, seed, lengths):
    rng = np.random.default_rng(seed)
    batch = [_clip(rng, length) for length in lengths]
    fast = extractor.transform_batch(batch)
    reference = [extractor.transform(samples) for samples in batch]
    assert len(fast) == len(reference)
    for fast_clip, reference_clip in zip(fast, reference):
        assert fast_clip.shape == reference_clip.shape
        assert np.array_equal(fast_clip, reference_clip)


@pytest.mark.parametrize("extractor", _extractors(),
                         ids=lambda e: e.cache_tag.split(":", 1)[0]
                         + ":" + e.cache_tag.split(":")[1])
def test_front_ends_are_float64_and_dtype_stable(extractor):
    """float32 / int16 inputs yield the same float64 features as float64."""
    rng = np.random.default_rng(11)
    samples = _clip(rng, 1200)
    baseline = extractor.transform(samples)
    assert baseline.dtype == np.float64
    for dtype in (np.float32, np.float64):
        cast = samples.astype(dtype)
        features = extractor.transform(cast)
        assert features.dtype == np.float64
        assert np.array_equal(
            features, extractor.transform(cast.astype(np.float64)))
    ints = (samples * 32767).astype(np.int16)
    assert extractor.transform(ints).dtype == np.float64


# --------------------------------------------------------- acoustic batching
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       lengths=st.lists(st.sampled_from([0, 1, 200, 700, 1600]),
                        min_size=0, max_size=4))
@settings(max_examples=15, deadline=None)
def test_log_posteriors_batch_matches_per_clip(ds0, seed, lengths):
    rng = np.random.default_rng(seed)
    model = ds0.acoustic_model
    features = [ds0.feature_extractor.transform(_clip(rng, length))
                for length in lengths]
    fast = model.log_posteriors_batch(features)
    reference = [model.log_posteriors(clip) for clip in features]
    assert len(fast) == len(reference)
    for fast_clip, reference_clip in zip(fast, reference):
        assert np.array_equal(fast_clip, reference_clip)


# ------------------------------------------------------ batched edit distance
_phoneme_seqs = st.lists(st.sampled_from(["AA", "B", "K", "S", "IY", "T"]),
                         max_size=7).map(tuple)


@given(references=st.lists(_phoneme_seqs, max_size=12),
       hypothesis_seq=_phoneme_seqs)
def test_batched_edit_distances_match_scalar(references, hypothesis_seq):
    batched = batched_edit_distances(references, list(hypothesis_seq))
    assert batched.dtype == np.int64
    assert len(batched) == len(references)
    for reference, value in zip(references, batched):
        assert value == edit_distance(list(reference), list(hypothesis_seq))


def test_levenshtein_codes_batch_matches_scalar():
    rng = np.random.default_rng(3)
    codes = {}

    def encode(seq):
        return [codes.setdefault(token, len(codes)) for token in seq]

    alphabet = ["AA", "B", "K", "S", "IY", "T", "M", "N"]
    references = [tuple(rng.choice(alphabet, size=rng.integers(0, 9)))
                  for _ in range(50)]
    max_len = max((len(r) for r in references), default=0)
    matrix = np.full((len(references), max(1, max_len)), -1, dtype=np.int32)
    lengths = np.zeros(len(references), dtype=np.int64)
    for row, reference in enumerate(references):
        encoded = encode(reference)
        matrix[row, :len(encoded)] = encoded
        lengths[row] = len(encoded)
    for hyp_len in (0, 1, 3, 7):
        hypothesis_seq = list(rng.choice(alphabet, size=hyp_len))
        batched = levenshtein_codes_batch(
            matrix, lengths, np.array(encode(hypothesis_seq), dtype=np.int32))
        for reference, value in zip(references, batched):
            assert value == edit_distance(list(reference), hypothesis_seq)


# ------------------------------------------------------- language model scores
@given(prev=st.sampled_from([None, "the", "open", "door", "zzz-unseen", "<s>"]))
@settings(deadline=None)
def test_word_scores_match_scalar(prev):
    language_model = get_shared_language_model()
    words = get_shared_lexicon().words[:200]
    vector = language_model.word_scores(prev, words)
    assert vector.dtype == np.float64
    scalar = np.array([language_model.word_score(prev, word)
                       for word in words])
    assert np.array_equal(vector, scalar)


def test_unigram_logprob_vector_matches_scalar():
    language_model = get_shared_language_model()
    words = get_shared_lexicon().words[:200]
    vector = language_model.unigram_logprob_vector(words)
    scalar = np.array([language_model.unigram_logprob(word)
                       for word in words])
    assert np.array_equal(vector, scalar)


# -------------------------------------------------------- word decoder search
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       n_tokens=st.integers(min_value=0, max_value=14))
@settings(max_examples=25, deadline=None)
def test_word_decoder_fast_search_matches_scalar(seed, n_tokens):
    rng = np.random.default_rng(seed)
    alphabet = [p for p in PHONEMES if p != SILENCE]
    tokens = []
    for _ in range(n_tokens):
        # Interleave silences so multi-segment decodes are exercised.
        if rng.random() < 0.2:
            tokens.append(SILENCE)
        tokens.append(str(rng.choice(alphabet)))
    fast = WordDecoder(get_shared_lexicon(), get_shared_language_model(),
                       search="fast")
    scalar = WordDecoder(get_shared_lexicon(), get_shared_language_model(),
                         search="scalar")
    assert fast.decode(list(tokens)) == scalar.decode(list(tokens))


def test_word_decoder_rejects_unknown_search():
    with pytest.raises(ValueError):
        WordDecoder(get_shared_lexicon(), get_shared_language_model(),
                    search="turbo")
