"""Tests for the MFCC extractor and its analytic gradient."""

import numpy as np
import pytest

from repro.dsp.mfcc import MfccConfig, MfccExtractor


@pytest.fixture(scope="module")
def extractor():
    return MfccExtractor(MfccConfig(frame_length=256, hop_length=128, n_fft=256,
                                    n_mels=20, n_mfcc=10))


def test_config_validation():
    with pytest.raises(ValueError):
        MfccConfig(frame_length=512, n_fft=256)
    with pytest.raises(ValueError):
        MfccConfig(n_mels=10, n_mfcc=20)


def test_transform_shape(extractor):
    signal = np.random.default_rng(0).standard_normal(4000)
    features = extractor.transform(signal)
    assert features.shape[1] == 10
    assert features.shape[0] > 0
    assert np.all(np.isfinite(features))


def test_transform_frames_matches_transform(extractor):
    signal = np.random.default_rng(1).standard_normal(2000)
    frames = extractor.frames(signal)
    assert np.allclose(extractor.transform(signal), extractor.transform_frames(frames))


def test_gradient_matches_finite_differences(extractor):
    rng = np.random.default_rng(2)
    frames = rng.standard_normal((3, 256)) * 0.1
    tape = extractor.forward_with_tape(frames)
    grad_out = rng.standard_normal(tape.mfcc.shape)
    analytic = tape.backward(grad_out)

    # Finite-difference check on a handful of sample positions.
    epsilon = 1e-6
    for frame_idx, sample_idx in [(0, 10), (1, 100), (2, 200), (0, 255)]:
        perturbed = frames.copy()
        perturbed[frame_idx, sample_idx] += epsilon
        plus = (extractor.transform_frames(perturbed) * grad_out).sum()
        perturbed[frame_idx, sample_idx] -= 2 * epsilon
        minus = (extractor.transform_frames(perturbed) * grad_out).sum()
        numeric = (plus - minus) / (2 * epsilon)
        assert np.isclose(analytic[frame_idx, sample_idx], numeric, rtol=1e-3, atol=1e-6)


def test_backward_rejects_wrong_shape(extractor):
    frames = np.zeros((2, 256))
    tape = extractor.forward_with_tape(frames)
    with pytest.raises(ValueError):
        tape.backward(np.zeros((3, 10)))


def test_silence_gives_finite_features(extractor):
    features = extractor.transform(np.zeros(2000))
    assert np.all(np.isfinite(features))
