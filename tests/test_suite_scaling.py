"""Tests for the suite-scaling experiment (PR 10).

Covers the config-expressible suite construction, the sharded +
resumable ``repro run suite_scaling`` path (exit 3 on budget, resume to
completion), and the manifest attribution record (per-shard suite
composition and version fingerprints).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.experiments.suite_scaling import suite_for
from repro.specs import ASRSpec


def test_suite_for_compositions():
    family = suite_for("family", 4)
    assert family.target == ASRSpec("DS0")
    assert [aux.name for aux in family.auxiliaries] == [
        "sim-00", "sim-01", "sim-02", "sim-03"]
    mixed = suite_for("paper+family", 5)
    assert [aux.name for aux in mixed.auxiliaries] == [
        "DS1", "GCS", "AT", "sim-00", "sim-01"]
    small = suite_for("paper+family", 2)
    assert [aux.name for aux in small.auxiliaries] == ["DS1", "GCS"]
    assert family.problems() == []
    assert mixed.problems() == []
    with pytest.raises(ValueError, match="unknown composition"):
        suite_for("bogus", 2)
    with pytest.raises(ValueError, match="at least 1"):
        suite_for("family", 0)


def test_cli_run_suite_scaling_resumes_with_manifest(tmp_path, tiny_bundle,
                                                     capsys):
    run_dir = str(tmp_path / "run")
    args = ["run", "suite_scaling", "--scale", "tiny", "--run-dir", run_dir,
            "--workers", "0", "--param", "sizes=[2,3]"]
    # Budgeted run stops incomplete with exit code 3...
    assert main([*args, "--max-shards", "1"]) == 3
    assert "incomplete" in capsys.readouterr().out
    with open(os.path.join(run_dir, "manifest.json"),
              encoding="utf-8") as handle:
        manifest = json.load(handle)
    assert manifest["status"] == "incomplete"
    # ...and already records which exact suites the run measures.
    assert manifest["suites"]["family-n02"]["auxiliaries"] == [
        "sim-00", "sim-01"]
    assert "fingerprints" in manifest["suites"]["family-n03"]
    # Resuming the same command finishes without re-running the shard.
    assert main([*args, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["resumed_units"] == 1
    assert [row["suite_size"] for row in payload["rows"]] == [2, 3]
    for row in payload["rows"]:
        assert 0.0 <= row["accuracy"] <= 1.0
        assert row["per_clip_seconds"] > 0
        assert row["composition"] == "family"
    with open(os.path.join(run_dir, "manifest.json"),
              encoding="utf-8") as handle:
        manifest = json.load(handle)
    assert manifest["status"] == "complete"
    assert manifest["suite"]["target"] == "DS0"
    fingerprints = manifest["suites"]["family-n02"]["fingerprints"]
    assert set(fingerprints) == {"DS0", "sim-00", "sim-01"}
    assert all(fp not in ("unknown", "unavailable")
               for fp in fingerprints.values())
