"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs (which build an editable wheel) fail.  Keeping a ``setup.py`` lets
``pip install -e . --no-build-isolation`` fall back to the legacy develop
install path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
