"""Proactive training against (future) transferable audio AEs.

Section V-H of the paper: no method can currently craft audio AEs that fool
several heterogeneous ASRs, but the detector can be trained *today* against
hypothetical multiple-ASR-effective (MAE) AEs synthesised in similarity-
score space.  This example builds the comprehensive detector and shows it
defends every weaker AE type.

Run with::

    python examples/proactive_transferable_defense.py
"""

from repro.core.mae import MAE_TYPES, synthesize_mae_features
from repro.core.proactive import ComprehensiveDetector
from repro.datasets.scores import load_scored_dataset
from repro.experiments.mae_aes import build_score_pools


def main() -> None:
    dataset = load_scored_dataset("tiny")
    pools = build_score_pools(dataset)
    benign = dataset.benign_features()

    detector = ComprehensiveDetector(classifier="SVM")
    detector.fit(pools, benign, n_per_type=300)
    print("trained the comprehensive detector on hypothetical MAE AE Types 4-6\n")

    print(f"{'unseen attack':<22} defense rate")
    original = dataset.adversarial_features()
    print(f"{'original audio AEs':<22} {detector.defense_rate(original):.3f}")
    for name in ("Type-1", "Type-2", "Type-3"):
        features = synthesize_mae_features(name, pools, 300, seed=11)
        label = MAE_TYPES[name].label()
        print(f"{label:<22} {detector.defense_rate(features):.3f}")

    report = detector.evaluate(benign, [0] * benign.shape[0])
    print(f"\nfalse positive rate on benign samples: {report.fpr:.3f}")


if __name__ == "__main__":
    main()
