"""Craft white-box and black-box AEs and examine their transferability.

Reproduces the Section III observation interactively: an AE crafted against
DeepSpeech v0.1.0 fools that model but none of the other ASRs.

Run with::

    python examples/attack_and_transferability.py
"""

from repro import BlackBoxGeneticAttack, WhiteBoxCarliniAttack, build_asr
from repro.asr.registry import get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer
from repro.text.metrics import word_error_rate


def probe(adversarial, command, suite):
    for name, asr in suite.items():
        text = asr.transcribe(adversarial).text
        fooled = word_error_rate(command, text) == 0.0
        print(f"  {name:>3}: {'FOOLED ' if fooled else 'not fooled'} — heard {text!r}")


def main() -> None:
    suite = {name: build_asr(name) for name in ("DS0", "DS1", "GCS", "AT")}
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=21)

    print("=== white-box attack (Carlini-style, targets DS0) ===")
    host = synthesizer.synthesize("the fisherman pulled the net from the water")
    command = "unlock the back door"
    result = WhiteBoxCarliniAttack(suite["DS0"]).run(host, command)
    print(f"host text : {host.text!r}")
    print(f"command   : {command!r}")
    print(f"success   : {result.success}, similarity {result.similarity:.1f}%")
    probe(result.adversarial, command, suite)

    print("\n=== black-box attack (genetic + gradient estimation, targets DS0) ===")
    host = synthesizer.synthesize("the bus stops near the library")
    command = "open door"
    result = BlackBoxGeneticAttack(suite["DS0"], seed=5).run(host, command)
    print(f"host text : {host.text!r}")
    print(f"command   : {command!r}")
    print(f"success   : {result.success}, similarity {result.similarity:.1f}%")
    probe(result.adversarial, command, suite)


if __name__ == "__main__":
    main()
