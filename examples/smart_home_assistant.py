"""Scenario: a smart-home voice assistant protected by MVP-EARS.

The assistant receives a stream of voice commands.  Most are legitimate,
but an attacker has planted audio adversarial examples (crafted against the
assistant's DeepSpeech model) in, e.g., a podcast the user plays.  The
detector screens every audio before the assistant acts on it.

Run with::

    python examples/smart_home_assistant.py
"""

import numpy as np

from repro import MVPEarsDetector, WhiteBoxCarliniAttack, build_asr
from repro.asr.registry import get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer
from repro.datasets.scores import load_scored_dataset

LEGITIMATE_COMMANDS = [
    "turn off all the lights",
    "the weather is nice today",
    "please call me later tonight",
    "turn the volume to maximum",
]

MALICIOUS_COMMANDS = [
    "open the front door",
    "turn off the security camera",
]

HOST_SENTENCES = [
    "the old man walked slowly along the river",
    "the sound of the bell echoed through the valley",
]


def main() -> None:
    target = build_asr("DS0")
    auxiliaries = [build_asr(name) for name in ("DS1", "GCS", "AT")]
    detector = MVPEarsDetector(target, auxiliaries, classifier="SVM")
    dataset = load_scored_dataset("tiny")
    features, labels = dataset.features_for(("DS1", "GCS", "AT"))
    detector.fit_features(features, labels)

    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=7)
    attack = WhiteBoxCarliniAttack(target)
    rng = np.random.default_rng(0)

    # Build the incoming audio stream: legitimate commands plus hidden AEs.
    stream = []
    for command in LEGITIMATE_COMMANDS:
        stream.append(("user", synthesizer.synthesize(command)))
    for command, host in zip(MALICIOUS_COMMANDS, HOST_SENTENCES):
        result = attack.run(synthesizer.synthesize(host), command)
        stream.append(("attacker", result.adversarial))
    rng.shuffle(stream)

    accepted, blocked = 0, 0
    for source, audio in stream:
        result = detector.detect(audio)
        action = "BLOCKED " if result.is_adversarial else "ACCEPTED"
        if result.is_adversarial:
            blocked += 1
        else:
            accepted += 1
        print(f"[{action}] ({source:8}) assistant heard: "
              f"{result.target_transcription!r} | min score "
              f"{result.scores.min():.2f}")
    print(f"\naccepted {accepted} commands, blocked {blocked} suspicious inputs")


if __name__ == "__main__":
    main()
