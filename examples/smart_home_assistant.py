"""Scenario: an always-listening smart-home assistant guarded by MVP-EARS.

The assistant's microphone never stops: legitimate voice commands arrive
interleaved with household audio, and an attacker has planted audio
adversarial examples (crafted against the assistant's DeepSpeech model)
in, e.g., a podcast the user plays.  Instead of screening pre-cut clips,
the detector now screens the *continuous stream*: audio is pushed into a
:class:`~repro.serving.streaming.StreamSession` as it arrives, cut into
fixed-size detection windows, scored in batches through the
:class:`~repro.pipeline.detection.DetectionPipeline`, and folded into a
stream-level verdict with hysteresis so one noisy window does not flip
the assistant into lockdown.  A replayed command lands on the same
window grid and is served from the content-hash transcription cache.

Run with::

    PYTHONPATH=src python examples/smart_home_assistant.py
"""

import numpy as np

from repro import DetectorSpec, WhiteBoxCarliniAttack, build_streaming
from repro.asr.registry import get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer
from repro.audio.waveform import Waveform
from repro.config import SAMPLE_RATE

#: Detection window: every segment below is padded to a whole number of
#: windows so the stream stays window-aligned (hop == window) and a
#: replayed segment hits the transcription cache exactly.
WINDOW_SECONDS = 2.0

LEGITIMATE_COMMANDS = [
    "turn off all the lights",
    "the weather is nice today",
    "please call me later tonight",
    "turn the volume to maximum",
]

MALICIOUS_COMMANDS = [
    "open the front door",
    "turn off the security camera",
]

HOST_SENTENCES = [
    "the old man walked slowly along the river",
    "the sound of the bell echoed through the valley",
]


def padded_to_window_grid(audio: Waveform, sample_rate: int) -> Waveform:
    """Zero-pad ``audio`` to a whole number of detection windows."""
    window = round(WINDOW_SECONDS * sample_rate)
    n_windows = max(1, -(-len(audio) // window))
    return audio.padded_to(n_windows * window)


def main() -> None:
    # The paper's default DS0+{DS1, GCS, AT} system plus the assistant's
    # stream windowing, declared as one spec (see docs/CONFIG.md) and
    # built into a fitted streaming detector in one call.
    spec = (DetectorSpec.default(scale="tiny")
            .with_value("serving.window_seconds", WINDOW_SECONDS)
            .with_value("serving.hop_seconds", WINDOW_SECONDS)  # aligned tiling
            .with_value("serving.trigger_windows", 2)
            .with_value("serving.release_windows", 1))
    streaming = build_streaming(spec)
    detector = streaming.pipeline.detector
    sample_rate = SAMPLE_RATE  # the grid must match the synthesized audio

    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=7)
    attack = WhiteBoxCarliniAttack(detector.target_asr)
    rng = np.random.default_rng(0)

    # Build the incoming stream: legitimate commands plus hidden AEs, each
    # padded onto the window grid, then a replay of the first command.
    segments = []
    for command in LEGITIMATE_COMMANDS:
        segments.append(("user", command, synthesizer.synthesize(command)))
    for command, host in zip(MALICIOUS_COMMANDS, HOST_SENTENCES):
        result = attack.run(synthesizer.synthesize(host), command)
        segments.append(("attacker", command, result.adversarial))
    rng.shuffle(segments)
    # The user replays their first command of the stream; on the aligned
    # window grid it is served entirely from the transcription cache.
    replayed = next(seg for seg in segments if seg[0] == "user")
    segments.append(replayed)
    segments = [(source, command, padded_to_window_grid(audio, sample_rate))
                for source, command, audio in segments]

    session = streaming.session()

    # Feed the stream segment by segment, as a live microphone would.
    print(f"streaming {sum(a.duration for _, _, a in segments):.1f} s of audio "
          f"in {WINDOW_SECONDS:.1f} s windows\n")
    for source, _, audio in segments:
        for verdict in session.push(audio):
            mark = "!" if verdict.is_adversarial else " "
            print(f"[{verdict.start_seconds:6.1f}s – {verdict.end_seconds:6.1f}s] "
                  f"{mark} {verdict.state:<11} ({source:8}) heard: "
                  f"{verdict.target_transcription!r}")
    result = session.flush()

    print()
    if result.spans:
        for span in result.spans:
            print(f"FLAGGED {span.start_seconds:.1f}s – {span.end_seconds:.1f}s "
                  f"({span.n_windows} windows) — command stream blocked there")
    else:
        print("stream clean: no adversarial spans")
    print(f"{result.n_adversarial_windows} of {len(result)} windows flagged; "
          f"stage totals {result.stage_seconds['total']:.3f} s; "
          f"replayed audio served {result.cache_hits} transcriptions "
          f"from cache")


if __name__ == "__main__":
    main()
