"""Scenario: a smart-home voice assistant protected by MVP-EARS.

The assistant receives a stream of voice commands.  Most are legitimate,
but an attacker has planted audio adversarial examples (crafted against the
assistant's DeepSpeech model) in, e.g., a podcast the user plays.  The
detector screens the whole stream in one batched
:class:`~repro.pipeline.detection.DetectionPipeline` pass: recognition
fans out across the ASR worker pool, classification is one vectorised
call, and a replayed command is served from the transcription cache.

Run with::

    PYTHONPATH=src python examples/smart_home_assistant.py
"""

import numpy as np

from repro import DetectionPipeline, MVPEarsDetector, WhiteBoxCarliniAttack, build_asr
from repro.asr.registry import get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer
from repro.datasets.scores import load_scored_dataset

LEGITIMATE_COMMANDS = [
    "turn off all the lights",
    "the weather is nice today",
    "please call me later tonight",
    "turn the volume to maximum",
]

MALICIOUS_COMMANDS = [
    "open the front door",
    "turn off the security camera",
]

HOST_SENTENCES = [
    "the old man walked slowly along the river",
    "the sound of the bell echoed through the valley",
]


def main() -> None:
    target = build_asr("DS0")
    auxiliaries = [build_asr(name) for name in ("DS1", "GCS", "AT")]
    detector = MVPEarsDetector(target, auxiliaries, classifier="SVM")
    dataset = load_scored_dataset("tiny")
    features, labels = dataset.features_for(("DS1", "GCS", "AT"))
    detector.fit_features(features, labels)

    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=7)
    attack = WhiteBoxCarliniAttack(target)
    rng = np.random.default_rng(0)

    # Build the incoming audio stream: legitimate commands plus hidden AEs.
    stream = []
    for command in LEGITIMATE_COMMANDS:
        stream.append(("user", synthesizer.synthesize(command)))
    for command, host in zip(MALICIOUS_COMMANDS, HOST_SENTENCES):
        result = attack.run(synthesizer.synthesize(host), command)
        stream.append(("attacker", result.adversarial))
    # The user replays a command — the detector should not re-decode it.
    stream.append(("user", stream[0][1]))
    rng.shuffle(stream)

    pipeline = DetectionPipeline(detector)
    batch = pipeline.detect_batch([audio for _, audio in stream])

    accepted, blocked = 0, 0
    for (source, _), result in zip(stream, batch.results):
        action = "BLOCKED " if result.is_adversarial else "ACCEPTED"
        if result.is_adversarial:
            blocked += 1
        else:
            accepted += 1
        print(f"[{action}] ({source:8}) assistant heard: "
              f"{result.target_transcription!r} | min score "
              f"{result.scores.min():.2f}")
    stage = batch.mean_stage_seconds()
    print(f"\naccepted {accepted} commands, blocked {blocked} suspicious inputs")
    print(f"screened {len(batch)} clips in {batch.stage_seconds['total']:.3f} s "
          f"({stage['recognition'] * 1000:.1f} ms recognition per clip); "
          f"transcription cache served {batch.cache_hits} of "
          f"{batch.cache_hits + batch.cache_misses} transcriptions")


if __name__ == "__main__":
    main()
