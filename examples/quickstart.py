"""Quickstart: build an MVP-EARS detector and classify one benign sample
and one adversarial example.

The detector fans recognition out across the ASR suite with a worker
pool (pass ``workers=0`` for the original sequential path) and caches
transcriptions by audio content, so re-screening a clip is nearly free.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro import MVPEarsDetector, WhiteBoxCarliniAttack, build_asr
from repro.asr.registry import get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer
from repro.datasets.scores import load_scored_dataset


def main() -> None:
    # 1. The ASR suite: DeepSpeech v0.1.0 is the target, the other three are
    #    the auxiliary models (Figure 3 of the paper).
    target = build_asr("DS0")
    auxiliaries = [build_asr(name) for name in ("DS1", "GCS", "AT")]

    # 2. Train the detector on the cached tiny evaluation dataset.
    dataset = load_scored_dataset("tiny")
    detector = MVPEarsDetector(target, auxiliaries, classifier="SVM")
    features, labels = dataset.features_for(("DS1", "GCS", "AT"))
    detector.fit_features(features, labels)

    # 3. Craft one adversarial example and synthesise one benign sample.
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=99)
    benign = synthesizer.synthesize("the captain studied the map for a long time")
    attack = WhiteBoxCarliniAttack(target)
    adversarial = attack.run(
        synthesizer.synthesize("a gentle wind moved the leaves of the trees"),
        "open the front door").adversarial

    # 4. Detect.
    for name, audio in (("benign", benign), ("adversarial", adversarial)):
        result = detector.detect(audio)
        print(f"--- {name} sample ---")
        print(f"  target ASR heard : {result.target_transcription!r}")
        for aux_name, text in result.auxiliary_transcriptions.items():
            print(f"  {aux_name:>3} heard        : {text!r}")
        print(f"  similarity scores: {result.scores.round(3)}")
        print(f"  verdict          : {'ADVERSARIAL' if result.is_adversarial else 'benign'}")
        print(f"  detection time   : {result.elapsed_seconds * 1000:.1f} ms "
              f"(recognition {result.timing['recognition'] * 1000:.1f} ms)")
        print()

    # 5. Re-screening the same clip hits the transcription cache.
    rerun = detector.detect(benign)
    stats = detector.engine.stats
    print(f"re-screened benign clip in {rerun.elapsed_seconds * 1000:.2f} ms "
          f"(cache: {stats.hits} hits / {stats.misses} misses)")


if __name__ == "__main__":
    main()
