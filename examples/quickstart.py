"""Quickstart: describe an MVP-EARS detector as a spec, build it, and
classify one benign sample and one adversarial example.

A detection system is one declarative value — a ``DetectorSpec`` tree
naming the ASR suite, the scoring method, the classifier and the
training preset — and ``repro.build(spec)`` turns it into a fitted
detector.  The same spec round-trips through JSON, so the system built
here is exactly reproducible from a config file (see
``examples/configs/`` and ``docs/CONFIG.md``).

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro import DetectorSpec, WhiteBoxCarliniAttack, build
from repro.asr.registry import get_shared_lexicon
from repro.audio.synthesis import SpeechSynthesizer


def main() -> None:
    # 1. The paper's system, declaratively: DeepSpeech v0.1.0 as the
    #    target, {DS1, GCS, AT} as the auxiliary versions (Figure 3),
    #    trained on the cached tiny evaluation dataset.
    spec = DetectorSpec.default(scale="tiny")
    print("system spec:")
    print(spec.to_json())

    # 2. One call from spec to fitted detector.
    detector = build(spec)

    # 3. Craft one adversarial example and synthesise one benign sample.
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=99)
    benign = synthesizer.synthesize("the captain studied the map for a long time")
    attack = WhiteBoxCarliniAttack(detector.target_asr)
    adversarial = attack.run(
        synthesizer.synthesize("a gentle wind moved the leaves of the trees"),
        "open the front door").adversarial

    # 4. Detect.
    for name, audio in (("benign", benign), ("adversarial", adversarial)):
        result = detector.detect(audio)
        print(f"--- {name} sample ---")
        print(f"  target ASR heard : {result.target_transcription!r}")
        for aux_name, text in result.auxiliary_transcriptions.items():
            print(f"  {aux_name:>3} heard        : {text!r}")
        print(f"  similarity scores: {result.scores.round(3)}")
        print(f"  verdict          : {'ADVERSARIAL' if result.is_adversarial else 'benign'}")
        print(f"  detection time   : {result.elapsed_seconds * 1000:.1f} ms "
              f"(recognition {result.timing['recognition'] * 1000:.1f} ms)")
        print()

    # 5. The spec survives a JSON round trip — a config file IS the system.
    assert DetectorSpec.from_dict(spec.to_dict()) == spec

    # 6. Re-screening the same clip hits the transcription cache.
    rerun = detector.detect(benign)
    stats = detector.engine.stats
    print(f"re-screened benign clip in {rerun.elapsed_seconds * 1000:.2f} ms "
          f"(cache: {stats.hits} hits / {stats.misses} misses)")


if __name__ == "__main__":
    main()
