"""Benchmark E-SIM: the similarity scoring engine's perf trajectory.

Runs the same measurement as ``python -m repro bench-similarity`` (which
writes ``BENCH_similarity.json`` — CI uploads it as an artifact) and
asserts the engine's two perf contracts:

* the fast backend is no slower than the reference backend on the cold
  batch path (the ``detect_batch`` shape), and
* a warm :class:`~repro.similarity.score_cache.PairScoreCache` delivers
  at least 5x reference throughput on the streaming-window workload
  (each pair recurring ``overlap`` times, the shape overlapping stream
  windows produce).

Parity is asserted exactly: a speedup with different scores is a defect.
"""

import json

from repro.similarity.bench import run_similarity_benchmark


def test_similarity_engine_benchmark(benchmark, tmp_path):
    report = benchmark.pedantic(
        run_similarity_benchmark,
        kwargs=dict(n_pairs=300, overlap=4, repeats=3),
        rounds=1, iterations=1)
    out = tmp_path / "BENCH_similarity.json"
    out.write_text(json.dumps(report, indent=2))
    print()
    print(json.dumps(report, indent=2))

    assert report["parity_max_abs_diff"] == 0.0
    assert report["batch"]["speedup"] >= 1.0
    assert report["stream"]["speedup"] >= 5.0
    assert report["stream"]["cache_hit_rate"] == 1.0
