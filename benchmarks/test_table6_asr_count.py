"""Benchmark E-T6: Table VI — impact of the number of auxiliary ASRs."""

import numpy as np
from conftest import report_table

from repro.experiments.multi_aux import run_table6_asr_count_impact


def test_table6_asr_count_impact(benchmark, scored_dataset):
    table = benchmark.pedantic(run_table6_asr_count_impact, args=(scored_dataset,),
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 7
    by_count = {}
    for row in table.rows:
        by_count.setdefault(row["n_auxiliaries"], []).append(row["accuracy"])
    # More auxiliaries should not hurt accuracy on average (Table VI's point:
    # FPR/FNR tend to decline as auxiliaries are added).
    assert np.mean(by_count[3]) >= np.mean(by_count[1]) - 0.02
