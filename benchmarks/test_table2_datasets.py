"""Benchmark E-T2: Table II — dataset construction."""

from conftest import report_table

from repro.experiments.feasibility import run_table2_dataset_summary


def test_table2_dataset_summary(benchmark, scored_dataset, scale):
    table = benchmark(run_table2_dataset_summary, scored_dataset)
    report_table(table)
    sizes = {row["dataset"]: row["samples"] for row in table.rows}
    assert sizes["Benign"] == scale.n_benign
    assert sizes["White-box AEs"] == scale.n_whitebox
    assert sizes["Black-box AEs"] == scale.n_blackbox
