"""Benchmark E-NT: Section V-J — non-targeted AE detection."""

from conftest import report_table

from repro.experiments.nontargeted import run_nontargeted_detection


def test_nontargeted_detection(benchmark, scored_dataset):
    table = benchmark(run_nontargeted_detection, scored_dataset)
    report_table(table)
    assert len(table.rows) == 3
    for row in table.rows:
        assert row["defense_rate"] >= 0.5
