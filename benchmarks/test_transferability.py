"""Benchmark E-TR: Section III — transferability study."""

from conftest import report_table

from repro.experiments.transferability import (
    run_recursive_attack_probe,
    run_transferability_study,
)


def test_transferability_matrix(benchmark, bundle, scale):
    table = benchmark(run_transferability_study, bundle, scale.n_whitebox)
    report_table(table)
    rates = {row["asr"]: row["transfer_rate"] for row in table.rows}
    assert rates["DS0"] == 1.0
    for name in ("DS1", "GCS", "AT"):
        assert rates[name] <= 0.25


def test_recursive_attack_does_not_transfer(benchmark):
    table = benchmark.pedantic(run_recursive_attack_probe, rounds=1, iterations=1)
    report_table(table)
    transferable = next(row for row in table.rows if row["stage"] == "transferable?")
    assert not transferable["success"]
