"""Benchmark E-F4: Figure 4 — similarity score histograms."""

from repro.experiments.feasibility import run_figure4_histograms


def test_figure4_histograms(benchmark, scored_dataset):
    results = benchmark(run_figure4_histograms, scored_dataset)
    assert len(results) == 3
    for result in results:
        print(f"\n{result.system}: benign mean={result.benign_scores.mean():.3f} "
              f"AE mean={result.adversarial_scores.mean():.3f} "
              f"overlap={result.overlap_fraction:.3f}")
        # Benign and adversarial scores form (almost) disjoint clusters.
        assert result.benign_scores.mean() > result.adversarial_scores.mean()
        assert result.overlap_fraction < 0.8
