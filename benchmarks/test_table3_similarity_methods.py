"""Benchmark E-T3: Table III — similarity calculation methods."""

import numpy as np
from conftest import report_table

from repro.experiments.similarity_methods import best_method, run_table3_similarity_methods


def test_table3_similarity_methods(benchmark, scored_dataset):
    table = benchmark.pedantic(run_table3_similarity_methods, args=(scored_dataset,),
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 24
    accuracies = [row["accuracy"] for row in table.rows]
    assert np.mean(accuracies) > 0.7
    winner = best_method(table)
    print(f"\nbest method: {winner}")
    # Phonetic-encoding variants should be competitive with the raw metrics
    # (the paper selects PE_JaroWinkler as the best combination).
    pe_mean = np.mean([r["accuracy"] for r in table.rows if r["method"].startswith("PE_")])
    raw_mean = np.mean([r["accuracy"] for r in table.rows if not r["method"].startswith("PE_")])
    assert pe_mean >= raw_mean - 0.05
