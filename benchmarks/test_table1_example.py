"""Benchmark E-T1: Table I — one AE transcribed by every ASR."""

from conftest import report_table

from repro.experiments.feasibility import run_table1_example


def test_table1_example(benchmark):
    table = benchmark.pedantic(run_table1_example, rounds=1, iterations=1)
    report_table(table)
    roles = {row["role"] for row in table.rows}
    assert roles == {"target", "auxiliary"}
    # The target model transcribes the attacker's command...
    assert table.rows[0]["attack_success"]
    # ...and no auxiliary transcription equals the command.
    command = table.rows[0]["command"]
    for row in table.rows[1:]:
        assert row["transcription"] != command
