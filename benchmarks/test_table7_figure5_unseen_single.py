"""Benchmark E-T7 + E-F5: Table VII and Figure 5 — unseen-attack detection."""

from conftest import report_table

from repro.experiments.unseen_attacks import run_figure5_roc, run_table7_threshold_detector


def test_table7_threshold_detector(benchmark, scored_dataset):
    table = benchmark(run_table7_threshold_detector, scored_dataset)
    report_table(table)
    assert len(table.rows) == 3
    for row in table.rows:
        assert row["fpr"] <= 0.05 + 1e-9
        assert row["defense_rate"] >= 0.5


def test_figure5_roc(benchmark, scored_dataset):
    curves = benchmark(run_figure5_roc, scored_dataset)
    for curve in curves:
        print(f"\n{curve.system}: AUC={curve.auc:.4f}")
        assert curve.auc > 0.7
