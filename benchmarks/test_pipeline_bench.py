"""Benchmark E-PIPE: the end-to-end recognition pipeline's perf trajectory.

Runs the same measurement as ``python -m repro bench-pipeline`` (which
writes ``BENCH_pipeline.json`` — CI uploads it as an artifact) and
asserts the vectorized front end's two perf contracts:

* the fast path (batched front end + acoustic scoring + vectorized
  decoder search) is no slower than the seed library's per-clip
  reference path even on a cold feature cache, and
* a warm :class:`~repro.dsp.feature_cache.FeatureCache` is no slower
  than the reference path either (in practice it is much faster — the
  front end never runs — but the gate only pins "never a regression").

Parity is asserted exactly: the fast path must produce *bit-identical*
transcriptions (text, phonemes and frame labels), so a speedup that
changes any verdict is a defect, not a win.
"""

import json

from repro.pipeline.bench import run_pipeline_benchmark


def test_pipeline_benchmark(benchmark, tmp_path):
    report = benchmark.pedantic(
        run_pipeline_benchmark,
        kwargs=dict(n_clips=6, repeats=3),
        rounds=1, iterations=1)
    out = tmp_path / "BENCH_pipeline.json"
    out.write_text(json.dumps(report, indent=2))
    print()
    print(json.dumps(report, indent=2))

    assert report["parity_mismatches"] == 0
    assert report["cold"]["speedup"] >= 1.0
    assert report["warm"]["speedup"] >= 1.0
    assert report["feature_cache"]["hit_rate"] > 0.0
