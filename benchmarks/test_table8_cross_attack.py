"""Benchmark E-T8: Table VIII — cross-attack generalisation."""

import numpy as np
from conftest import report_table

from repro.experiments.unseen_attacks import run_table8_cross_attack


def test_table8_cross_attack(benchmark, scored_dataset):
    table = benchmark.pedantic(run_table8_cross_attack, args=(scored_dataset,),
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 4
    rates = ([row["defense_rate_blackbox"] for row in table.rows]
             + [row["defense_rate_whitebox"] for row in table.rows])
    assert np.mean(rates) > 0.6
