"""Benchmark E-T5: Table V — multi-auxiliary-model systems."""

from conftest import report_table

from repro.experiments.multi_aux import run_table5_multi_auxiliary
from repro.experiments.single_aux import run_table4_single_auxiliary


def test_table5_multi_auxiliary(benchmark, scored_dataset):
    table = benchmark.pedantic(run_table5_multi_auxiliary, args=(scored_dataset,),
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 12

    # Multi-auxiliary systems should be at least as accurate as the best
    # single-auxiliary system (the paper's headline observation).
    single = run_table4_single_auxiliary(scored_dataset)
    best_single = max(row["accuracy_mean"] for row in single.rows)
    best_multi = max(row["accuracy_mean"] for row in table.rows)
    print(f"\nbest single-aux accuracy={best_single:.4f}, best multi-aux={best_multi:.4f}")
    assert best_multi >= best_single - 0.02
