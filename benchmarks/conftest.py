"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper from the same
scored dataset.  The dataset scale is selected with the ``REPRO_SCALE``
environment variable (``tiny`` by default so a full benchmark run finishes
in minutes; use ``small`` / ``medium`` / ``paper`` for larger runs).  The
underlying audio datasets and similarity scores are cached on disk, so only
the first benchmark run pays the generation cost.
"""

from __future__ import annotations

import os

import pytest

from repro.config import get_scale
from repro.datasets.builder import load_standard_bundle
from repro.datasets.scores import load_scored_dataset


def _scale():
    return get_scale(os.environ.get("REPRO_SCALE", "tiny"))


@pytest.fixture(scope="session")
def scale():
    return _scale()


@pytest.fixture(scope="session")
def scored_dataset(scale):
    return load_scored_dataset(scale)


@pytest.fixture(scope="session")
def bundle(scale):
    return load_standard_bundle(scale)


def report_table(table) -> None:
    """Print an experiment table so benchmark logs double as result logs."""
    print()
    print(table.to_markdown())
