"""Benchmark E-ABL: ablations — weak (Kaldi) auxiliary and baselines."""

from conftest import report_table

from repro.experiments.ablations import run_baseline_comparison, run_kaldi_auxiliary_ablation


def test_kaldi_auxiliary_ablation(benchmark, bundle, scored_dataset):
    table = benchmark.pedantic(run_kaldi_auxiliary_ablation,
                               args=(bundle, scored_dataset),
                               rounds=1, iterations=1)
    report_table(table)
    rows = {row["system"]: row for row in table.rows}
    # An inaccurate auxiliary (Kaldi) yields worse detection than DS1.
    assert rows["DS0+{KAL}"]["accuracy"] <= rows["DS0+{DS1}"]["accuracy"] + 0.05


def test_baseline_comparison(benchmark, bundle):
    table = benchmark.pedantic(run_baseline_comparison, args=(bundle,),
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 3
    for row in table.rows:
        assert 0.0 <= row["accuracy"] <= 1.0
