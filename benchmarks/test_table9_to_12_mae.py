"""Benchmarks E-T9..E-T12: Tables IX-XII — hypothetical MAE AEs."""

import numpy as np
from conftest import report_table

from repro.experiments.mae_aes import (
    run_table9_mae_types,
    run_table10_mae_accuracy,
    run_table11_cross_type_defense,
    run_table12_comprehensive,
)


def test_table9_mae_types(benchmark, scored_dataset, scale):
    mae_sets = benchmark(run_table9_mae_types, scored_dataset, scale.n_mae_per_type)
    assert len(mae_sets) == 6
    for name, features in mae_sets.items():
        print(f"\n{name}: {features.shape[0]} synthetic MAE AEs")
        assert features.shape == (scale.n_mae_per_type, 3)


def test_table10_mae_accuracy(benchmark, scored_dataset, scale):
    table = benchmark.pedantic(run_table10_mae_accuracy, args=(scored_dataset,),
                               kwargs={"n_per_type": scale.n_mae_per_type},
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 6
    assert all(row["accuracy"] > 0.6 for row in table.rows)


def test_table11_cross_type_defense(benchmark, scored_dataset, scale):
    table = benchmark.pedantic(run_table11_cross_type_defense, args=(scored_dataset,),
                               kwargs={"n_per_type": scale.n_mae_per_type},
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 7
    # Training on a superset type defends its subset types (paper finding 2):
    type4 = next(row for row in table.rows if row["trained_on"] == "Type-4")
    assert type4["Type-1"] > 0.8
    type5 = next(row for row in table.rows if row["trained_on"] == "Type-5")
    assert type5["Type-1"] > 0.8


def test_table12_comprehensive(benchmark, scored_dataset, scale):
    table = benchmark.pedantic(run_table12_comprehensive, args=(scored_dataset,),
                               kwargs={"n_per_type": scale.n_mae_per_type},
                               rounds=1, iterations=1)
    report_table(table)
    rates = [row["defense_rate"] for row in table.rows
             if not np.isnan(row["defense_rate"])]
    # The comprehensive system defends original AEs and Types 1-3.
    assert len(rates) == 4
    assert min(rates) > 0.8
