"""Benchmark E-T4: Table IV — single-auxiliary-model systems."""

from conftest import report_table

from repro.experiments.single_aux import run_table4_single_auxiliary


def test_table4_single_auxiliary(benchmark, scored_dataset):
    table = benchmark.pedantic(run_table4_single_auxiliary, args=(scored_dataset,),
                               rounds=1, iterations=1)
    report_table(table)
    assert len(table.rows) == 9
    for row in table.rows:
        assert row["accuracy_mean"] > 0.6
    best = max(row["accuracy_mean"] for row in table.rows)
    assert best > 0.8
