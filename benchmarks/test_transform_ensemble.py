"""Benchmark E-TE: transform-ensemble vs multi-ASR vs combined detection."""

from conftest import report_table

from repro.experiments.transform_ensemble import run_transform_ensemble_comparison


def test_transform_ensemble_comparison(benchmark, scale, bundle):
    del bundle  # fixture warms the on-disk audio cache the study reads
    table = benchmark(run_transform_ensemble_comparison, scale)
    report_table(table)
    assert [row["system"] for row in table.rows] == ["transform", "multi-asr",
                                                     "combined"]
    for row in table.rows:
        for key in ("accuracy", "fpr", "fnr"):
            assert 0.0 <= row[key] <= 1.0
    # The combined suite has every version the other two systems have.
    assert table.rows[2]["n_versions"] == (table.rows[0]["n_versions"]
                                           + table.rows[1]["n_versions"])
