"""Benchmark E-OVH: Section V-I — detection time overhead.

The measurement now routes through the batched
:class:`~repro.pipeline.detection.DetectionPipeline`; the table reports
every pipeline stage relative to the target model's own decode time.
"""

from conftest import report_table

from repro.experiments.overhead import run_overhead_measurement


def test_overhead_measurement(benchmark, bundle, scored_dataset):
    table = benchmark.pedantic(run_overhead_measurement, args=(bundle, scored_dataset),
                               rounds=1, iterations=1)
    report_table(table)
    components = {row["component"]: row for row in table.rows}
    # Per-stage timing through the pipeline is part of the report.
    assert {"target recognition (baseline)", "parallel recognition overhead",
            "similarity calculation", "classification",
            "pipeline total (per clip)"} <= set(components)
    baseline = components["target recognition (baseline)"]["mean_seconds"]
    similarity = components["similarity calculation"]["mean_seconds"]
    classification = components["classification"]["mean_seconds"]
    # Similarity and classification are negligible next to recognition.
    assert similarity < 0.1 * baseline
    assert classification < 0.1 * baseline
