"""The ``repro`` command line: screen clips, screen streams, benchmark.

Exposes the whole detection stack without writing Python::

    python -m repro screen clip.wav other.wav   # batch-screen WAV clips
    python -m repro stream recording.wav        # windowed streaming verdicts
    python -m repro serve tenants.json          # multi-process service demo
    python -m repro bench                       # serving-layer benchmark
    python -m repro bench-similarity            # scoring-backend benchmark
    python -m repro bench-pipeline              # end-to-end pipeline benchmark
    python -m repro bench-serve                 # concurrent-service benchmark
    python -m repro config show                 # effective detector spec
    python -m repro config validate cfg.json    # schema-check config files

(Installed as the ``repro`` console script too; ``repro --help`` for the
full option list.)  Every detector-building command constructs through a
declarative :class:`~repro.specs.DetectorSpec` (see docs/CONFIG.md):
``--config PATH`` loads a JSON spec file (environment ``REPRO_*``
variables overlay the file, explicit flags overlay both), and with no
config the paper's default DS0+{DS1, GCS, AT} system is described by
flags alone — ``--target`` / ``--auxiliaries`` pick suite members from
the open ASR registry (plugins included), ``--defense
transform|combined`` swaps in transformed views of the target (see
docs/DEFENSES.md), ``--scorer`` / ``--scoring-backend`` /
``--score-cache`` shape the scoring engine (see docs/SCORING.md), and
``--scale`` picks the training preset (default ``tiny``; the first run
at a scale generates and disk-caches that dataset).  ``config show``
prints the effective spec as JSON — a ready-to-save config file —
and ``config validate`` schema-checks files, naming each bad field and
its allowed values.  ``bench`` synthesises a workload and drives it
through the sequential detector, the batched pipeline and the
micro-batcher; ``bench-similarity`` times the reference vs fast scoring
backends and writes ``BENCH_similarity.json``; ``bench-pipeline`` times
per-clip reference recognition against the vectorized batched front end
(cold and warm feature cache), requires bit-identical transcriptions,
and writes ``BENCH_pipeline.json``.  ``--feature-backend`` /
``--feature-cache`` shape the front-end feature engine (see
docs/FEATURES.md).  ``serve`` starts the multi-process
:class:`~repro.serving.service.DetectionService` from a tenant manifest
(see docs/SERVING.md) and drives a synthetic request burst through its
asyncio front door; ``bench-serve`` measures that service at 100+
concurrent streams against the sequential path, requires bit-identical
verdicts, and writes ``BENCH_serve.json``.

Exit status: ``screen`` and ``stream`` exit 1 when anything was flagged
adversarial (so shell scripts can gate on the verdict), 0 otherwise;
bad inputs (including invalid configs) exit 2.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

PROG = "repro"


class CliError(Exception):
    """A user-input problem (bad path, bad WAV, unknown name, bad geometry)."""


def _read_clips(paths: list[str]):
    from repro.audio.wavio import read_wav

    clips = []
    for path in paths:
        try:
            clips.append(read_wav(path))
        except (FileNotFoundError, IsADirectoryError, PermissionError,
                ValueError) as exc:
            raise CliError(f"cannot read {path!r}: {exc}") from exc
    return clips


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="MVP-EARS audio adversarial example detection "
                    "(DSN 2019 reproduction).")
    commands = parser.add_subparsers(dest="command", metavar="command")

    def add_detector_options(sub: argparse.ArgumentParser) -> None:
        # Detector flags default to None so only the ones the user
        # actually passed overlay the spec (config file / env / built-in
        # defaults fill the rest); suite choices come from the open ASR
        # registry, so registered plugins are selectable by name.
        from repro.asr.registry import available_asr_names
        from repro.specs import DEFENSE_MODES, SCALE_NAMES

        sub.add_argument("--config", default=None, metavar="PATH",
                         help="JSON DetectorSpec file (see docs/CONFIG.md); "
                              "REPRO_* env vars overlay the file, explicit "
                              "flags overlay both")
        sub.add_argument("--scale", default=None, choices=SCALE_NAMES,
                         help="scored-dataset scale used to fit the "
                              "classifier (default: tiny; with --config, "
                              "the file's training.scale — null there "
                              "means REPRO_SCALE or 'small')")
        sub.add_argument("--workers", type=int, default=None,
                         help="transcription worker-pool size "
                              "(default: CPU count; 0 = sequential)")
        sub.add_argument("--classifier", default=None, metavar="NAME",
                         help="classifier registry name (default: SVM)")
        # No argparse choices= here: the registry also resolves the
        # parameterised KAL-fs<N> family, so validation happens through
        # the spec (which names the available systems on a miss).
        sub.add_argument("--target", default=None, metavar="NAME",
                         help="target ASR short name (default: DS0; "
                              f"registered: {', '.join(available_asr_names())})")
        sub.add_argument("--auxiliaries", default=None, metavar="NAMES",
                         help="comma-separated auxiliary ASR names from the "
                              "registry (default: the paper's DS1,GCS,AT)")
        sub.add_argument("--defense", default=None, choices=DEFENSE_MODES,
                         help="auxiliary-version kind: diverse ASR models "
                              "(multi-asr, the paper's system), input "
                              "transformations of the target model "
                              "(transform), or both (combined)")
        sub.add_argument("--transforms", default=None, metavar="SPECS",
                         help="comma-separated transform specs for the "
                              "transform/combined defenses, e.g. "
                              "'quantize:8,lowpass:3000' (default: the "
                              "standard five-transform suite)")
        sub.add_argument("--scorer", default=None, metavar="METHOD",
                         help="similarity method name, e.g. PE_JaroWinkler "
                              "(default), Cosine, PE_Jaccard")
        sub.add_argument("--scoring-backend", default=None,
                         choices=("fast", "reference"),
                         help="similarity kernel backend: the encode-once "
                              "fast engine (default) or the paper-faithful "
                              "scalar reference path (bit-identical scores)")
        sub.add_argument("--score-cache", default=None, metavar="POLICY",
                         help="pair-score cache: 'shared' (default, "
                              "process-wide), 'private', 'off', or a JSON "
                              "file path for an on-disk store")
        sub.add_argument("--feature-backend", default=None,
                         choices=("fast", "reference", "off"),
                         help="front-end feature backend: the batch-"
                              "vectorized engine (fast, default), the "
                              "per-clip reference path (bit-identical "
                              "features), or 'off' to disable the shared "
                              "feature engine entirely")
        sub.add_argument("--feature-cache", default=None, metavar="POLICY",
                         help="feature cache: 'shared' (default, "
                              "process-wide), 'private', 'off', or an .npz "
                              "file path for an on-disk store")
        sub.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of text")

    screen = commands.add_parser(
        "screen", help="screen one or more WAV clips (one verdict per file)")
    screen.add_argument("wav", nargs="+", help="16-bit mono PCM WAV files")
    add_detector_options(screen)

    stream = commands.add_parser(
        "stream", help="screen one WAV as a continuous stream of windows")
    stream.add_argument("wav", help="16-bit mono PCM WAV file")
    stream.add_argument("--window", type=float, default=None,
                        help="detection window length in seconds (default: 2.0)")
    stream.add_argument("--hop", type=float, default=None,
                        help="hop between window starts in seconds "
                             "(default: window / 2)")
    stream.add_argument("--trigger", type=int, default=None,
                        help="consecutive adversarial windows that flip the "
                             "stream verdict (default: 2)")
    stream.add_argument("--release", type=int, default=None,
                        help="consecutive benign windows that release it "
                             "(default: 2)")
    add_detector_options(stream)

    serve = commands.add_parser(
        "serve", help="run the multi-process detection service on a "
                      "synthetic request burst")
    serve.add_argument("manifest", nargs="?", default=None,
                       help="tenant manifest JSON (default: one 'default' "
                            "tenant running the paper's system)")
    serve.add_argument("--requests", type=int, default=16,
                       help="concurrent requests to drive (default: 16)")
    serve.add_argument("--clips", type=int, default=6,
                       help="distinct synthesised utterances cycled across "
                            "the requests (default: 6)")
    serve.add_argument("--tenant", default=None,
                       help="tenant to address (default: every tenant, "
                            "round-robin)")
    serve.add_argument("--workers", type=int, default=None,
                       help="override the manifest's worker count")
    serve.add_argument("--timeout", type=float, default=None,
                       help="override the per-request deadline in seconds")
    serve.add_argument("--seed", type=int, default=0,
                       help="workload sampling seed (default: 0)")
    serve.add_argument("--json", action="store_true",
                       help="emit one JSON object per request plus a "
                            "summary instead of text")

    bench = commands.add_parser(
        "bench", help="benchmark sequential vs batched vs micro-batched "
                      "serving; 'bench all' writes the full BENCH_*.json "
                      "perf trajectory")
    bench.add_argument("what", nargs="?", default=None, choices=("all",),
                       help="'all' runs bench-similarity, bench-pipeline and "
                            "bench-serve at a fixed tiny scale and writes "
                            "the three BENCH_*.json trajectory files")
    bench.add_argument("--output-dir", default=".", metavar="DIR",
                       help="where 'bench all' writes the BENCH_*.json "
                            "files (default: current directory)")
    bench.add_argument("--clips", type=int, default=12,
                       help="number of synthesised clips (default: 12)")
    bench.add_argument("--batch-size", type=int, default=8,
                       help="micro-batcher max batch size (default: 8)")
    bench.add_argument("--max-latency", type=float, default=0.02,
                       help="micro-batcher max queue latency in seconds "
                            "(default: 0.02)")
    bench.add_argument("--seed", type=int, default=0,
                       help="workload sampling seed (default: 0)")
    add_detector_options(bench)

    bench_sim = commands.add_parser(
        "bench-similarity",
        help="benchmark reference vs fast similarity scoring backends")
    bench_sim.add_argument("--pairs", type=int, default=300,
                           help="distinct transcription pairs in the "
                                "workload (default: 300)")
    bench_sim.add_argument("--overlap", type=int, default=4,
                           help="recurrences per pair in the streaming-"
                                "window workload (default: 4)")
    bench_sim.add_argument("--repeats", type=int, default=3,
                           help="timing repetitions, best-of (default: 3)")
    bench_sim.add_argument("--seed", type=int, default=0,
                           help="workload sampling seed (default: 0)")
    bench_sim.add_argument("--scorer", default=None, metavar="METHOD",
                           help="similarity method to time "
                                "(default: PE_JaroWinkler)")
    bench_sim.add_argument("--output", default="BENCH_similarity.json",
                           metavar="PATH",
                           help="where to write the machine-readable report "
                                "(default: BENCH_similarity.json)")
    bench_sim.add_argument("--json", action="store_true",
                           help="print the JSON report instead of the "
                                "human-readable summary")

    bench_pipe = commands.add_parser(
        "bench-pipeline",
        help="benchmark the reference vs vectorized recognition pipeline")
    bench_pipe.add_argument("--clips", type=int, default=6,
                            help="number of synthesised clips in the "
                                 "workload (default: 6)")
    bench_pipe.add_argument("--repeats", type=int, default=3,
                            help="warm-pass timing repetitions, best-of "
                                 "(default: 3)")
    bench_pipe.add_argument("--seed", type=int, default=0,
                            help="workload sampling seed (default: 0)")
    bench_pipe.add_argument("--output", default="BENCH_pipeline.json",
                            metavar="PATH",
                            help="where to write the machine-readable report "
                                 "(default: BENCH_pipeline.json)")
    bench_pipe.add_argument("--json", action="store_true",
                            help="print the JSON report instead of the "
                                 "human-readable summary")

    bench_serve = commands.add_parser(
        "bench-serve",
        help="benchmark the multi-process service at high concurrency "
             "against the sequential path")
    bench_serve.add_argument("--streams", type=int, default=100,
                             help="concurrent detection streams "
                                  "(default: 100)")
    bench_serve.add_argument("--clips", type=int, default=12,
                             help="distinct synthesised utterances cycled "
                                  "across the streams (default: 12)")
    bench_serve.add_argument("--workers", type=int, default=2,
                             help="worker process count (default: 2)")
    bench_serve.add_argument("--seed", type=int, default=0,
                             help="workload sampling seed (default: 0)")
    bench_serve.add_argument("--timeout", type=float, default=120.0,
                             help="per-request deadline in seconds "
                                  "(default: 120)")
    bench_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                             help="shared on-disk cache directory for the "
                                  "worker pool (default: none)")
    bench_serve.add_argument("--transport", default="shm",
                             choices=("shm", "pickle", "both"),
                             help="audio data plane: shared-memory "
                                  "descriptors, pickled arrays, or both "
                                  "back to back with a speedup comparison "
                                  "(default: shm)")
    bench_serve.add_argument("--clip-seconds", type=float, default=None,
                             metavar="SECONDS",
                             help="zero-pad every clip to a fixed duration "
                                  "so the per-request payload is known "
                                  "(default: natural clip lengths; "
                                  "--transport both defaults to 5)")
    bench_serve.add_argument("--output", default="BENCH_serve.json",
                             metavar="PATH",
                             help="where to write the machine-readable "
                                  "report (default: BENCH_serve.json)")
    bench_serve.add_argument("--json", action="store_true",
                             help="print the JSON report instead of the "
                                  "human-readable summary")

    def add_experiment_options(sub: argparse.ArgumentParser) -> None:
        from repro.specs import SCALE_NAMES

        sub.add_argument("--scale", default=None, choices=SCALE_NAMES,
                         help="dataset scale preset (default: tiny; "
                              "REPRO_SCALE overlays)")
        sub.add_argument("--seed", type=int, default=None,
                         help="dataset seed (default: the library default)")
        sub.add_argument("--workers", type=int, default=None,
                         help="shard worker processes (default: 0 = run "
                              "shards inline in this process)")
        sub.add_argument("--run-dir", default=None, metavar="DIR",
                         help="run directory for spec/journal/report "
                              "(default: an auto-named directory under "
                              ".repro_runs, stable per spec — rerunning "
                              "resumes it)")
        sub.add_argument("--param", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="experiment parameter override (repeatable); "
                              "values parse as JSON when possible, e.g. "
                              "--param n_splits=3")
        sub.add_argument("--classifier", default=None, metavar="NAME",
                         help="classifier registry name (default: SVM)")
        sub.add_argument("--scorer", default=None, metavar="METHOD",
                         help="similarity method for detector-building "
                              "experiments (default: PE_JaroWinkler)")
        sub.add_argument("--max-shards", type=int, default=None,
                         metavar="N",
                         help="execute at most N fresh shards then stop "
                              "(exit 3 while incomplete; rerun to resume)")
        sub.add_argument("--json", action="store_true",
                         help="print the final report as JSON instead of "
                              "markdown")

    run = commands.add_parser(
        "run", help="run one experiment sharded + resumable "
                    "(no name: list experiments)")
    run.add_argument("experiment", nargs="?", default=None,
                     help="experiment registry name (omit to list them)")
    add_experiment_options(run)

    sweep = commands.add_parser(
        "sweep", help="expand a grid of spec overlays and run every point "
                      "into one merged report")
    sweep.add_argument("grid", help="sweep JSON file: an experiment spec "
                                    "plus a \"grid\" of dotted-path value "
                                    "lists (see docs/EXPERIMENTS.md)")
    add_experiment_options(sweep)

    backends = commands.add_parser(
        "backends", help="list optional ASR backends: name, availability, "
                         "model fingerprint, install hint")
    backends.add_argument("--json", action="store_true",
                          help="print the listing as JSON")

    config = commands.add_parser(
        "config", help="show the effective detector spec / validate config files")
    config_actions = config.add_subparsers(dest="config_command",
                                           metavar="action")
    show = config_actions.add_parser(
        "show", help="print the effective DetectorSpec as JSON (config file "
                     "+ env + flags; ready to save as a config)")
    add_detector_options(show)
    validate = config_actions.add_parser(
        "validate", help="validate JSON config files against the spec schema "
                         "and the component registries")
    validate.add_argument("path", nargs="+",
                          help="JSON config files to check: DetectorSpec, "
                               "serve manifest, experiment spec, or sweep "
                               "spec (dispatched on top-level keys)")
    return parser


def _save_score_cache(detector) -> None:
    """Persist an on-disk pair-score cache (``--score-cache PATH``).

    Mirrors the transcription cache's explicit-save contract; the CLI
    saves on behalf of the user so a second invocation with the same
    path starts warm.
    """
    cache = detector.scoring.cache
    if cache is not None and cache.path is not None:
        cache.save()


def _split_names(value: str | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    names = tuple(part.strip() for part in value.split(",") if part.strip())
    if not names:
        raise CliError("expected a comma-separated list of names")
    return names


def _reshape_suite(suite, target: str | None, aux_names, defense: str,
                   transforms: str | None):
    """Merge suite-shaping flags onto a config file's suite.

    Works on spec values directly (no string round trip): each piece a
    flag names is replaced, everything else is inherited — the config's
    target, its plain auxiliary names, its transformed-target specs,
    and (outside multi-asr mode) its transformed views of non-target
    members, which have no flag syntax at all.
    """
    from repro.defenses.transforms import default_transform_suite
    from repro.specs import ASRSpec, SuiteSpec, TransformSpec

    target_spec = ASRSpec(target) if target is not None else suite.target
    if aux_names is not None:
        plains = tuple(ASRSpec(name) for name in aux_names)
    else:
        plains = tuple(m for m in suite.auxiliaries if m.transform is None)
    if transforms:
        views = tuple(ASRSpec(target_spec.name, TransformSpec(part.strip()))
                      for part in transforms.split(",") if part.strip())
    else:
        views = tuple(ASRSpec(target_spec.name, m.transform)
                      for m in suite.auxiliaries
                      if m.transform is not None
                      and m.name == suite.target.name)
    extras = tuple(m for m in suite.auxiliaries
                   if m.transform is not None and m.name != suite.target.name)

    members: tuple = ()
    if defense in ("multi-asr", "combined"):
        if not plains:
            from repro.asr.registry import default_suite_names
            plains = tuple(ASRSpec(name) for name in default_suite_names()[1:])
        members += plains
    if defense in ("transform", "combined"):
        if not views:
            views = tuple(ASRSpec(target_spec.name, TransformSpec(t.spec))
                          for t in default_transform_suite())
        members += views
    if defense != "multi-asr":
        members += extras
    return SuiteSpec(target=target_spec, auxiliaries=members)


def _implied_defense(suite) -> str:
    """The defense mode a suite's shape expresses (for flag overlays)."""
    transformed = any(m.transform is not None for m in suite.auxiliaries)
    plain = any(m.transform is None for m in suite.auxiliaries)
    if transformed and plain:
        return "combined"
    if transformed:
        return "transform"
    return "multi-asr"


#: Leaf overlays: (flag attribute, dotted DetectorSpec path).
_LEAF_FLAGS = (("scale", "training.scale"),
               ("classifier", "classifier.name"),
               ("workers", "pipeline.workers"),
               ("scorer", "scoring.scorer"),
               ("scoring_backend", "scoring.backend"),
               ("score_cache", "scoring.cache"),
               ("feature_backend", "pipeline.features.backend"),
               ("feature_cache", "pipeline.features.cache"))


def _detector_spec(args: argparse.Namespace):
    """The effective :class:`DetectorSpec` for one invocation.

    Precedence: explicit flags > ``REPRO_*`` environment > config file >
    built-in defaults.  Suite-shaping flags (``--target``/
    ``--auxiliaries``/``--defense``/``--transforms``) rebuild the suite
    section as a unit, with unspecified pieces inherited from the config
    file where expressible (its target, its plain auxiliary names, its
    transformed-target specs).
    """
    from repro.specs import DetectorSpec, InvalidSpecError

    defense = getattr(args, "defense", None)
    transforms = getattr(args, "transforms", None)
    auxiliaries = getattr(args, "auxiliaries", None)
    suite_flags = (getattr(args, "target", None), auxiliaries,
                   defense, transforms)
    config_path = getattr(args, "config", None)
    if transforms and not config_path \
            and (defense or "multi-asr") == "multi-asr":
        raise CliError("--transforms requires --defense transform "
                       "or --defense combined")
    if auxiliaries and defense == "transform":
        # Refuse rather than silently drop the requested auxiliaries:
        # transform mode has no plain members by definition.
        raise CliError("--auxiliaries conflicts with --defense transform "
                       "(its auxiliaries are transformed views of the "
                       "target); use --defense combined for both kinds")
    try:
        if config_path:
            spec = DetectorSpec.load(config_path)
            # Without --defense, the mode is implied by the config's
            # suite shape, so e.g. --transforms alone re-parameterises a
            # transform-ensemble config instead of erroring; adding
            # --auxiliaries to a pure transform config implies combined.
            effective_defense = defense or _implied_defense(spec.suite)
            if (auxiliaries and not defense
                    and effective_defense == "transform"):
                effective_defense = "combined"
            if transforms and effective_defense == "multi-asr":
                raise CliError("--transforms requires --defense transform "
                               "or --defense combined (the config's suite "
                               "has no transformed members)")
            if any(value is not None for value in suite_flags):
                spec = spec.with_value("suite", _reshape_suite(
                    spec.suite, target=getattr(args, "target", None),
                    aux_names=_split_names(auxiliaries),
                    defense=effective_defense, transforms=transforms))
                # An explicit 'scored' source may no longer cover the
                # reshaped suite; 'bundle' (and 'auto') are valid for
                # every suite and are kept as the config wrote them.
                if spec.training.source == "scored":
                    spec = spec.with_value("training.source", "auto")
        else:
            # The built-in "tiny" scale is a default, not an explicit
            # flag, so the REPRO_* environment overlays it (and explicit
            # flags below overlay the environment).
            spec = DetectorSpec.default(
                target=getattr(args, "target", None),
                auxiliaries=_split_names(auxiliaries),
                defense=defense or "multi-asr", transforms=transforms,
                scale="tiny").with_env_overlay()
        for flag, dotted in _LEAF_FLAGS:
            value = getattr(args, flag, None)
            if value is not None:
                spec = spec.with_value(dotted, value)
        return spec
    except (InvalidSpecError, OSError) as exc:
        raise CliError(str(exc)) from exc
    except (KeyError, ValueError) as exc:
        # Unknown registry name (e.g. a mistyped transform spec).
        raise CliError(str(exc)) from exc


def _build_detector(args: argparse.Namespace, spec=None):
    from repro.build import build
    from repro.specs import InvalidSpecError

    if spec is None:
        spec = _detector_spec(args)
    try:
        return build(spec)
    except (InvalidSpecError, KeyError, ValueError) as exc:
        # A bad field, registry name or unreadable cache/config file is
        # user input, not a defect (json.JSONDecodeError is a ValueError).
        raise CliError(str(exc)) from exc


# ------------------------------------------------------------------- screen
def cmd_screen(args: argparse.Namespace) -> int:
    from repro.pipeline.detection import DetectionPipeline

    clips = _read_clips(args.wav)
    detector = _build_detector(args)
    pipeline = DetectionPipeline(detector)
    batch = pipeline.detect_batch(clips)
    _save_score_cache(detector)
    if args.json:
        print(json.dumps({
            "results": [
                {"file": path,
                 "is_adversarial": result.is_adversarial,
                 "target_transcription": result.target_transcription,
                 "scores": [float(s) for s in result.scores]}
                for path, result in zip(args.wav, batch.results)
            ],
            "stage_seconds": batch.stage_seconds,
            "cache_hits": batch.cache_hits,
            "cache_misses": batch.cache_misses,
        }, indent=2))
    else:
        for path, result in zip(args.wav, batch.results):
            verdict = "ADVERSARIAL" if result.is_adversarial else "benign"
            print(f"{verdict:<12} {path}  heard: "
                  f"{result.target_transcription!r}  min score "
                  f"{result.scores.min():.2f}")
        print(f"screened {len(batch)} clips in "
              f"{batch.stage_seconds['total']:.3f} s")
    return 1 if batch.n_adversarial else 0


# ------------------------------------------------------------------- stream
def cmd_stream(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.serving.streaming import StreamingDetector

    spec = _detector_spec(args)
    serving = spec.serving
    for flag, field in (("window", "window_seconds"), ("hop", "hop_seconds"),
                        ("trigger", "trigger_windows"),
                        ("release", "release_windows")):
        value = getattr(args, flag)
        if value is not None:
            serving = replace(serving, **{field: value})
    try:
        config = serving.stream_config()
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    clip, = _read_clips([args.wav])
    detector = _build_detector(args, spec=spec)
    streaming = StreamingDetector(detector, config=config)
    result = streaming.detect_stream(clip)
    _save_score_cache(detector)
    if args.json:
        print(json.dumps({
            "file": args.wav,
            "is_adversarial": result.is_adversarial,
            "windows": [
                {"index": w.index, "start": w.start_seconds,
                 "end": w.end_seconds, "is_adversarial": w.is_adversarial,
                 "state": w.state,
                 "target_transcription": w.target_transcription}
                for w in result.windows
            ],
            "spans": [
                {"start": span.start_seconds, "end": span.end_seconds,
                 "n_windows": span.n_windows}
                for span in result.spans
            ],
            "stage_seconds": result.stage_seconds,
        }, indent=2))
    else:
        for w in result.windows:
            mark = "!" if w.is_adversarial else " "
            print(f"[{w.start_seconds:7.2f}s – {w.end_seconds:7.2f}s] {mark} "
                  f"{w.state:<11} heard: {w.target_transcription!r}")
        if result.spans:
            for span in result.spans:
                print(f"FLAGGED {span.start_seconds:.2f}s – "
                      f"{span.end_seconds:.2f}s ({span.n_windows} windows)")
        else:
            print("stream clean: no adversarial spans")
        print(f"{len(result)} windows in "
              f"{result.stage_seconds['total']:.3f} s")
    return 1 if result.is_adversarial else 0


# -------------------------------------------------------------------- bench
def _bench_workload(n_clips: int, seed: int):
    from repro.asr.registry import get_shared_lexicon
    from repro.audio.synthesis import SpeechSynthesizer
    from repro.text.corpus import librispeech_like_corpus

    rng = np.random.default_rng(seed)
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=seed)
    sentences = librispeech_like_corpus().sample(n_clips, rng)
    return [synthesizer.synthesize(sentence) for sentence in sentences]


def cmd_bench_all(args: argparse.Namespace) -> int:
    """``repro bench all``: the unified perf trajectory.

    Runs the three component benchmarks back to back at one fixed tiny
    scale and writes ``BENCH_similarity.json`` / ``BENCH_pipeline.json``
    / ``BENCH_serve.json`` under ``--output-dir``, so successive commits
    leave a comparable performance trail.  Every benchmark's parity gate
    still applies: a report is always written, but any divergence fails
    the command after all three ran.
    """
    from repro.pipeline.bench import run_pipeline_benchmark
    from repro.serving.bench import compare_transports
    from repro.similarity.bench import run_similarity_benchmark

    os.makedirs(args.output_dir, exist_ok=True)
    failures: list[str] = []

    sim_path = os.path.join(args.output_dir, "BENCH_similarity.json")
    sim = run_similarity_benchmark(n_pairs=120, overlap=4, repeats=2, seed=0)
    with open(sim_path, "w", encoding="utf-8") as handle:
        json.dump(sim, handle, indent=2)
    if sim["parity_max_abs_diff"] != 0.0:
        failures.append(f"similarity backend parity violation "
                        f"(report in {sim_path})")
    print(f"bench-similarity: batch {sim['batch']['speedup']:.2f}x, "
          f"stream {sim['stream']['speedup']:.2f}x vs reference "
          f"-> {sim_path}")

    pipe_path = os.path.join(args.output_dir, "BENCH_pipeline.json")
    pipe = run_pipeline_benchmark(n_clips=4, repeats=2, seed=0)
    with open(pipe_path, "w", encoding="utf-8") as handle:
        json.dump(pipe, handle, indent=2)
    if pipe["parity_mismatches"] != 0:
        failures.append(f"pipeline parity violation "
                        f"(report in {pipe_path})")
    print(f"bench-pipeline: cold {pipe['cold']['speedup']:.2f}x, "
          f"warm {pipe['warm']['speedup']:.2f}x vs reference "
          f"-> {pipe_path}")

    serve_path = os.path.join(args.output_dir, "BENCH_serve.json")
    serve = compare_transports(n_streams=24, n_clips=6, workers=2, seed=0,
                               clip_seconds=5.0)
    with open(serve_path, "w", encoding="utf-8") as handle:
        json.dump(serve, handle, indent=2)
    for transport, section in serve["transports"].items():
        if section["parity_mismatches"] != 0:
            failures.append(f"serving parity violation under the "
                            f"{transport} transport "
                            f"(report in {serve_path})")
    speedup = serve.get("speedup_shm_vs_pickle")
    speedup_text = f"{speedup:.2f}x" if speedup is not None else "n/a"
    print(f"bench-serve: {serve['n_streams']} streams, "
          f"shm {speedup_text} pickle throughput -> {serve_path}")

    if failures:
        raise CliError("; ".join(failures))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.pipeline.cache import TranscriptionCache
    from repro.pipeline.detection import DetectionPipeline
    from repro.serving.batcher import MicroBatcher
    from repro.serving.metrics import ServingMetrics

    if args.what == "all":
        return cmd_bench_all(args)
    detector = _build_detector(args)
    clips = _bench_workload(args.clips, args.seed)
    report: dict = {"clips": len(clips)}

    # Sequential single-clip detection, cold private cache: the baseline.
    detector.engine.cache = TranscriptionCache()
    start = time.perf_counter()
    for clip in clips:
        detector.detect(clip)
    report["sequential_seconds"] = time.perf_counter() - start

    # Batched pipeline, cold private cache.
    detector.engine.cache = TranscriptionCache()
    metrics = ServingMetrics()
    pipeline = DetectionPipeline(detector, observer=metrics.observe_batch)
    start = time.perf_counter()
    pipeline.detect_batch(clips)
    report["batched_seconds"] = time.perf_counter() - start

    # Micro-batched concurrent submission, cold private cache.
    detector.engine.cache = TranscriptionCache()
    start = time.perf_counter()
    with MicroBatcher(pipeline, max_batch_size=args.batch_size,
                      max_latency_seconds=args.max_latency,
                      metrics=metrics) as batcher:
        futures = batcher.submit_many(clips)
        for future in futures:
            future.result()
    report["microbatch_seconds"] = time.perf_counter() - start
    report["microbatch"] = {
        "batches": batcher.stats.batches,
        "mean_batch_size": batcher.stats.mean_batch_size,
        "size_dispatches": batcher.stats.size_dispatches,
        "latency_dispatches": batcher.stats.latency_dispatches,
        "drain_dispatches": batcher.stats.drain_dispatches,
    }

    # Warm-cache replay through the batched pipeline.
    start = time.perf_counter()
    pipeline.detect_batch(clips)
    report["warm_replay_seconds"] = time.perf_counter() - start
    report["metrics"] = metrics.snapshot()
    _save_score_cache(detector)

    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    n = len(clips)
    print(f"workload: {n} synthesised clips, scale={args.scale}, "
          f"workers={detector.engine.workers}")
    for label, key in (("sequential detect()", "sequential_seconds"),
                       ("batched pipeline", "batched_seconds"),
                       ("micro-batched", "microbatch_seconds"),
                       ("warm-cache replay", "warm_replay_seconds")):
        seconds = report[key]
        rate = n / seconds if seconds > 0 else float("inf")
        speedup = report["sequential_seconds"] / seconds if seconds > 0 else 0.0
        print(f"{label:<20} {seconds:8.3f} s  {rate:7.1f} clips/s  "
              f"{speedup:5.2f}x vs sequential")
    micro = report["microbatch"]
    print(f"micro-batches: {micro['batches']} "
          f"(mean size {micro['mean_batch_size']:.2f}; "
          f"{micro['size_dispatches']} size-, "
          f"{micro['latency_dispatches']} latency-, "
          f"{micro['drain_dispatches']} drain-triggered)")
    print("\nserving metrics (batched + micro-batched + replay):")
    print(metrics.format_table())
    return 0


# --------------------------------------------------------- bench-similarity
def cmd_bench_similarity(args: argparse.Namespace) -> int:
    from repro.similarity.bench import run_similarity_benchmark
    from repro.similarity.scorer import DEFAULT_METHOD

    if args.pairs < 1:
        raise CliError("--pairs must be >= 1")
    if args.overlap < 1:
        raise CliError("--overlap must be >= 1")
    try:
        report = run_similarity_benchmark(
            n_pairs=args.pairs, overlap=args.overlap, repeats=args.repeats,
            seed=args.seed, method=args.scorer or DEFAULT_METHOD)
    except KeyError as exc:
        raise CliError(str(exc)) from exc
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    if report["parity_max_abs_diff"] != 0.0:
        # The fast backend's contract is bit-identical scores; a nonzero
        # difference is a defect, not a benchmark result.
        raise CliError(
            f"backend parity violation: max |reference - fast| = "
            f"{report['parity_max_abs_diff']} (report in {args.output})")
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(f"workload: {report['n_pairs']} distinct pairs, "
          f"overlap x{report['overlap']}, method {report['method']}, "
          f"best of {report['repeats']}")
    for label, shape in (("batch (cold, distinct pairs)", report["batch"]),
                         ("stream (warm pair-score cache)", report["stream"])):
        print(f"{label:<31} reference {shape['reference_seconds']:8.4f} s  "
              f"fast {shape['fast_seconds']:8.4f} s  "
              f"{shape['speedup']:6.2f}x  "
              f"({shape['fast_pairs_per_second']:,.0f} pairs/s)")
    print(f"parity: max |reference - fast| = 0.0 "
          f"(report written to {args.output})")
    return 0


# -------------------------------------------------------------------- serve
def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving.bench import benchmark_clips
    from repro.serving.service import DetectionService, load_manifest

    if args.requests < 1:
        raise CliError("--requests must be >= 1")
    if args.clips < 1:
        raise CliError("--clips must be >= 1")
    try:
        manifest = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        raise CliError(f"cannot read manifest: {exc}") from exc
    serving = dict(manifest.get("serving") or {})
    if args.workers is not None:
        serving["workers"] = args.workers
    if args.timeout is not None:
        serving["request_timeout_seconds"] = args.timeout
    manifest["serving"] = serving
    try:
        service = DetectionService.from_manifest(manifest)
    except Exception as exc:
        raise CliError(f"cannot build service: {exc}") from exc
    tenants = sorted(service.pipelines)
    if args.tenant is not None:
        if args.tenant not in service.pipelines:
            raise CliError(f"unknown tenant {args.tenant!r} "
                           f"(manifest has: {', '.join(tenants)})")
        tenants = [args.tenant]
    clips = benchmark_clips(args.clips, args.seed)

    async def drive():
        return await asyncio.gather(*[
            service.asubmit(tenants[i % len(tenants)],
                            clips[i % len(clips)], request_id=f"r{i}")
            for i in range(args.requests)])

    with service:
        start = time.perf_counter()
        results = asyncio.run(drive())
        wall = time.perf_counter() - start
    stats = service.stats
    flagged = sum(1 for r in results if r.ok and r.is_adversarial)
    if args.json:
        for r in results:
            print(json.dumps({
                "request_id": r.request_id, "tenant": r.tenant,
                "status": r.status, "code": r.code,
                "is_adversarial": r.is_adversarial,
                "total_ms": round(1000 * r.total_seconds, 3)}))
        print(json.dumps({
            "requests": len(results), "wall_seconds": wall,
            "completed": stats.completed, "rejected": stats.rejected,
            "timeouts": stats.timeouts, "errors": stats.errors,
            "respawns": stats.respawns, "flagged": flagged}))
    else:
        for r in results:
            verdict = ("ADVERSARIAL" if r.is_adversarial else "benign") \
                if r.ok else f"{r.status.upper()} ({r.code}) {r.detail}"
            print(f"{r.request_id:>6}  {r.tenant:<12} {verdict:<32} "
                  f"{1000 * r.total_seconds:8.1f} ms")
        print(f"{len(results)} requests over {len(tenants)} tenant"
              f"{'s' if len(tenants) != 1 else ''} in {wall:.2f} s "
              f"({len(results) / wall:,.1f} req/s): "
              f"{stats.completed} ok, {stats.rejected} shed, "
              f"{stats.timeouts} timed out, {stats.errors} errors"
              + (f", {stats.respawns} respawns" if stats.respawns else ""))
    return 1 if flagged else 0


# -------------------------------------------------------------- bench-serve
def cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serving.bench import compare_transports, run_serve_benchmark

    if args.streams < 1:
        raise CliError("--streams must be >= 1")
    if args.clips < 1:
        raise CliError("--clips must be >= 1")
    if args.workers < 1:
        raise CliError("--workers must be >= 1")
    if args.clip_seconds is not None and args.clip_seconds <= 0:
        raise CliError("--clip-seconds must be > 0")
    if args.transport == "both":
        report = compare_transports(
            n_streams=args.streams, n_clips=args.clips, workers=args.workers,
            seed=args.seed, timeout_seconds=args.timeout,
            cache_dir=args.cache_dir,
            clip_seconds=(args.clip_seconds
                          if args.clip_seconds is not None else 5.0))
        total_mismatches = sum(
            section["parity_mismatches"]
            for section in report["transports"].values())
    else:
        report = run_serve_benchmark(
            n_streams=args.streams, n_clips=args.clips, workers=args.workers,
            seed=args.seed, timeout_seconds=args.timeout,
            cache_dir=args.cache_dir, transport=args.transport,
            clip_seconds=args.clip_seconds)
        total_mismatches = report["parity_mismatches"]
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    if total_mismatches != 0:
        # The service's contract is the sequential path's verdicts,
        # bit for bit; a divergence is a defect, not a benchmark result
        # — and no speedup may be reported on top of one.
        raise CliError(
            f"serving parity violation: {total_mismatches} of "
            f"{report['n_streams']} streams diverged from the sequential "
            f"path ({report['failed_requests']} resolved to non-ok "
            f"results; report in {args.output})")
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    service = report["service"]
    sequential = report["sequential"]
    print(f"workload: {report['n_streams']} concurrent streams over "
          f"{report['n_clips']} distinct clips, {report['workers']} workers, "
          f"transport {report['active_transport']}")
    print(f"service    {service['wall_seconds']:8.3f} s  "
          f"{service['throughput_rps']:8.1f} req/s  "
          f"p50 {service['p50_ms']:7.1f} ms  p99 {service['p99_ms']:7.1f} ms")
    print(f"sequential {sequential['wall_seconds']:8.3f} s  "
          f"{sequential['throughput_rps']:8.1f} req/s  "
          f"per-request {sequential['per_request_ms']:7.1f} ms")
    ipc = report["ipc"]
    print(f"ipc: {ipc['bytes_out']:,} B out "
          f"({ipc['bytes_out_per_request']:,.0f} B/request), "
          f"{ipc['bytes_in']:,} B in")
    if args.transport == "both":
        pickle_ipc = report["transports"]["pickle"]["ipc"]
        speedup = report["speedup_shm_vs_pickle"]
        print(f"transports: shm {ipc['bytes_out']:,} B out vs pickle "
              f"{pickle_ipc['bytes_out']:,} B out; "
              f"shm throughput {speedup:.2f}x pickle")
    stats = report["stats"]
    print(f"parity: 0 of {report['n_streams']} verdicts diverged; "
          f"{stats['retries']} retries, {stats['respawns']} respawns "
          f"(report written to {args.output})")
    return 0


# ----------------------------------------------------------- bench-pipeline
def cmd_bench_pipeline(args: argparse.Namespace) -> int:
    from repro.pipeline.bench import run_pipeline_benchmark

    if args.clips < 1:
        raise CliError("--clips must be >= 1")
    report = run_pipeline_benchmark(n_clips=args.clips, repeats=args.repeats,
                                    seed=args.seed)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    if report["parity_mismatches"] != 0:
        # The fast pipeline's contract is identical transcriptions; a
        # mismatch is a defect, not a benchmark result.
        raise CliError(
            f"pipeline parity violation: {report['parity_mismatches']} "
            f"transcriptions differ between the reference and fast paths "
            f"(report in {args.output})")
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(f"workload: {report['n_clips']} synthesised clips, suite "
          f"{'+'.join(report['suite'])}, warm best of {report['repeats']}")
    for label, shape in (("cold (empty feature cache)", report["cold"]),
                         ("warm (feature cache hit)", report["warm"])):
        print(f"{label:<27} reference {shape['reference_seconds']:8.3f} s  "
              f"fast {shape['fast_seconds']:8.3f} s  "
              f"{shape['speedup']:6.2f}x  "
              f"({shape['fast_clips_per_second']:,.1f} clips/s)")
    cache = report["feature_cache"]
    print(f"feature cache: {cache['hits']} hits / {cache['misses']} misses "
          f"({cache['hit_rate']:.0%}); parity: 0 mismatches "
          f"(report written to {args.output})")
    return 0


# ---------------------------------------------------------------- run/sweep
#: Exit status of ``repro run``/``repro sweep`` when the run stopped
#: before completing (``--max-shards`` budget exhausted): distinct from
#: success (0) and bad input (2), so CI can kill-and-resume deterministically.
EXIT_INCOMPLETE = 3


def _parse_param_overrides(pairs: list[str]) -> dict:
    """``--param key=value`` overrides; values parse as JSON when possible."""
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise CliError(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw  # bare strings need no quoting
    return params


def _apply_experiment_flags(spec, args):
    """Overlay explicit ``repro run``/``sweep`` flags onto a spec (flags win)."""
    overlays = [("scale", args.scale), ("seed", args.seed),
                ("workers", args.workers),
                ("detector.classifier.name", args.classifier),
                ("detector.scoring.scorer", args.scorer)]
    for dotted, value in overlays:
        if value is not None:
            spec = spec.with_value(dotted, value)
    for key, value in _parse_param_overrides(args.param).items():
        spec = spec.with_value(f"params.{key}", value)
    return spec


def _spec_digest(payload: dict) -> str:
    """Short stable digest of a spec payload (sans execution-only knobs)."""
    import hashlib

    payload = dict(payload)
    payload.pop("workers", None)  # worker count never changes the result
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:10]


def _default_run_dir(kind: str, name: str, payload: dict) -> str:
    from repro.config import runs_dir
    import os

    return os.path.join(runs_dir(), f"{kind}-{name}-{_spec_digest(payload)}")


def _print_run_result(result, args) -> int:
    if not result.complete:
        remaining = result.total_units - result.resumed_units \
            - result.executed_units
        print(f"incomplete: {result.executed_units} shard(s) executed, "
              f"{result.resumed_units} resumed, {remaining} remaining "
              f"(rerun to resume: {result.run_dir})")
        return EXIT_INCOMPLETE
    if args.json:
        print(json.dumps({"title": result.table.name,
                          "rows": result.table.rows,
                          "run_dir": result.run_dir,
                          "executed_units": result.executed_units,
                          "resumed_units": result.resumed_units}, indent=2))
        return 0
    print(result.table.to_markdown())
    print(f"({result.executed_units} shard(s) executed, "
          f"{result.resumed_units} resumed; run directory: {result.run_dir})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import (
        RunSpecMismatch,
        RunStore,
        build_experiment,
        execute_experiment,
        experiment_names,
    )
    from repro.specs import ExperimentSpec, InvalidSpecError

    if args.experiment is None:
        names = experiment_names()
        if args.json:
            print(json.dumps(names, indent=2))
        else:
            print("available experiments:")
            for name in names:
                print(f"  {name}")
        return 0
    spec = ExperimentSpec(experiment=args.experiment,
                          scale="tiny").with_env_overlay()
    spec = _apply_experiment_flags(spec, args)
    try:
        spec.validate()
    except InvalidSpecError as exc:
        raise CliError(str(exc)) from exc
    run_dir = args.run_dir or _default_run_dir("run", spec.experiment,
                                               spec.to_dict())
    try:
        result = execute_experiment(build_experiment(spec),
                                    store=RunStore(run_dir),
                                    max_shards=args.max_shards)
    except RunSpecMismatch as exc:
        raise CliError(str(exc)) from exc
    return _print_run_result(result, args)


def cmd_sweep(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.experiments import RunSpecMismatch
    from repro.experiments.sweep import run_sweep
    from repro.specs import InvalidSpecError, SweepSpec

    try:
        sweep = SweepSpec.from_json(args.grid).with_env_overlay()
        sweep = replace(sweep, base=_apply_experiment_flags(sweep.base, args))
        sweep.validate()
    except InvalidSpecError as exc:
        raise CliError(str(exc)) from exc
    except OSError as exc:
        raise CliError(f"cannot read {args.grid!r}: {exc}") from exc
    name = sweep.name or sweep.base.experiment
    run_dir = args.run_dir or _default_run_dir("sweep", name, sweep.to_dict())
    try:
        result = run_sweep(sweep, run_dir, workers=args.workers,
                           max_shards=args.max_shards)
    except RunSpecMismatch as exc:
        raise CliError(str(exc)) from exc
    if not result.complete:
        print(f"incomplete: {result.completed_points}/{result.total_points} "
              f"points done, {result.executed_units} shard(s) executed, "
              f"{result.resumed_units} resumed "
              f"(rerun to resume: {result.run_dir})")
        return EXIT_INCOMPLETE
    if args.json:
        print(json.dumps(result.report, indent=2))
        return 0
    import os
    with open(os.path.join(result.run_dir, "report.md"),
              encoding="utf-8") as handle:
        print(handle.read())
    print(f"({result.total_points} point(s), {result.executed_units} "
          f"shard(s) executed, {result.resumed_units} resumed; "
          f"run directory: {result.run_dir})")
    return 0


# ------------------------------------------------------------------- config
def _validate_config_file(path: str) -> list[str]:
    """Schema-check one config file by its top-level shape.

    A JSON object with a ``"tenants"`` key is a serve manifest (see
    ``repro serve``): every tenant spec — inline or referenced by a
    relative path — is validated, as is the serving overlay.  An object
    with an ``"experiment"`` key is an :class:`~repro.specs.ExperimentSpec`
    (plus a ``"grid"`` key: a :class:`~repro.specs.SweepSpec` for
    ``repro sweep``).  Anything else is a plain DetectorSpec.

    Returns non-failing warnings: suite members that name registered
    optional backends whose dependencies are missing here.  The config
    is valid (the names resolve) but *building* it in this environment
    would fail with the install hint, which the user should learn at
    validation time, not at run time.
    """
    import json

    from repro.backends.registry import suite_warnings
    from repro.serving.service import load_manifest
    from repro.specs import (
        DetectorSpec,
        ExperimentSpec,
        InvalidSpecError,
        ServingSpec,
        SweepSpec,
    )

    with open(path, encoding="utf-8") as handle:
        raw = json.load(handle)
    if isinstance(raw, dict) and "experiment" in raw:
        if "grid" in raw or "name" in raw:
            spec = SweepSpec.from_json(path)
            spec.validate()
            return suite_warnings(spec.base.detector.suite)
        spec = ExperimentSpec.from_json(path)
        spec.validate()
        return suite_warnings(spec.detector.suite)
    if not (isinstance(raw, dict) and "tenants" in raw):
        spec = DetectorSpec.from_json(path)
        spec.validate()
        return suite_warnings(spec.suite)
    manifest = load_manifest(path)
    if not manifest["tenants"]:
        raise ValueError("serve manifest declares no tenants")
    warnings: list[str] = []
    for tenant, entry in manifest["tenants"].items():
        if entry is None:
            continue  # tenant uses the default spec
        if isinstance(entry, str):
            spec = DetectorSpec.from_json(entry)
        else:
            spec = DetectorSpec.from_dict(entry)
        try:
            spec.validate()
        except InvalidSpecError as exc:
            raise InvalidSpecError(
                [f"tenant {tenant!r}: {problem}"
                 for problem in exc.problems]) from exc
        warnings.extend(f"tenant {tenant!r}: {warning}"
                        for warning in suite_warnings(spec.suite))
    overlay = manifest.get("serving") or {}
    serving = ServingSpec.from_dict({**ServingSpec().to_dict(), **overlay})
    problems = serving.problems("serving")
    if problems:
        raise InvalidSpecError(problems)
    return warnings


def cmd_backends(args: argparse.Namespace) -> int:
    import json

    from repro.backends import backend_names, backend_status

    statuses = [backend_status(name) for name in backend_names()]
    if args.json:
        print(json.dumps({"backends": statuses}, indent=2))
        return 0
    for status in statuses:
        state = ("available" if status["available"]
                 else "missing: " + ", ".join(status["missing"]))
        print(f"{status['name']:<16} {state:<28} "
              f"{status['fingerprint']:<14} {status['description']}")
        if not status["available"]:
            print(f"{'':<16} install with: {status['install_hint']}")
    print()
    print("generated family: sim-00, sim-01, ... (always available; "
          "see docs/BACKENDS.md)")
    return 0


def cmd_config(args: argparse.Namespace) -> int:
    from repro.specs import DetectorSpec, InvalidSpecError

    if args.config_command == "show":
        from repro.backends.registry import suite_warnings

        spec = _detector_spec(args)
        try:
            # The output is advertised as ready to save; a flag typo must
            # fail here, not after the user reuses the printed config.
            spec.validate()
        except InvalidSpecError as exc:
            raise CliError(str(exc)) from exc
        print(spec.to_json(), end="")
        # Warnings go to stderr: stdout stays a clean, saveable config.
        for warning in suite_warnings(spec.suite):
            print(f"{PROG}: warning: {warning}", file=sys.stderr)
        return 0
    if args.config_command == "validate":
        failures = 0
        for path in args.path:
            try:
                warnings = _validate_config_file(path)
            except (InvalidSpecError, OSError, ValueError) as exc:
                failures += 1
                print(f"FAIL {path}: {exc}")
            else:
                print(f"ok   {path}")
                for warning in warnings:
                    print(f"warn {path}: {warning}")
        if failures:
            raise CliError(f"{failures} invalid config file"
                           f"{'s' if failures != 1 else ''}")
        return 0
    print("usage: repro config {show,validate} (see repro config --help)")
    return 0


# --------------------------------------------------------------------- main
def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    handlers = {"screen": cmd_screen, "stream": cmd_stream, "bench": cmd_bench,
                "serve": cmd_serve,
                "bench-similarity": cmd_bench_similarity,
                "bench-pipeline": cmd_bench_pipeline,
                "bench-serve": cmd_bench_serve,
                "run": cmd_run, "sweep": cmd_sweep,
                "backends": cmd_backends, "config": cmd_config}
    try:
        return handlers[args.command](args)
    except CliError as exc:
        # Bad inputs are reported briefly; genuine defects still traceback.
        print(f"{PROG}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
