"""Sentence corpora standing in for LibriSpeech, CommonVoice and attack texts.

The paper draws benign audio from LibriSpeech dev-clean (read narration) and
CommonVoice (short crowd-sourced sentences), and embeds attacker-chosen
command phrases into AEs.  Offline we use original, hand-written sentence
pools with the same character: multi-word conversational/narrative sentences
for the benign corpora and short imperative voice commands for the attack
corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.text.normalize import normalize_text, tokenize

# Narration-style sentences (LibriSpeech-like): 4-10 words, declarative.
_LIBRISPEECH_LIKE: tuple[str, ...] = (
    "i wish you would not say that",
    "the old man walked slowly along the river",
    "she opened the window and looked at the garden",
    "we waited for the train in the cold morning",
    "the children played near the big stone bridge",
    "he read the letter twice before answering",
    "a small boat drifted past the quiet harbor",
    "the teacher asked the class a simple question",
    "they traveled for many days across the plains",
    "the light of the lamp fell on the table",
    "my brother keeps his tools in the old shed",
    "the storm passed over the hills before sunset",
    "she wrote her name at the top of the page",
    "the farmer carried the heavy basket to the market",
    "he stood at the door and listened carefully",
    "the sound of the bell echoed through the valley",
    "we found a narrow path behind the farm house",
    "the soldiers marched through the silent town",
    "her voice was soft but every word was clear",
    "the captain studied the map for a long time",
    "a gentle wind moved the leaves of the trees",
    "the doctor arrived late in the evening",
    "they sold fresh bread at the corner shop",
    "the river was wide and the current was strong",
    "he placed the book back on the wooden shelf",
    "the young woman smiled and shook her head",
    "snow covered the roof of the little cabin",
    "the judge listened to both sides of the story",
    "i remember the summer we spent by the lake",
    "the horses rested in the shade of the barn",
    "she counted the coins and put them away",
    "the train left the station exactly on time",
    "his answer surprised everyone in the room",
    "the garden was full of red and yellow flowers",
    "we talked about the journey for many hours",
    "the clock on the wall struck nine",
    "the fisherman pulled the net from the water",
    "a long shadow stretched across the field",
    "the letter arrived on a rainy afternoon",
    "they built the wall with stones from the hill",
    "the moon rose slowly over the dark forest",
    "she poured the tea and offered us some cake",
    "the men loaded the wagon before dawn",
    "i had never seen such a beautiful valley",
    "the baker opened his shop before sunrise",
    "the old clock in the hall stopped last winter",
    "he whispered something to the boy beside him",
    "the road turned sharply near the old mill",
    "the family gathered around the warm fire",
    "a single candle burned in the small window",
    "the sailor told us stories about distant ports",
    "her sister lives in a village by the sea",
    "the bridge was built more than a century ago",
    "the dog slept quietly under the kitchen table",
    "the professor explained the idea with great care",
    "rain fell steadily on the empty street",
    "the painter worked on the portrait all morning",
    "they followed the narrow trail up the mountain",
    "the merchant counted his goods twice",
    "a strange silence settled over the camp",
    "the nurse checked on the patient every hour",
    "the boy carried the water from the well",
    "the musicians practiced in the old church hall",
    "the wind blew the papers off the desk",
    "she folded the blanket and set it on the chair",
    "the hunters returned before the snow began",
    "the lawyer read the contract very slowly",
    "the miller ground the grain for the village",
    "the lamp flickered and then went out",
    "we watched the ships leave the harbor at dusk",
    "the carpenter measured the board a second time",
    "the child asked why the sky was blue",
    "the garden gate creaked in the night wind",
    "he kept the old photograph in his coat pocket",
    "the crowd waited patiently outside the hall",
    "the smell of fresh bread filled the kitchen",
    "the travelers rested at the edge of the forest",
    "she learned to play the piano as a child",
    "the guard walked along the wall every night",
)

# CommonVoice-like: shorter, conversational sentences.
_COMMONVOICE_LIKE: tuple[str, ...] = (
    "please call me later tonight",
    "the weather is nice today",
    "i am running a little late",
    "can you repeat that please",
    "thank you very much for your help",
    "see you tomorrow morning",
    "the coffee is still warm",
    "i left my keys at home",
    "this street is very quiet",
    "we should leave before dark",
    "my phone battery is almost dead",
    "that movie was really long",
    "the bus stops near the library",
    "dinner will be ready soon",
    "i forgot to send the email",
    "the meeting starts at ten",
    "her garden looks lovely in spring",
    "he plays football every weekend",
    "the store closes in one hour",
    "it rained all day yesterday",
    "i need a new pair of shoes",
    "the kids are already asleep",
    "this soup needs more salt",
    "the flight was delayed again",
    "she speaks three languages",
    "turn left at the next corner",
    "the museum is free on sundays",
    "i like walking in the park",
    "the printer is out of paper",
    "we ran out of milk this morning",
    "his handwriting is hard to read",
    "the tickets are on the kitchen table",
    "my favorite season is autumn",
    "the water in the lake is very cold",
    "they moved to a new apartment",
    "i will take the early train",
    "the cat is sleeping on the sofa",
    "our neighbors are very friendly",
    "the bread in this bakery is excellent",
    "i can meet you after lunch",
)

# Attacker command phrases (the payloads embedded in AEs).  These mirror the
# style of the commands used by the Carlini & Wagner and CommanderSong
# papers: short imperative phrases a voice assistant would act on.
_ATTACK_COMMANDS: tuple[str, ...] = (
    "open the front door",
    "unlock the back door",
    "turn off the security camera",
    "turn off the alarm system",
    "open the garage door",
    "send all my money now",
    "delete all my files",
    "visit the evil website now",
    "turn on airplane mode",
    "call the unknown number",
    "order ten new phones",
    "read my last message aloud",
    "turn the volume to maximum",
    "disable the smoke detector",
    "start the car engine",
    "transfer money to this account",
    "open a sight for sore eyes",
    "a sight for sore eyes",
    "browse to the malicious page",
    "turn off all the lights",
    "unlock the safe now",
    "cancel the doctor appointment",
    "share my location with everyone",
    "mute all incoming alerts",
)

# Two-word payloads for the black-box attack, which the paper notes can only
# embed up to two words.
_TWO_WORD_COMMANDS: tuple[str, ...] = (
    "open door",
    "unlock door",
    "send money",
    "delete files",
    "call now",
    "turn off",
    "start car",
    "go away",
    "stop alarm",
    "buy phones",
)


@dataclass
class SentenceCorpus:
    """A named pool of sentences with deterministic sampling."""

    name: str
    sentences: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.sentences = tuple(normalize_text(s) for s in self.sentences)
        if not self.sentences:
            raise ValueError(f"corpus {self.name!r} has no sentences")

    def __len__(self) -> int:
        return len(self.sentences)

    def __iter__(self):
        return iter(self.sentences)

    def vocabulary(self) -> list[str]:
        """Sorted set of every word appearing in the corpus."""
        words: set[str] = set()
        for sentence in self.sentences:
            words.update(tokenize(sentence))
        return sorted(words)

    def sample(self, n: int, rng: np.random.Generator) -> list[str]:
        """Draw ``n`` sentences (with replacement once the pool is exhausted)."""
        if n <= len(self.sentences):
            idx = rng.choice(len(self.sentences), size=n, replace=False)
        else:
            idx = rng.choice(len(self.sentences), size=n, replace=True)
        return [self.sentences[i] for i in idx]

    def sample_one(self, rng: np.random.Generator) -> str:
        """Draw a single sentence."""
        return self.sentences[int(rng.integers(len(self.sentences)))]


def librispeech_like_corpus() -> SentenceCorpus:
    """Narration-style benign corpus (stands in for LibriSpeech dev-clean)."""
    return SentenceCorpus("librispeech-like", _LIBRISPEECH_LIKE)


def commonvoice_like_corpus() -> SentenceCorpus:
    """Short conversational corpus (stands in for CommonVoice)."""
    return SentenceCorpus("commonvoice-like", _COMMONVOICE_LIKE)


def attack_command_corpus(two_word_only: bool = False) -> SentenceCorpus:
    """Attacker payload phrases.

    Args:
        two_word_only: restrict to two-word payloads, matching the capacity
            limit of the black-box attack reported by the paper.
    """
    if two_word_only:
        return SentenceCorpus("attack-commands-2w", _TWO_WORD_COMMANDS)
    return SentenceCorpus("attack-commands", _ATTACK_COMMANDS)


def combined_vocabulary() -> list[str]:
    """Vocabulary across all built-in corpora (used to build ASR lexicons)."""
    words: set[str] = set()
    for corpus in (librispeech_like_corpus(), commonvoice_like_corpus(),
                   attack_command_corpus(), attack_command_corpus(True)):
        words.update(corpus.vocabulary())
    return sorted(words)
