"""Text normalisation shared by corpora, lexicon and metrics."""

from __future__ import annotations

import re

_APOSTROPHE_RE = re.compile(r"[’']")
_NON_ALPHA_RE = re.compile(r"[^a-z\s]")
_WHITESPACE_RE = re.compile(r"\s+")

# Common contractions are expanded so that every token maps cleanly through
# the grapheme-to-phoneme rules.  Keys are the contractions as they appear
# after the apostrophe has been replaced with a space; they are matched as
# whole words only.
_CONTRACTIONS = {
    "wouldn t": "would not",
    "couldn t": "could not",
    "shouldn t": "should not",
    "don t": "do not",
    "doesn t": "does not",
    "didn t": "did not",
    "isn t": "is not",
    "wasn t": "was not",
    "aren t": "are not",
    "won t": "will not",
    "can t": "can not",
    "i m": "i am",
    "i ve": "i have",
    "i ll": "i will",
    "it s": "it is",
    "that s": "that is",
    "there s": "there is",
    "you re": "you are",
    "they re": "they are",
    "we re": "we are",
    "let s": "let us",
}

_CONTRACTION_RES = [
    (re.compile(rf"\b{re.escape(contraction)}\b"), expansion)
    for contraction, expansion in _CONTRACTIONS.items()
]


def normalize_text(text: str) -> str:
    """Lower-case, strip punctuation and expand common contractions.

    The ASR simulators, attacks and similarity scorers all operate on
    normalised text, mirroring the paper's use of lower-cased transcriptions.
    """
    lowered = text.lower()
    lowered = _APOSTROPHE_RE.sub(" ", lowered)
    lowered = _NON_ALPHA_RE.sub(" ", lowered)
    lowered = _WHITESPACE_RE.sub(" ", lowered).strip()
    for pattern, expansion in _CONTRACTION_RES:
        lowered = pattern.sub(expansion, lowered)
    return _WHITESPACE_RE.sub(" ", lowered).strip()


def tokenize(text: str) -> list[str]:
    """Normalise ``text`` and split it into word tokens."""
    normalized = normalize_text(text)
    if not normalized:
        return []
    return normalized.split(" ")
