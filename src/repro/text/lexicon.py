"""Pronunciation lexicon: rule-based grapheme-to-phoneme conversion.

Real ASR systems rely on large hand-curated pronunciation dictionaries
(e.g. CMUdict).  Offline we instead use a deterministic rule-based
grapheme-to-phoneme (G2P) converter with an exception dictionary for common
irregular words.  Consistency matters more than phonetic accuracy here: the
synthesiser *and* every ASR simulator share the same lexicon, so a word is
always recoverable from its pronunciation.
"""

from __future__ import annotations

from functools import lru_cache

from repro.text.normalize import normalize_text, tokenize
from repro.text.phonemes import Phoneme, validate_sequence

# Irregular / very common words whose rule-based pronunciation would be
# misleading.  Kept small on purpose; everything else goes through the rules.
_EXCEPTIONS: dict[str, tuple[Phoneme, ...]] = {
    "a": ("AH",),
    "an": ("AE", "N"),
    "the": ("DH", "AH"),
    "of": ("AH", "V"),
    "to": ("T", "UW"),
    "and": ("AE", "N", "D"),
    "you": ("Y", "UW"),
    "i": ("AY",),
    "was": ("W", "AH", "Z"),
    "is": ("IH", "Z"),
    "are": ("AA", "R"),
    "were": ("W", "ER"),
    "one": ("W", "AH", "N"),
    "two": ("T", "UW"),
    "do": ("D", "UW"),
    "does": ("D", "AH", "Z"),
    "have": ("HH", "AE", "V"),
    "has": ("HH", "AE", "Z"),
    "he": ("HH", "IY"),
    "she": ("SH", "IY"),
    "we": ("W", "IY"),
    "me": ("M", "IY"),
    "be": ("B", "IY"),
    "they": ("DH", "EY"),
    "their": ("DH", "EH", "R"),
    "there": ("DH", "EH", "R"),
    "what": ("W", "AH", "T"),
    "who": ("HH", "UW"),
    "would": ("W", "UH", "D"),
    "could": ("K", "UH", "D"),
    "should": ("SH", "UH", "D"),
    "said": ("S", "EH", "D"),
    "says": ("S", "EH", "Z"),
    "door": ("D", "AO", "R"),
    "front": ("F", "R", "AH", "N", "T"),
    "open": ("OW", "P", "AH", "N"),
    "browser": ("B", "R", "AW", "Z", "ER"),
    "ok": ("OW", "K", "EY"),
    "okay": ("OW", "K", "EY"),
    "eyes": ("AY", "Z"),
    "lights": ("L", "AY", "T", "S"),
    "light": ("L", "AY", "T"),
    "night": ("N", "AY", "T"),
    "right": ("R", "AY", "T"),
    "know": ("N", "OW"),
    "off": ("AO", "F"),
    "once": ("W", "AH", "N", "S"),
    "people": ("P", "IY", "P", "AH", "L"),
    "because": ("B", "IH", "K", "AH", "Z"),
    "evil": ("IY", "V", "AH", "L"),
    "money": ("M", "AH", "N", "IY"),
    "some": ("S", "AH", "M"),
    "come": ("K", "AH", "M"),
    "love": ("L", "AH", "V"),
    "move": ("M", "UW", "V"),
    "prove": ("P", "R", "UW", "V"),
    "great": ("G", "R", "EY", "T"),
    "again": ("AH", "G", "EH", "N"),
    "against": ("AH", "G", "EH", "N", "S", "T"),
    "water": ("W", "AO", "T", "ER"),
    "music": ("M", "Y", "UW", "Z", "IH", "K"),
    "garage": ("G", "ER", "AA", "ZH"),
    "house": ("HH", "AW", "S"),
    "hours": ("AW", "ER", "Z"),
    "hour": ("AW", "ER"),
    "heard": ("HH", "ER", "D"),
    "early": ("ER", "L", "IY"),
    "learn": ("L", "ER", "N"),
    "world": ("W", "ER", "L", "D"),
    "word": ("W", "ER", "D"),
    "work": ("W", "ER", "K"),
    "first": ("F", "ER", "S", "T"),
    "sight": ("S", "AY", "T"),
    "sore": ("S", "AO", "R"),
    "wish": ("W", "IH", "SH"),
    "weather": ("W", "EH", "DH", "ER"),
    "message": ("M", "EH", "S", "IH", "JH"),
    "volume": ("V", "AA", "L", "Y", "UW", "M"),
    "unlock": ("AH", "N", "L", "AA", "K"),
    "delete": ("D", "IH", "L", "IY", "T"),
    "alarm": ("AH", "L", "AA", "R", "M"),
    "camera": ("K", "AE", "M", "ER", "AH"),
    "purchase": ("P", "ER", "CH", "AH", "S"),
    "security": ("S", "IH", "K", "Y", "UH", "R", "IH", "T", "IY"),
    "thermostat": ("TH", "ER", "M", "AH", "S", "T", "AE", "T"),
    "vehicle": ("V", "IY", "IH", "K", "AH", "L"),
    "website": ("W", "EH", "B", "S", "AY", "T"),
    "malicious": ("M", "AH", "L", "IH", "SH", "AH", "S"),
}

# Multi-letter grapheme rules, applied greedily left-to-right (longest match
# first).  Each rule maps a letter cluster to zero or more phonemes.
_DIGRAPHS: list[tuple[str, tuple[Phoneme, ...]]] = [
    ("tion", ("SH", "AH", "N")),
    ("sion", ("ZH", "AH", "N")),
    ("ough", ("AO",)),
    ("augh", ("AO",)),
    ("eigh", ("EY",)),
    ("igh", ("AY",)),
    ("tch", ("CH",)),
    ("dge", ("JH",)),
    ("sch", ("S", "K")),
    ("ck", ("K",)),
    ("ch", ("CH",)),
    ("sh", ("SH",)),
    ("th", ("TH",)),
    ("ph", ("F",)),
    ("wh", ("W",)),
    ("ng", ("NG",)),
    ("qu", ("K", "W")),
    ("oo", ("UW",)),
    ("ee", ("IY",)),
    ("ea", ("IY",)),
    ("ai", ("EY",)),
    ("ay", ("EY",)),
    ("oa", ("OW",)),
    ("ow", ("OW",)),
    ("ou", ("AW",)),
    ("oi", ("OY",)),
    ("oy", ("OY",)),
    ("au", ("AO",)),
    ("aw", ("AO",)),
    ("ar", ("AA", "R")),
    ("er", ("ER",)),
    ("ir", ("ER",)),
    ("ur", ("ER",)),
    ("or", ("AO", "R")),
    ("kn", ("N",)),
    ("wr", ("R",)),
    ("mb", ("M",)),
    ("gh", ()),
]

# Single-letter fallbacks.
_SINGLE: dict[str, tuple[Phoneme, ...]] = {
    "a": ("AE",),
    "b": ("B",),
    "c": ("K",),
    "d": ("D",),
    "e": ("EH",),
    "f": ("F",),
    "g": ("G",),
    "h": ("HH",),
    "i": ("IH",),
    "j": ("JH",),
    "k": ("K",),
    "l": ("L",),
    "m": ("M",),
    "n": ("N",),
    "o": ("AA",),
    "p": ("P",),
    "q": ("K",),
    "r": ("R",),
    "s": ("S",),
    "t": ("T",),
    "u": ("AH",),
    "v": ("V",),
    "w": ("W",),
    "x": ("K", "S"),
    "y": ("IY",),
    "z": ("Z",),
}

_VOWEL_LETTERS = set("aeiou")


@lru_cache(maxsize=None)
def grapheme_to_phonemes(word: str) -> tuple[Phoneme, ...]:
    """Convert a single lower-case word to its phoneme sequence.

    The converter first checks the exception dictionary, then applies
    digraph rules greedily, then single-letter fallbacks.  A trailing silent
    ``e`` is dropped, "c" before front vowels becomes ``S`` and "g" before
    front vowels becomes ``JH``.
    """
    word = normalize_text(word)
    if not word:
        return ()
    if " " in word:
        raise ValueError(f"grapheme_to_phonemes expects a single word, got {word!r}")
    if word in _EXCEPTIONS:
        return _EXCEPTIONS[word]

    letters = word
    # Drop a silent final "e" (but not for 2-letter words like "he", handled
    # by exceptions anyway).
    if len(letters) > 3 and letters.endswith("e") and letters[-2] not in _VOWEL_LETTERS:
        letters = letters[:-1]

    phonemes: list[Phoneme] = []
    i = 0
    while i < len(letters):
        matched = False
        for cluster, mapped in _DIGRAPHS:
            if letters.startswith(cluster, i):
                phonemes.extend(mapped)
                i += len(cluster)
                matched = True
                break
        if matched:
            continue
        letter = letters[i]
        nxt = letters[i + 1] if i + 1 < len(letters) else ""
        if letter == "c" and nxt in {"e", "i", "y"}:
            phonemes.append("S")
        elif letter == "g" and nxt in {"e", "i", "y"}:
            phonemes.append("JH")
        elif letter == "y" and i > 0:
            phonemes.append("IY")
        else:
            phonemes.extend(_SINGLE.get(letter, ()))
        i += 1

    # Collapse immediate duplicates produced by double letters ("ll", "ss").
    collapsed: list[Phoneme] = []
    for phoneme in phonemes:
        if not collapsed or collapsed[-1] != phoneme:
            collapsed.append(phoneme)
        elif phoneme in {"S", "Z", "T", "D", "K", "P"}:
            # Keep genuinely doubled stops/fricatives occasionally produced
            # by compound words; a single copy is enough acoustically.
            continue
    validate_sequence(collapsed)
    return tuple(collapsed)


class Lexicon:
    """Pronunciation dictionary over a vocabulary.

    A lexicon is built from a corpus vocabulary and provides the two lookups
    the ASR word decoder needs: word → pronunciation and pronunciations
    indexed for decoding.
    """

    def __init__(self, words: list[str] | None = None):
        self._pronunciations: dict[str, tuple[Phoneme, ...]] = {}
        if words:
            self.add_words(words)

    def add_words(self, words: list[str]) -> None:
        """Add ``words`` (normalising each) to the lexicon."""
        for word in words:
            for token in tokenize(word):
                if token not in self._pronunciations:
                    self._pronunciations[token] = grapheme_to_phonemes(token)

    def add_sentences(self, sentences: list[str]) -> None:
        """Add every word of every sentence to the lexicon."""
        for sentence in sentences:
            self.add_words(tokenize(sentence))

    def __contains__(self, word: str) -> bool:
        return normalize_text(word) in self._pronunciations

    def __len__(self) -> int:
        return len(self._pronunciations)

    @property
    def words(self) -> list[str]:
        """Sorted vocabulary."""
        return sorted(self._pronunciations)

    def pronounce(self, word: str) -> tuple[Phoneme, ...]:
        """Pronunciation of ``word`` (added on demand if unknown)."""
        token = normalize_text(word)
        if token not in self._pronunciations:
            self._pronunciations[token] = grapheme_to_phonemes(token)
        return self._pronunciations[token]

    def pronounce_sentence(self, sentence: str) -> list[Phoneme]:
        """Pronounce a sentence, separating words with silence."""
        from repro.text.phonemes import SILENCE

        phonemes: list[Phoneme] = [SILENCE]
        for word in tokenize(sentence):
            phonemes.extend(self.pronounce(word))
            phonemes.append(SILENCE)
        return phonemes

    def items(self):
        """Iterate over ``(word, pronunciation)`` pairs."""
        return self._pronunciations.items()
