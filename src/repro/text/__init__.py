"""Text substrate: phonemes, pronunciation lexicon, corpora and metrics.

The ASR simulators and the speech synthesiser share a common phonetic
representation defined here.  The module also provides the sentence corpora
used to stand in for LibriSpeech / CommonVoice and the attack command
phrases, plus the word/character error-rate metrics used by the evaluation.
"""

from repro.text.phonemes import (
    PHONEMES,
    PHONEME_TO_INDEX,
    SILENCE,
    Phoneme,
    is_vowel,
    phoneme_profile,
)
from repro.text.normalize import normalize_text, tokenize
from repro.text.lexicon import Lexicon, grapheme_to_phonemes
from repro.text.language_model import BigramLanguageModel
from repro.text.corpus import (
    SentenceCorpus,
    librispeech_like_corpus,
    commonvoice_like_corpus,
    attack_command_corpus,
)
from repro.text.metrics import edit_distance, word_error_rate, character_error_rate

__all__ = [
    "PHONEMES",
    "PHONEME_TO_INDEX",
    "SILENCE",
    "Phoneme",
    "is_vowel",
    "phoneme_profile",
    "normalize_text",
    "tokenize",
    "Lexicon",
    "grapheme_to_phonemes",
    "BigramLanguageModel",
    "SentenceCorpus",
    "librispeech_like_corpus",
    "commonvoice_like_corpus",
    "attack_command_corpus",
    "edit_distance",
    "word_error_rate",
    "character_error_rate",
]
