"""Sequence error metrics: edit distance, WER and CER.

Used by the evaluation (the non-targeted AE experiment thresholds on word
error rate) and by the attacks' success criteria.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.normalize import normalize_text, tokenize


def edit_distance(reference: Sequence, hypothesis: Sequence) -> int:
    """Levenshtein distance between two token sequences."""
    ref_len, hyp_len = len(reference), len(hypothesis)
    if ref_len == 0:
        return hyp_len
    if hyp_len == 0:
        return ref_len
    previous = list(range(hyp_len + 1))
    for i in range(1, ref_len + 1):
        current = [i] + [0] * hyp_len
        ref_token = reference[i - 1]
        for j in range(1, hyp_len + 1):
            substitution = previous[j - 1] + (0 if ref_token == hypothesis[j - 1] else 1)
            current[j] = min(previous[j] + 1, current[j - 1] + 1, substitution)
        previous = current
    return previous[hyp_len]


def levenshtein_codes_batch(matrix: np.ndarray, lengths: np.ndarray,
                            hypothesis_codes: np.ndarray) -> np.ndarray:
    """Levenshtein distances from pre-encoded references to one hypothesis.

    ``matrix`` holds one reference per row as integer token codes (padded
    with any code that never appears in a hypothesis, e.g. ``-1``),
    ``lengths`` the true reference lengths.  Vectorizes the DP across the
    reference set: one row update per reference-token position, with the
    in-row insertion cascade resolved by a prefix-minimum
    (``cur[j] = min_k<=j (tmp[k] + j - k)``).  Pure integer arithmetic,
    so the result equals per-pair :func:`edit_distance` calls exactly —
    this is the kernel behind the decoder's fast lexicon search.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n_refs = lengths.shape[0]
    m = int(hypothesis_codes.shape[0])
    distances = np.empty(n_refs, dtype=np.int64)
    if n_refs == 0:
        return distances
    max_len = int(lengths.max())
    distances[lengths == 0] = m
    offsets = np.arange(m + 1)
    prev = np.tile(offsets, (n_refs, 1))
    tmp = np.empty_like(prev)
    for i in range(1, max_len + 1):
        substitution = prev[:, :-1] + (matrix[:, i - 1, None]
                                       != hypothesis_codes[None, :])
        tmp[:, 0] = i
        tmp[:, 1:] = np.minimum(prev[:, 1:] + 1, substitution)
        cur = offsets + np.minimum.accumulate(tmp - offsets, axis=1)
        finished = lengths == i
        if finished.any():
            distances[finished] = cur[finished, m]
        prev = cur
    return distances


def batched_edit_distances(references: list[Sequence],
                           hypothesis: Sequence) -> np.ndarray:
    """Levenshtein distance from every reference to one hypothesis.

    Encodes the token sequences and runs :func:`levenshtein_codes_batch`;
    callers that score many hypotheses against a fixed reference set
    (the word decoder) pre-encode the references once instead.
    """
    n_refs = len(references)
    if n_refs == 0:
        return np.empty(0, dtype=np.int64)
    codes: dict = {}

    def code(token) -> int:
        if token not in codes:
            codes[token] = len(codes)
        return codes[token]

    hyp = np.array([code(token) for token in hypothesis], dtype=np.int32) \
        if len(hypothesis) else np.zeros(0, dtype=np.int32)
    lengths = np.array([len(ref) for ref in references], dtype=np.int64)
    max_len = int(lengths.max())
    matrix = np.full((n_refs, max(1, max_len)), -1, dtype=np.int32)
    for i, ref in enumerate(references):
        for j, token in enumerate(ref):
            matrix[i, j] = code(token)
    return levenshtein_codes_batch(matrix, lengths, hyp)


def word_error_rate(reference: str, hypothesis: str) -> float:
    """Word error rate of ``hypothesis`` against ``reference``.

    Defined as edit distance over words divided by the reference length.
    An empty reference with a non-empty hypothesis counts as WER 1.0.
    """
    ref_tokens = tokenize(reference)
    hyp_tokens = tokenize(hypothesis)
    if not ref_tokens:
        return 0.0 if not hyp_tokens else 1.0
    return edit_distance(ref_tokens, hyp_tokens) / len(ref_tokens)


def character_error_rate(reference: str, hypothesis: str) -> float:
    """Character error rate over normalised text."""
    ref = normalize_text(reference)
    hyp = normalize_text(hypothesis)
    if not ref:
        return 0.0 if not hyp else 1.0
    return edit_distance(ref, hyp) / len(ref)


def transcription_matches(reference: str, hypothesis: str,
                          max_wer: float = 0.0) -> bool:
    """True if ``hypothesis`` matches ``reference`` up to ``max_wer``."""
    return word_error_rate(reference, hypothesis) <= max_wer
