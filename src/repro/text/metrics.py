"""Sequence error metrics: edit distance, WER and CER.

Used by the evaluation (the non-targeted AE experiment thresholds on word
error rate) and by the attacks' success criteria.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.text.normalize import normalize_text, tokenize


def edit_distance(reference: Sequence, hypothesis: Sequence) -> int:
    """Levenshtein distance between two token sequences."""
    ref_len, hyp_len = len(reference), len(hypothesis)
    if ref_len == 0:
        return hyp_len
    if hyp_len == 0:
        return ref_len
    previous = list(range(hyp_len + 1))
    for i in range(1, ref_len + 1):
        current = [i] + [0] * hyp_len
        ref_token = reference[i - 1]
        for j in range(1, hyp_len + 1):
            substitution = previous[j - 1] + (0 if ref_token == hypothesis[j - 1] else 1)
            current[j] = min(previous[j] + 1, current[j - 1] + 1, substitution)
        previous = current
    return previous[hyp_len]


def word_error_rate(reference: str, hypothesis: str) -> float:
    """Word error rate of ``hypothesis`` against ``reference``.

    Defined as edit distance over words divided by the reference length.
    An empty reference with a non-empty hypothesis counts as WER 1.0.
    """
    ref_tokens = tokenize(reference)
    hyp_tokens = tokenize(hypothesis)
    if not ref_tokens:
        return 0.0 if not hyp_tokens else 1.0
    return edit_distance(ref_tokens, hyp_tokens) / len(ref_tokens)


def character_error_rate(reference: str, hypothesis: str) -> float:
    """Character error rate over normalised text."""
    ref = normalize_text(reference)
    hyp = normalize_text(hypothesis)
    if not ref:
        return 0.0 if not hyp else 1.0
    return edit_distance(ref, hyp) / len(ref)


def transcription_matches(reference: str, hypothesis: str,
                          max_wer: float = 0.0) -> bool:
    """True if ``hypothesis`` matches ``reference`` up to ``max_wer``."""
    return word_error_rate(reference, hypothesis) <= max_wer
