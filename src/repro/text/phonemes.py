"""Phoneme inventory and acoustic profiles.

The inventory is an ARPAbet-style set of English phonemes.  Each phoneme
carries an *acoustic profile* — formant frequencies, a voicing flag and a
noise level — used both by the speech synthesiser (to render the phoneme as
audio) and by the ASR simulators (to derive per-model acoustic templates).

The profiles are deliberately simple: three formant-like spectral peaks for
voiced sounds and shaped noise for fricatives/stops.  What matters for the
reproduction is that distinct phonemes are acoustically separable and that
the mapping is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

Phoneme = str

#: Special "phoneme" representing silence / word boundaries.
SILENCE: Phoneme = "SIL"


@dataclass(frozen=True)
class PhonemeProfile:
    """Acoustic description of a phoneme.

    Attributes:
        formants: centre frequencies (Hz) of up to three spectral peaks.
        amplitudes: relative amplitude of each formant.
        voiced: whether the phoneme has a periodic (pitched) source.
        noise: amount of aspiration/frication noise in [0, 1].
        duration: nominal duration in seconds.
    """

    formants: tuple[float, ...]
    amplitudes: tuple[float, ...]
    voiced: bool
    noise: float
    duration: float


# Vowel formants loosely follow published average F1/F2/F3 values for
# American English; consonants use representative noise bands or low-energy
# profiles.  Durations: vowels ~90 ms, stops ~50 ms, fricatives ~70 ms.
_VOWEL = lambda f1, f2, f3, dur=0.09: PhonemeProfile(  # noqa: E731
    formants=(f1, f2, f3), amplitudes=(1.0, 0.7, 0.3), voiced=True, noise=0.05,
    duration=dur,
)

_PROFILES: dict[Phoneme, PhonemeProfile] = {
    # --- vowels / diphthongs ---
    "AA": _VOWEL(730, 1090, 2440),
    "AE": _VOWEL(660, 1720, 2410),
    "AH": _VOWEL(640, 1190, 2390),
    "AO": _VOWEL(570, 840, 2410),
    "AW": _VOWEL(700, 1220, 2600, 0.12),
    "AY": _VOWEL(660, 1700, 2600, 0.12),
    "EH": _VOWEL(530, 1840, 2480),
    "ER": _VOWEL(490, 1350, 1690),
    "EY": _VOWEL(480, 2150, 2700, 0.11),
    "IH": _VOWEL(390, 1990, 2550),
    "IY": _VOWEL(270, 2290, 3010),
    "OW": _VOWEL(500, 900, 2450, 0.11),
    "OY": _VOWEL(520, 1300, 2500, 0.13),
    "UH": _VOWEL(440, 1020, 2240),
    "UW": _VOWEL(300, 870, 2240),
    # --- semivowels / liquids / nasals (voiced, low noise) ---
    "W": PhonemeProfile((300, 700, 2200), (1.0, 0.6, 0.2), True, 0.05, 0.06),
    "Y": PhonemeProfile((280, 2200, 3000), (1.0, 0.6, 0.2), True, 0.05, 0.06),
    "R": PhonemeProfile((420, 1300, 1600), (1.0, 0.7, 0.4), True, 0.08, 0.07),
    "L": PhonemeProfile((380, 1100, 2600), (1.0, 0.5, 0.3), True, 0.06, 0.07),
    "M": PhonemeProfile((280, 1000, 2200), (1.0, 0.3, 0.1), True, 0.04, 0.07),
    "N": PhonemeProfile((300, 1400, 2500), (1.0, 0.3, 0.1), True, 0.04, 0.07),
    "NG": PhonemeProfile((320, 1300, 2100), (1.0, 0.3, 0.1), True, 0.04, 0.08),
    # --- voiced fricatives / affricates ---
    "V": PhonemeProfile((350, 1600, 2600), (0.7, 0.4, 0.4), True, 0.45, 0.06),
    "DH": PhonemeProfile((350, 1500, 2700), (0.7, 0.4, 0.4), True, 0.40, 0.05),
    "Z": PhonemeProfile((400, 2500, 4500), (0.5, 0.5, 0.8), True, 0.60, 0.07),
    "ZH": PhonemeProfile((400, 2200, 3500), (0.5, 0.6, 0.7), True, 0.55, 0.07),
    "JH": PhonemeProfile((350, 2300, 3600), (0.5, 0.6, 0.7), True, 0.55, 0.07),
    # --- unvoiced fricatives / affricates ---
    "F": PhonemeProfile((1200, 2500, 4800), (0.4, 0.5, 0.8), False, 0.85, 0.07),
    "TH": PhonemeProfile((1400, 2700, 5000), (0.4, 0.5, 0.8), False, 0.80, 0.06),
    "S": PhonemeProfile((3000, 4500, 6000), (0.5, 0.8, 1.0), False, 0.95, 0.08),
    "SH": PhonemeProfile((2200, 3300, 4800), (0.6, 0.9, 0.8), False, 0.90, 0.08),
    "CH": PhonemeProfile((2300, 3400, 4700), (0.6, 0.9, 0.8), False, 0.90, 0.07),
    "HH": PhonemeProfile((800, 1800, 3000), (0.5, 0.5, 0.4), False, 0.70, 0.05),
    # --- stops ---
    "P": PhonemeProfile((700, 1800, 3200), (0.4, 0.3, 0.3), False, 0.65, 0.05),
    "B": PhonemeProfile((350, 1200, 2400), (0.8, 0.4, 0.2), True, 0.25, 0.05),
    "T": PhonemeProfile((2500, 3800, 5200), (0.4, 0.6, 0.6), False, 0.70, 0.05),
    "D": PhonemeProfile((400, 1700, 2700), (0.8, 0.5, 0.3), True, 0.25, 0.05),
    "K": PhonemeProfile((1600, 2600, 3800), (0.5, 0.5, 0.4), False, 0.70, 0.05),
    "G": PhonemeProfile((350, 1500, 2500), (0.8, 0.5, 0.3), True, 0.25, 0.05),
    # --- silence ---
    SILENCE: PhonemeProfile((0.0,), (0.0,), False, 0.0, 0.06),
}

#: Ordered phoneme inventory (stable order is relied upon by acoustic models).
PHONEMES: tuple[Phoneme, ...] = tuple(sorted(_PROFILES))

#: Index of each phoneme in :data:`PHONEMES`.
PHONEME_TO_INDEX: dict[Phoneme, int] = {p: i for i, p in enumerate(PHONEMES)}

_VOWELS = frozenset(
    p for p, prof in _PROFILES.items()
    if prof.voiced and prof.noise <= 0.1 and p not in
    {"W", "Y", "R", "L", "M", "N", "NG"}
)


def phoneme_profile(phoneme: Phoneme) -> PhonemeProfile:
    """Return the acoustic profile of ``phoneme``.

    Raises:
        KeyError: if the phoneme is not in the inventory.
    """
    return _PROFILES[phoneme]


def is_vowel(phoneme: Phoneme) -> bool:
    """True if the phoneme is a vowel or diphthong."""
    return phoneme in _VOWELS


def validate_sequence(phonemes: list[Phoneme]) -> None:
    """Raise ``ValueError`` if any phoneme is not in the inventory."""
    unknown = [p for p in phonemes if p not in _PROFILES]
    if unknown:
        raise ValueError(f"unknown phonemes: {sorted(set(unknown))}")
