"""Bigram language model used by the ASR word decoders.

Every ASR simulator carries a small statistical language model, mirroring
the "language generation" stage of the ASR pipeline described in Section II
of the paper.  A simple add-k smoothed bigram model over the training
corpora is sufficient: its role is to break ties between acoustically
similar word sequences during decoding.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence

import numpy as np

from repro.text.normalize import tokenize

#: Sentinel tokens for sentence boundaries.
BOS = "<s>"
EOS = "</s>"


class BigramLanguageModel:
    """Add-k smoothed bigram model over word tokens."""

    def __init__(self, sentences: Iterable[str] | None = None, k: float = 0.1):
        if k <= 0:
            raise ValueError("smoothing constant k must be positive")
        self.k = k
        self._unigrams: Counter[str] = Counter()
        self._bigrams: dict[str, Counter[str]] = defaultdict(Counter)
        self._total_tokens = 0
        if sentences is not None:
            self.fit(sentences)

    # ------------------------------------------------------------------ fit
    def fit(self, sentences: Iterable[str]) -> "BigramLanguageModel":
        """Accumulate counts from ``sentences`` (may be called repeatedly)."""
        for sentence in sentences:
            tokens = [BOS, *tokenize(sentence), EOS]
            for token in tokens:
                self._unigrams[token] += 1
                self._total_tokens += 1
            for prev, cur in zip(tokens, tokens[1:]):
                self._bigrams[prev][cur] += 1
        return self

    # -------------------------------------------------------------- queries
    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens seen (including boundary markers)."""
        return len(self._unigrams)

    def unigram_logprob(self, word: str) -> float:
        """Smoothed log probability of ``word`` under the unigram model."""
        vocab = max(1, self.vocabulary_size)
        count = self._unigrams.get(word, 0)
        return math.log((count + self.k) / (self._total_tokens + self.k * vocab))

    def bigram_logprob(self, prev: str, word: str) -> float:
        """Smoothed log probability of ``word`` following ``prev``."""
        vocab = max(1, self.vocabulary_size)
        following = self._bigrams.get(prev)
        count = following.get(word, 0) if following else 0
        context_total = sum(following.values()) if following else 0
        return math.log((count + self.k) / (context_total + self.k * vocab))

    def sentence_logprob(self, sentence: str) -> float:
        """Log probability of a whole sentence, including boundaries."""
        tokens = [BOS, *tokenize(sentence), EOS]
        return sum(self.bigram_logprob(p, c) for p, c in zip(tokens, tokens[1:]))

    def word_score(self, prev: str | None, word: str) -> float:
        """Decoder-facing score: bigram log-prob with unigram backoff mix.

        The decoder passes ``prev=None`` for the first word of a hypothesis.
        """
        prev_token = BOS if prev is None else prev
        bigram = self.bigram_logprob(prev_token, word)
        unigram = self.unigram_logprob(word)
        # Interpolate lightly so unseen bigrams are not over-penalised.
        return 0.7 * bigram + 0.3 * unigram

    def unigram_logprob_vector(self, words: Sequence[str]) -> np.ndarray:
        """Per-word :meth:`unigram_logprob` as a float64 vector.

        Context-independent, so decoders compute it once per lexicon and
        reuse it across every :meth:`word_scores` call.
        """
        return np.array([self.unigram_logprob(word) for word in words],
                        dtype=np.float64)

    def word_scores(self, prev: str | None, words: Sequence[str],
                    unigram_logprobs: np.ndarray | None = None) -> np.ndarray:
        """Vectorized :meth:`word_score` over a word list.

        Bit-identical per entry to scalar :meth:`word_score` calls: most
        words share the context's unseen-bigram probability (one
        ``math.log`` on the same operands as the scalar path), the sparse
        observed bigrams are filled in individually, and the final
        ``0.7 * bigram + 0.3 * unigram`` mix is the same two IEEE double
        multiplies and add per element.
        """
        prev_token = BOS if prev is None else prev
        vocab = max(1, self.vocabulary_size)
        following = self._bigrams.get(prev_token)
        context_total = sum(following.values()) if following else 0
        denominator = context_total + self.k * vocab
        bigrams = np.full(len(words), math.log((0 + self.k) / denominator),
                          dtype=np.float64)
        if following:
            index = {word: i for i, word in enumerate(words)}
            for word, count in following.items():
                i = index.get(word)
                if i is not None:
                    bigrams[i] = math.log((count + self.k) / denominator)
        if unigram_logprobs is None:
            unigram_logprobs = self.unigram_logprob_vector(words)
        return 0.7 * bigrams + 0.3 * np.asarray(unigram_logprobs,
                                                dtype=np.float64)
