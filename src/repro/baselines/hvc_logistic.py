"""Hidden-voice-command baseline (Carlini et al., 2016).

The original defence trains a logistic regression to separate normal speech
from hidden voice commands (noise-like audio that ASRs accept but humans do
not understand) using simple acoustic statistics.  It cannot detect modern
audio AEs, whose waveforms remain speech-like — which is the comparison the
paper draws.  Features used here: RMS energy, zero-crossing rate, spectral
centroid, spectral flatness and high-frequency energy ratio.
"""

from __future__ import annotations

import numpy as np

from repro.audio.waveform import Waveform
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.scaler import StandardScaler

_EPS = 1e-12


def acoustic_statistics(audio: Waveform) -> np.ndarray:
    """Five summary statistics of an audio clip."""
    samples = audio.samples
    if samples.size == 0:
        return np.zeros(5)
    rms = float(np.sqrt(np.mean(samples ** 2)))
    zero_crossings = float(np.mean(np.abs(np.diff(np.sign(samples))) > 0))
    spectrum = np.abs(np.fft.rfft(samples)) ** 2
    freqs = np.fft.rfftfreq(samples.size, d=1.0 / audio.sample_rate)
    total = spectrum.sum() + _EPS
    centroid = float((freqs * spectrum).sum() / total)
    flatness = float(np.exp(np.mean(np.log(spectrum + _EPS))) / (spectrum.mean() + _EPS))
    high_ratio = float(spectrum[freqs > 4000].sum() / total)
    return np.array([rms, zero_crossings, centroid / 8000.0, flatness, high_ratio])


class HiddenVoiceCommandDetector:
    """Logistic regression over acoustic statistics."""

    def __init__(self):
        self.classifier = LogisticRegressionClassifier()
        self.scaler = StandardScaler()
        self._fitted = False

    def fit(self, audios: list[Waveform], labels: np.ndarray) -> "HiddenVoiceCommandDetector":
        """Train on labelled audio (1 = attack, 0 = benign)."""
        features = np.array([acoustic_statistics(audio) for audio in audios])
        self.classifier.fit(self.scaler.fit_transform(features), np.asarray(labels))
        self._fitted = True
        return self

    def predict(self, audios: list[Waveform]) -> np.ndarray:
        """Predicted labels for a batch of audio clips."""
        if not self._fitted:
            raise RuntimeError("detector has not been trained; call fit() first")
        features = np.array([acoustic_statistics(audio) for audio in audios])
        return self.classifier.predict(self.scaler.transform(features))
