"""Temporal-dependency baseline (Yang et al., 2018).

The hypothesis: adversarial perturbations rely on the whole audio to resolve
temporal dependencies, so transcribing the two halves separately and
splicing the results yields text very different from the whole-audio
transcription for AEs but similar text for benign audio.  The paper notes
this defence can be evaded by adaptive attacks that embed the command in a
single half; the :meth:`adaptive_attack_section` helper exposes the
single-section transcription so that weakness can be demonstrated.
"""

from __future__ import annotations

from repro.asr.base import ASRSystem
from repro.audio.waveform import Waveform
from repro.similarity.engine import SimilarityEngine
from repro.similarity.scorer import SimilarityScorer


class TemporalDependencyDetector:
    """Detects AEs by comparing whole vs spliced-half transcriptions.

    Scoring routes through a
    :class:`~repro.similarity.engine.SimilarityEngine` (pass ``scoring=``
    to share one), so repeatedly screened clips hit the pair-score cache.
    """

    def __init__(self, asr: ASRSystem, threshold: float = 0.7,
                 scorer: SimilarityScorer | str | None = None,
                 scoring: SimilarityEngine | None = None):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.asr = asr
        self.threshold = threshold
        self.scoring = scoring if scoring is not None else \
            SimilarityEngine(scorer=scorer)
        self.scorer = self.scoring.scorer

    def consistency_score(self, audio: Waveform) -> float:
        """Similarity between the whole transcription and the spliced halves."""
        whole = self.asr.transcribe(audio).text
        midpoint = len(audio) // 2
        first = audio.with_samples(audio.samples[:midpoint])
        second = audio.with_samples(audio.samples[midpoint:])
        spliced = " ".join(part for part in (self.asr.transcribe(first).text,
                                             self.asr.transcribe(second).text) if part)
        return self.scoring.score_pair(whole, spliced)

    def is_adversarial(self, audio: Waveform) -> bool:
        """True when the spliced transcription diverges from the whole one."""
        return self.consistency_score(audio) < self.threshold

    def adaptive_attack_section(self, audio: Waveform) -> str:
        """Transcription of the first half only.

        An adaptive attacker embeds the whole command into one section; the
        command then survives the splicing check, which is the evasion the
        paper cites when arguing for MVP-EARS instead.
        """
        midpoint = len(audio) // 2
        first = audio.with_samples(audio.samples[:midpoint])
        return self.asr.transcribe(first).text
