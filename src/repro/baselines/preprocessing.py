"""Pre-processing baseline (Rajaratnam et al., 2018).

Detects AEs by transcribing both the original audio and a pre-processed
copy (low-pass smoothing and amplitude quantisation) with the same ASR: an
adversarial perturbation is brittle, so pre-processing changes the
transcription of an AE much more than that of benign audio.  The paper
points out that an attacker who knows the pre-processing can fold it into
AE generation, which is why MVP-EARS relies on model diversity instead.
"""

from __future__ import annotations

import numpy as np

from repro.asr.base import ASRSystem
from repro.audio.waveform import Waveform
from repro.similarity.engine import SimilarityEngine
from repro.similarity.scorer import SimilarityScorer


def smooth_and_quantize(samples: np.ndarray, kernel_size: int = 5,
                        levels: int = 256) -> np.ndarray:
    """Moving-average smoothing followed by amplitude quantisation."""
    if kernel_size < 1:
        raise ValueError("kernel_size must be >= 1")
    if levels < 2:
        raise ValueError("levels must be >= 2")
    kernel = np.ones(kernel_size) / kernel_size
    smoothed = np.convolve(samples, kernel, mode="same")
    step = 2.0 / (levels - 1)
    return np.round(smoothed / step) * step


class PreprocessingDetector:
    """Detects AEs via transcription drift under input transformations.

    Scoring routes through a
    :class:`~repro.similarity.engine.SimilarityEngine` (pass ``scoring=``
    to share one), so repeatedly screened clips hit the pair-score cache.
    """

    def __init__(self, asr: ASRSystem, threshold: float = 0.7,
                 kernel_size: int = 5, levels: int = 256,
                 scorer: SimilarityScorer | str | None = None,
                 scoring: SimilarityEngine | None = None):
        self.asr = asr
        self.threshold = threshold
        self.kernel_size = kernel_size
        self.levels = levels
        self.scoring = scoring if scoring is not None else \
            SimilarityEngine(scorer=scorer)
        self.scorer = self.scoring.scorer

    def drift_score(self, audio: Waveform) -> float:
        """Similarity between original and pre-processed transcriptions."""
        original_text = self.asr.transcribe(audio).text
        processed = audio.with_samples(
            smooth_and_quantize(audio.samples, self.kernel_size, self.levels))
        processed_text = self.asr.transcribe(processed).text
        return self.scoring.score_pair(original_text, processed_text)

    def is_adversarial(self, audio: Waveform) -> bool:
        """True when pre-processing changes the transcription substantially."""
        return self.drift_score(audio) < self.threshold
