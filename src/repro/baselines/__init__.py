"""Baseline audio-AE detection methods discussed by the paper.

Three prior approaches are implemented for comparison / ablation:

* :class:`TemporalDependencyDetector` — Yang et al. (2018): split the audio
  in two, transcribe the halves separately, and compare the spliced result
  with the whole-audio transcription.
* :class:`PreprocessingDetector` — Rajaratnam et al. (2018): compare the
  transcription of the original audio with that of a pre-processed
  (smoothed / compressed) copy.
* :class:`HiddenVoiceCommandDetector` — Carlini et al. (2016): a logistic
  regression over simple acoustic statistics, trained on benign vs hidden-
  voice-command-style audio.
"""

from repro.baselines.temporal_dependency import TemporalDependencyDetector
from repro.baselines.preprocessing import PreprocessingDetector
from repro.baselines.hvc_logistic import HiddenVoiceCommandDetector

__all__ = [
    "TemporalDependencyDetector",
    "PreprocessingDetector",
    "HiddenVoiceCommandDetector",
]
