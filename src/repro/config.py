"""Global configuration for the MVP-EARS reproduction.

The paper's evaluation uses 2400 benign samples, 1800 white-box AEs and 600
black-box AEs.  Generating adversarial examples is the expensive step of the
pipeline, so this module defines *scale presets* that shrink the dataset
sizes while preserving the score distributions that drive every downstream
result.  All experiment entry points accept a :class:`ReproScale` so the
full paper scale can be requested explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

#: Default random seed used across the library.  The paper fixes the Random
#: Forest seed at 200; we reuse that value as the global default so every
#: experiment is reproducible end to end.
DEFAULT_SEED = 200

#: Sample rate used by the audio substrate (Hz).  LibriSpeech audio is
#: 16 kHz, and both attack papers operate at 16 kHz.
SAMPLE_RATE = 16_000


@dataclass(frozen=True)
class ReproScale:
    """Dataset sizes for one evaluation run.

    Attributes mirror Table II of the paper: the benign dataset, the
    white-box AE dataset and the black-box AE dataset.
    """

    name: str
    n_benign: int
    n_whitebox: int
    n_blackbox: int
    #: number of non-targeted (noise) AEs for the Section V-J experiment.
    n_nontargeted: int = 24
    #: number of hypothetical MAE AEs per type (paper: 2400).
    n_mae_per_type: int = 200

    @property
    def n_adversarial(self) -> int:
        """Total number of real (audio) adversarial examples."""
        return self.n_whitebox + self.n_blackbox

    def scaled(self, factor: float) -> "ReproScale":
        """Return a copy with every dataset size multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            name=f"{self.name}*{factor:g}",
            n_benign=max(4, int(self.n_benign * factor)),
            n_whitebox=max(3, int(self.n_whitebox * factor)),
            n_blackbox=max(1, int(self.n_blackbox * factor)),
            n_nontargeted=max(2, int(self.n_nontargeted * factor)),
            n_mae_per_type=max(8, int(self.n_mae_per_type * factor)),
        )


#: Tiny preset used by unit tests: fast enough for CI, still exercises every
#: code path.
TINY = ReproScale(name="tiny", n_benign=16, n_whitebox=8, n_blackbox=4,
                  n_nontargeted=6, n_mae_per_type=32)

#: Small preset used by the benchmark harness by default.
SMALL = ReproScale(name="small", n_benign=96, n_whitebox=48, n_blackbox=16,
                   n_nontargeted=16, n_mae_per_type=120)

#: Medium preset: a compromise for longer runs.
MEDIUM = ReproScale(name="medium", n_benign=320, n_whitebox=160,
                    n_blackbox=48, n_nontargeted=32, n_mae_per_type=400)

#: The paper's full scale (Table II).  Only practical with long wall-clock
#: budgets; attack generation dominates.
PAPER = ReproScale(name="paper", n_benign=2400, n_whitebox=1800,
                   n_blackbox=600, n_nontargeted=118, n_mae_per_type=2400)

_PRESETS = {p.name: p for p in (TINY, SMALL, MEDIUM, PAPER)}


def scale_names() -> tuple[str, ...]:
    """Names of the registered scale presets, in size order."""
    return tuple(_PRESETS)


def get_scale(name: str | None = None) -> ReproScale:
    """Resolve a scale preset.

    Resolution order: explicit ``name`` argument, the ``REPRO_SCALE``
    environment variable, then the ``small`` preset.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scale preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None


def cache_dir() -> str:
    """Directory used for caching generated datasets.

    Defaults to ``.repro_cache`` under the current working directory and can
    be overridden with the ``REPRO_CACHE_DIR`` environment variable.
    """
    return os.environ.get("REPRO_CACHE_DIR", os.path.join(os.getcwd(), ".repro_cache"))


def runs_dir() -> str:
    """Directory holding experiment run directories (``repro run``/``sweep``).

    Defaults to ``.repro_runs`` under the current working directory and can
    be overridden with the ``REPRO_RUNS_DIR`` environment variable.
    """
    return os.environ.get("REPRO_RUNS_DIR", os.path.join(os.getcwd(), ".repro_runs"))


@dataclass
class RuntimeConfig:
    """Mutable runtime options shared across the library."""

    seed: int = DEFAULT_SEED
    sample_rate: int = SAMPLE_RATE
    #: When True, cloud-style ASRs (Google / Amazon simulators) add a small
    #: artificial latency to mimic network round trips.  Disabled by default
    #: so tests and benchmarks stay fast.
    simulate_cloud_latency: bool = False
    #: Extra keyword overrides applied when datasets are generated.
    dataset_overrides: dict = field(default_factory=dict)


_runtime = RuntimeConfig()


def runtime() -> RuntimeConfig:
    """Return the process-wide :class:`RuntimeConfig` instance."""
    return _runtime
