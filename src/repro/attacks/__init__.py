"""Audio adversarial example generation.

Implements the attack side of the paper's evaluation:

* :class:`WhiteBoxCarliniAttack` — gradient-based targeted attack against a
  single ASR, in the style of Carlini & Wagner (2018), including the
  back-propagation through the MFCC front end.
* :class:`BlackBoxGeneticAttack` — query-only targeted attack in the style
  of Taori et al. (2018), combining a genetic algorithm with gradient
  estimation; produces larger perturbations and short payloads.
* :func:`make_nontargeted_example` — noise-based non-targeted AEs used in
  Section V-J of the paper.
* :class:`RecursiveTransferAttack` — the CommanderSong-style two-iteration
  attack the paper uses in Section III to probe (and refute) AE
  transferability.
"""

from repro.attacks.base import AttackResult, TargetedAttack
from repro.attacks.alignment import target_frame_alignment
from repro.attacks.whitebox import WhiteBoxCarliniAttack
from repro.attacks.blackbox import BlackBoxGeneticAttack
from repro.attacks.nontargeted import make_nontargeted_example
from repro.attacks.recursive import RecursiveTransferAttack

__all__ = [
    "AttackResult",
    "TargetedAttack",
    "target_frame_alignment",
    "WhiteBoxCarliniAttack",
    "BlackBoxGeneticAttack",
    "make_nontargeted_example",
    "RecursiveTransferAttack",
]
