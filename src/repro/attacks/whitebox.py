"""White-box targeted attack in the style of Carlini & Wagner (2018).

The attack optimises an additive waveform perturbation so that the target
ASR transcribes an attacker-chosen phrase, while an L2 penalty keeps the
perturbation human-imperceptible.  Following the original attack, the MFCC
front end is part of the gradient chain: gradients flow from the acoustic
model's frame-level loss through the DCT/log/mel/FFT pipeline back to the
raw samples (see :class:`repro.dsp.mfcc.MfccGradientTape`).

Two details matter for the reproduction:

* the frame loss is a *hinge* on the logit margin, so the optimisation
  stops as soon as the target model's decision flips (plus a small margin)
  instead of dragging the features all the way onto the target phoneme
  templates — this is what keeps the AEs from transferring to other ASRs,
  mirroring the transferability findings of Section III of the paper;
* the perturbation is bounded in L-infinity norm, giving the ~99.9 %
  similarity between AE and host audio the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asr.simulated import SimulatedASR
from repro.attacks.alignment import target_alignment_from_host
from repro.attacks.base import AttackResult, TargetedAttack
from repro.audio.waveform import Waveform
from repro.dsp.features import MfccFeatureExtractor
from repro.dsp.framing import overlap_add


@dataclass(frozen=True)
class WhiteBoxAttackConfig:
    """Hyper-parameters of the white-box attack."""

    max_iterations: int = 350
    learning_rate: float = 3.0e-3
    l2_penalty: float = 0.01
    margin: float = 0.5
    linf_bound: float = 0.06
    check_every: int = 25
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    adam_epsilon: float = 1e-8
    #: number of bisection steps used to shrink a successful perturbation.
    shrink_steps: int = 5
    #: escalation ladder for the L-infinity bound when the attack fails.
    escalation_bounds: tuple[float, ...] = (0.1, 0.15)


class WhiteBoxCarliniAttack(TargetedAttack):
    """Gradient-based targeted attack against one simulated ASR."""

    label = "whitebox-ae"

    def __init__(self, target_asr: SimulatedASR,
                 config: WhiteBoxAttackConfig | None = None):
        if not isinstance(target_asr.feature_extractor, MfccFeatureExtractor):
            raise TypeError(
                "the white-box attack backpropagates through an MFCC front end; "
                f"{target_asr.name} uses {type(target_asr.feature_extractor).__name__}")
        self.target_asr = target_asr
        self.config = config or WhiteBoxAttackConfig()

    # ------------------------------------------------------------------ run
    def run(self, host: Waveform, target_text: str) -> AttackResult:
        """Craft an AE from ``host`` targeting ``target_text``.

        If the attack fails within the configured L-infinity bound it is
        retried with the (larger) bounds of ``config.escalation_bounds``;
        after a success the perturbation is shrunk by bisection to the
        smallest scale that still fools the target model.
        """
        result = self._run_once(host, target_text, self.config.linf_bound)
        for bound in self.config.escalation_bounds:
            if result.success:
                break
            result = self._run_once(host, target_text, bound)
        return result

    def _run_once(self, host: Waveform, target_text: str,
                  linf_bound: float) -> AttackResult:
        cfg = self.config
        asr = self.target_asr
        extractor: MfccFeatureExtractor = asr.feature_extractor
        mfcc = extractor.mfcc_extractor
        samples = host.samples.copy()
        n_samples = samples.shape[0]

        host_transcription = asr.transcribe(host)
        alignment = target_alignment_from_host(
            target_text, list(host_transcription.frame_labels),
            asr.word_decoder.lexicon,
            min_frames_per_phoneme=max(2, asr.min_phoneme_run))

        hop = mfcc.config.hop_length
        perturbation = np.zeros(n_samples)
        adam_m = np.zeros(n_samples)
        adam_v = np.zeros(n_samples)
        best_perturbation: np.ndarray | None = None
        best_norm = np.inf
        transcription = ""
        iterations_used = cfg.max_iterations

        for iteration in range(1, cfg.max_iterations + 1):
            candidate = np.clip(samples + perturbation, -1.0, 1.0)
            frames = mfcc.frames(candidate)
            tape = mfcc.forward_with_tape(frames)
            loss, grad_features = asr.acoustic_model.target_margin_loss(
                tape.mfcc, alignment, margin=cfg.margin)
            grad_frames = tape.backward(grad_features)
            grad_samples = overlap_add(grad_frames, hop, n_samples=len(candidate))
            grad_samples = grad_samples[:n_samples]
            grad_samples = grad_samples + cfg.l2_penalty * 2.0 * perturbation

            # Adam update on the perturbation.
            adam_m = cfg.adam_beta1 * adam_m + (1 - cfg.adam_beta1) * grad_samples
            adam_v = cfg.adam_beta2 * adam_v + (1 - cfg.adam_beta2) * grad_samples ** 2
            m_hat = adam_m / (1 - cfg.adam_beta1 ** iteration)
            v_hat = adam_v / (1 - cfg.adam_beta2 ** iteration)
            perturbation -= cfg.learning_rate * m_hat / (np.sqrt(v_hat) + cfg.adam_epsilon)
            perturbation = np.clip(perturbation, -linf_bound, linf_bound)

            should_check = (iteration % cfg.check_every == 0
                            or iteration == cfg.max_iterations or loss == 0.0)
            if should_check:
                candidate = np.clip(samples + perturbation, -1.0, 1.0)
                result = asr.transcribe(host.with_samples(candidate))
                transcription = result.text
                if transcription == target_text_normalised(target_text):
                    norm = float(np.linalg.norm(perturbation))
                    if norm < best_norm:
                        best_norm = norm
                        best_perturbation = perturbation.copy()
                    iterations_used = iteration
                    break

        if best_perturbation is None:
            best_perturbation = perturbation
        else:
            best_perturbation = self._shrink(samples, best_perturbation,
                                             target_text, host)
        final = np.clip(samples + best_perturbation, -1.0, 1.0)
        final_transcription = asr.transcribe(host.with_samples(final)).text
        return self._build_result(
            host, final, target_text, final_transcription, iterations_used,
            perturbation_linf=float(np.max(np.abs(final - samples))),
            perturbation_l2=float(np.linalg.norm(final - samples)),
            linf_bound=linf_bound,
        )

    def _shrink(self, samples: np.ndarray, perturbation: np.ndarray,
                target_text: str, host: Waveform) -> np.ndarray:
        """Bisect the smallest perturbation scale that still succeeds."""
        target = target_text_normalised(target_text)
        asr = self.target_asr
        low, high = 0.0, 1.0
        best_scale = 1.0
        for _ in range(self.config.shrink_steps):
            mid = (low + high) / 2.0
            candidate = np.clip(samples + mid * perturbation, -1.0, 1.0)
            if asr.transcribe(host.with_samples(candidate)).text == target:
                best_scale = mid
                high = mid
            else:
                low = mid
        return best_scale * perturbation


def target_text_normalised(target_text: str) -> str:
    """Normalise the target phrase the same way transcriptions are."""
    from repro.text.normalize import normalize_text

    return normalize_text(target_text)
