"""Non-targeted adversarial examples.

Section V-J of the paper observes that non-targeted AEs can be produced by
simply adding noise at −6 dB SNR to benign audio: the result is still
recognisable to humans but drives the ASR word error rate above 80 %.
"""

from __future__ import annotations

import numpy as np

from repro.asr.base import ASRSystem
from repro.audio.noise import add_noise_snr
from repro.audio.waveform import Waveform
from repro.text.metrics import word_error_rate


def make_nontargeted_example(host: Waveform, rng: np.random.Generator,
                             snr_db: float = -6.0,
                             target_asr: ASRSystem | None = None,
                             min_wer: float = 0.8,
                             max_attempts: int = 4) -> Waveform:
    """Create a non-targeted AE by noise injection.

    Args:
        host: benign audio with ground-truth text.
        rng: random generator.
        snr_db: signal-to-noise ratio of the injected noise (the paper uses
            −6 dB).
        target_asr: if given, the function verifies that the ASR's word
            error rate on the noisy audio exceeds ``min_wer`` and lowers the
            SNR (more noise) for up to ``max_attempts`` attempts otherwise.
        min_wer: word error rate threshold defining a successful
            non-targeted AE.
        max_attempts: number of SNR reductions to try.

    Returns:
        The noisy waveform, labelled ``"nontargeted-ae"``; its metadata
        records the SNR used and, when a target ASR was supplied, the
        achieved word error rate.
    """
    current_snr = snr_db
    noisy = add_noise_snr(host, current_snr, rng)
    if target_asr is None:
        return noisy
    for _ in range(max_attempts):
        wer = word_error_rate(host.text, target_asr.transcribe(noisy).text)
        if wer >= min_wer:
            return noisy.with_samples(noisy.samples, achieved_wer=wer)
        current_snr -= 4.0
        noisy = add_noise_snr(host, current_snr, rng)
    wer = word_error_rate(host.text, target_asr.transcribe(noisy).text)
    return noisy.with_samples(noisy.samples, achieved_wer=wer)
