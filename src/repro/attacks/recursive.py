"""Two-iteration recursive attack (CommanderSong-style transfer probe).

Section III of the paper tests whether transferable AEs can be built by
chaining two single-target attacks: an AE crafted against model A is used
as the host audio for a second attack against model B, embedding the same
command.  The paper (and this reproduction) finds that the second iteration
destroys the success on the first model — the resulting audio fools B but
no longer A, i.e. the method does not yield transferable AEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asr.base import ASRSystem
from repro.attacks.base import AttackResult, TargetedAttack
from repro.audio.waveform import Waveform
from repro.text.metrics import word_error_rate
from repro.text.normalize import normalize_text


@dataclass
class RecursiveAttackResult:
    """Outcome of the two-iteration recursive attack."""

    first: AttackResult
    second: AttackResult
    #: transcription of the final audio by every probed ASR.
    transcriptions: dict[str, str] = field(default_factory=dict)
    #: per-ASR success of the final audio (exact match with the command).
    fools: dict[str, bool] = field(default_factory=dict)

    @property
    def transferable(self) -> bool:
        """True if the final AE fools every probed ASR."""
        return bool(self.fools) and all(self.fools.values())


class RecursiveTransferAttack:
    """Chain two targeted attacks in an attempt to build a transferable AE."""

    def __init__(self, first_attack: TargetedAttack, second_attack: TargetedAttack):
        self.first_attack = first_attack
        self.second_attack = second_attack

    def run(self, host: Waveform, command: str,
            probe_asrs: dict[str, ASRSystem]) -> RecursiveAttackResult:
        """Run both attack iterations and probe the final AE on ``probe_asrs``."""
        command = normalize_text(command)
        first = self.first_attack.run(host, command)
        second_host = first.adversarial.with_text(host.text)
        second = self.second_attack.run(second_host, command)

        transcriptions: dict[str, str] = {}
        fools: dict[str, bool] = {}
        for name, asr in probe_asrs.items():
            text = asr.transcribe(second.adversarial).text
            transcriptions[name] = text
            fools[name] = word_error_rate(command, text) == 0.0
        return RecursiveAttackResult(first=first, second=second,
                                     transcriptions=transcriptions, fools=fools)
