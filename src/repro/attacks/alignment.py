"""Forced alignment of a target phrase onto analysis frames.

Both targeted attacks need a frame-level supervision signal: which phoneme
the target model should output at every frame so that, after CTC-style
collapsing and word decoding, the transcription equals the attacker's
phrase.  The alignment spreads the target phonemes over the available
frames proportionally to their nominal durations, inserting silence at word
boundaries and at the edges of the utterance.
"""

from __future__ import annotations

import numpy as np

from repro.text.lexicon import Lexicon
from repro.text.normalize import tokenize
from repro.text.phonemes import PHONEME_TO_INDEX, SILENCE, Phoneme, phoneme_profile


def target_frame_alignment(target_text: str, n_frames: int, lexicon: Lexicon,
                           min_frames_per_phoneme: int = 2) -> np.ndarray:
    """Assign a target phoneme index to each of ``n_frames`` frames.

    Args:
        target_text: the attacker's phrase.
        n_frames: number of analysis frames of the host audio.
        lexicon: pronunciation lexicon shared with the ASRs.
        min_frames_per_phoneme: lower bound on the number of frames assigned
            to each phoneme (the CTC-style decoders drop runs shorter than
            their ``min_run``).

    Returns:
        Integer array of length ``n_frames`` with phoneme indices.

    Raises:
        ValueError: if the host audio is too short to carry the phrase.
    """
    if n_frames <= 0:
        raise ValueError("host audio produced no frames")
    phonemes = lexicon.pronounce_sentence(target_text)
    if len(phonemes) <= 2:
        raise ValueError("target text is empty after normalisation")
    if n_frames < len(phonemes) * min_frames_per_phoneme:
        raise ValueError(
            f"host audio too short: {n_frames} frames for {len(phonemes)} phonemes")

    durations = np.array([phoneme_profile(p).duration for p in phonemes])
    weights = durations / durations.sum()
    counts = np.maximum(min_frames_per_phoneme,
                        np.round(weights * n_frames).astype(int))
    # Adjust the longest/shortest segments until the counts sum to n_frames.
    while counts.sum() > n_frames:
        candidates = np.where(counts > min_frames_per_phoneme)[0]
        if candidates.size == 0:
            break
        counts[candidates[np.argmax(counts[candidates])]] -= 1
    while counts.sum() < n_frames:
        counts[int(np.argmax(weights))] += 1

    alignment = np.empty(n_frames, dtype=int)
    position = 0
    for phoneme, count in zip(phonemes, counts):
        end = min(n_frames, position + int(count))
        alignment[position:end] = PHONEME_TO_INDEX[phoneme]
        position = end
    if position < n_frames:
        alignment[position:] = PHONEME_TO_INDEX[SILENCE]
    return alignment


def _stretch_phonemes(phonemes: list[Phoneme], n_frames: int,
                      min_frames_per_phoneme: int) -> list[int]:
    """Spread ``phonemes`` over ``n_frames`` frames proportionally."""
    durations = np.array([phoneme_profile(p).duration for p in phonemes])
    weights = durations / durations.sum()
    counts = np.maximum(min_frames_per_phoneme,
                        np.round(weights * n_frames).astype(int))
    while counts.sum() > n_frames:
        candidates = np.where(counts > min_frames_per_phoneme)[0]
        if candidates.size == 0:
            break
        counts[candidates[np.argmax(counts[candidates])]] -= 1
    while counts.sum() < n_frames:
        counts[int(np.argmax(weights))] += 1
    labels: list[int] = []
    for phoneme, count in zip(phonemes, counts):
        labels.extend([PHONEME_TO_INDEX[phoneme]] * int(count))
    return labels[:n_frames]


def target_alignment_from_host(target_text: str, host_frame_labels: list[Phoneme],
                               lexicon: Lexicon,
                               min_frames_per_phoneme: int = 2) -> np.ndarray:
    """Align the target phrase onto the host's existing speech regions.

    Perturbing silence into speech and speech into silence is the most
    expensive thing an audio attack can do, so instead of stretching the
    target phrase uniformly over the utterance this alignment reuses the
    host's structure: leading/trailing silence stays silent, the host's
    longest internal pauses become the target's word boundaries, and each
    target word is stretched over the speech frames between two boundaries.

    Args:
        target_text: the attacker's phrase.
        host_frame_labels: the target ASR's frame labels for the *host*
            audio (obtained from a normal transcription pass).
        lexicon: pronunciation lexicon shared with the ASRs.
        min_frames_per_phoneme: lower bound per phoneme, matching the
            decoder's minimum run length.

    Returns:
        Integer array with one target phoneme index per host frame.
    """
    n_frames = len(host_frame_labels)
    words = tokenize(target_text)
    if not words:
        raise ValueError("target text is empty after normalisation")
    silence_index = PHONEME_TO_INDEX[SILENCE]

    is_speech = np.array([label != SILENCE for label in host_frame_labels])
    if not is_speech.any():
        raise ValueError("host audio contains no speech frames")
    first_speech = int(np.argmax(is_speech))
    last_speech = int(n_frames - np.argmax(is_speech[::-1]) - 1)
    speech_span = range(first_speech, last_speech + 1)

    # Internal pauses (runs of silence inside the speech span), longest first.
    pauses: list[tuple[int, int]] = []
    run_start = None
    for i in speech_span:
        if not is_speech[i]:
            if run_start is None:
                run_start = i
        elif run_start is not None:
            pauses.append((run_start, i - 1))
            run_start = None
    pauses.sort(key=lambda span: span[1] - span[0], reverse=True)
    boundaries = sorted(pauses[: max(0, len(words) - 1)])

    # Build word regions between consecutive boundaries.
    regions: list[tuple[int, int]] = []
    start = first_speech
    for pause_start, pause_end in boundaries:
        regions.append((start, pause_start - 1))
        start = pause_end + 1
    regions.append((start, last_speech))
    regions = [(s, e) for s, e in regions if e >= s]

    alignment = np.full(n_frames, silence_index, dtype=int)
    if len(regions) >= len(words):
        # One region per word; spare regions are merged into the last word.
        merged = regions[: len(words) - 1] + [(regions[len(words) - 1][0],
                                               regions[-1][1])]
        for word, (region_start, region_end) in zip(words, merged):
            span = region_end - region_start + 1
            phonemes = list(lexicon.pronounce(word))
            needed = len(phonemes) * min_frames_per_phoneme
            if span < needed:
                # Grow the region to the right if the host word is too short.
                region_end = min(last_speech, region_start + needed - 1)
                span = region_end - region_start + 1
            if span < needed:
                raise ValueError("host audio too short for the target phrase")
            alignment[region_start:region_end + 1] = _stretch_phonemes(
                phonemes, span, min_frames_per_phoneme)
        return alignment

    # Fewer host regions than target words: stretch the full pronunciation
    # (with inter-word silences) over the whole speech span.
    span = last_speech - first_speech + 1
    phonemes = lexicon.pronounce_sentence(target_text)
    if span < len(phonemes) * min_frames_per_phoneme:
        raise ValueError("host audio too short for the target phrase")
    alignment[first_speech:last_speech + 1] = _stretch_phonemes(
        phonemes, span, min_frames_per_phoneme)
    return alignment
