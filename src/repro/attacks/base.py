"""Common attack interfaces and result types."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.audio.metrics import similarity_percent
from repro.audio.waveform import Waveform
from repro.text.metrics import word_error_rate
from repro.text.normalize import normalize_text


@dataclass
class AttackResult:
    """Outcome of one attack attempt.

    Attributes:
        adversarial: the crafted audio (label set to the attack type).
        original: the host audio the attack started from.
        target_text: the command the attacker wants transcribed.
        success: True if the target ASR transcribes the AE exactly as (or
            within a small WER of) the target text.
        transcription: the target ASR's transcription of the AE.
        iterations: optimisation iterations / generations used.
        similarity: percentage similarity between the AE and the host audio
            (the paper quotes 99.9 % for white-box, 94.6 % for black-box).
        diagnostics: attack-specific extra information.
    """

    adversarial: Waveform
    original: Waveform
    target_text: str
    success: bool
    transcription: str
    iterations: int
    similarity: float
    diagnostics: dict = field(default_factory=dict)


class TargetedAttack(ABC):
    """A targeted audio AE generation method against a single ASR."""

    #: label stamped onto generated waveforms.
    label = "adversarial"

    @abstractmethod
    def run(self, host: Waveform, target_text: str) -> AttackResult:
        """Craft an AE from ``host`` that should transcribe as ``target_text``."""

    # ------------------------------------------------------------- helpers
    def _build_result(self, host: Waveform, adversarial_samples, target_text: str,
                      transcription: str, iterations: int,
                      success_wer: float = 0.0, **diagnostics) -> AttackResult:
        """Package an attack outcome into an :class:`AttackResult`."""
        target_text = normalize_text(target_text)
        adversarial = host.with_samples(adversarial_samples,
                                        attack=type(self).__name__,
                                        target_text=target_text,
                                        host_text=host.text)
        adversarial = adversarial.with_label(self.label)
        success = word_error_rate(target_text, transcription) <= success_wer
        return AttackResult(
            adversarial=adversarial,
            original=host,
            target_text=target_text,
            success=success,
            transcription=transcription,
            iterations=iterations,
            similarity=similarity_percent(host, adversarial),
            diagnostics=diagnostics,
        )
