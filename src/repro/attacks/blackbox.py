"""Black-box targeted attack in the style of Taori et al. (2018).

The attacker can query the target ASR and observe its output scores (the
per-frame posteriors / CTC loss of a candidate phrase, as exposed by
DeepSpeech) but has no access to gradients or internal parameters.  The
attack runs a genetic algorithm over a low-dimensional perturbation genome
and finishes with a finite-difference gradient-estimation phase, mirroring
the structure of the original attack.

The genome has two genes per analysis frame of the target model:

* ``inject``: the gain of a noise burst shaped to the target phoneme's
  formant bands for that frame, and
* ``suppress``: how much of the host signal in that frame is cancelled.

This keeps the search space small enough for a genetic algorithm to
converge within a few hundred queries while producing exactly the artefact
the paper describes: a *much larger, audible* perturbation than the
white-box attack (the paper quotes ~94.6 % similarity versus ~99.9 %), able
to embed only short (two-word) payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asr.simulated import SimulatedASR
from repro.attacks.alignment import target_alignment_from_host
from repro.attacks.base import AttackResult, TargetedAttack
from repro.audio.waveform import Waveform
from repro.text.normalize import normalize_text, tokenize
from repro.text.phonemes import PHONEMES, phoneme_profile


@dataclass(frozen=True)
class BlackBoxAttackConfig:
    """Hyper-parameters of the black-box attack."""

    population_size: int = 20
    max_generations: int = 60
    elite_fraction: float = 0.25
    mutation_std: float = 0.12
    max_inject: float = 0.35
    max_suppress: float = 0.9
    max_target_words: int = 2
    gradient_estimation_generations: int = 6
    gradient_estimation_step: float = 0.05
    check_every: int = 5
    #: weight of the perturbation-size penalty in the fitness function.
    perturbation_penalty: float = 0.4
    #: bisection steps used to shrink a successful genome.
    shrink_steps: int = 5
    #: number of spectrally-sparse injection variants per segment.
    n_sparse_variants: int = 4
    #: fraction of spectral components kept in each sparse variant.
    sparse_keep_fraction: float = 0.15


class BlackBoxGeneticAttack(TargetedAttack):
    """Query-only targeted attack combining a GA with gradient estimation."""

    label = "blackbox-ae"

    def __init__(self, target_asr: SimulatedASR,
                 config: BlackBoxAttackConfig | None = None, seed: int = 0):
        self.target_asr = target_asr
        self.config = config or BlackBoxAttackConfig()
        self._rng = np.random.default_rng(seed)

    # -------------------------------------------------------------- scoring
    def _alignment_loss(self, samples: np.ndarray, alignment: np.ndarray) -> float:
        """Score of a candidate: negative log posterior of the target alignment.

        Only the target model's output posteriors are used — the same
        information the real black-box attack extracts from the CTC loss
        reported by DeepSpeech — so no gradient or parameter access is
        involved.
        """
        log_posteriors = self.target_asr.frame_log_posteriors(samples)
        n = min(log_posteriors.shape[0], alignment.shape[0])
        if n == 0:
            return float("inf")
        frame_idx = np.arange(n)
        return float(-log_posteriors[frame_idx, alignment[:n]].mean())

    # ------------------------------------------------------------ genome ops
    def _build_segments(self, alignment: np.ndarray, hop: int, frame_length: int,
                        n_samples: int, sample_rate: int) -> list[dict]:
        """Split the alignment into per-phoneme segments with injection audio.

        The attacker does not know the target model's internals, but does
        know what the target phrase *sounds* like; each aligned phoneme
        segment gets several *spectrally sparse* renderings of that phoneme
        (only a small random subset of frequency components is kept).  The
        genetic algorithm then discovers, purely from queries, which sparse
        variant the target model responds to — a different model, attending
        to different spectral detail, is unlikely to respond to the same
        variant, which is what keeps these AEs from transferring.
        """
        from repro.audio.synthesis import SpeakerProfile, SpeechSynthesizer

        synthesizer = SpeechSynthesizer(sample_rate=sample_rate, seed=91)
        speaker = SpeakerProfile(pitch_hz=130.0)
        rng = np.random.default_rng(177)
        segments: list[dict] = []
        start_frame = 0
        n_frames = alignment.shape[0]
        while start_frame < n_frames:
            end_frame = start_frame
            while end_frame + 1 < n_frames and alignment[end_frame + 1] == alignment[start_frame]:
                end_frame += 1
            phoneme = PHONEMES[int(alignment[start_frame])]
            start_sample = start_frame * hop
            end_sample = min(n_samples, (end_frame + 1) * hop + (frame_length - hop))
            duration = max((end_sample - start_sample) / sample_rate, 0.02)
            rendered = synthesizer.phoneme_exemplar(phoneme, duration=duration,
                                                    speaker=speaker)
            span = end_sample - start_sample
            if rendered.shape[0] < span:
                rendered = np.pad(rendered, (0, span - rendered.shape[0]))
            burst = rendered[:span]
            peak = np.max(np.abs(burst))
            burst = burst / peak if peak > 0 else burst
            variants = [self._sparsify(burst, rng)
                        for _ in range(self.config.n_sparse_variants)]
            segments.append({
                "phoneme": phoneme,
                "start": start_sample,
                "end": end_sample,
                "variants": variants,
            })
            start_frame = end_frame + 1
        return segments

    def _sparsify(self, burst: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Keep only a random sparse subset of the burst's spectral content."""
        if burst.size == 0:
            return burst
        spectrum = np.fft.rfft(burst)
        magnitudes = np.abs(spectrum)
        keep = max(1, int(self.config.sparse_keep_fraction * magnitudes.size))
        # Prefer the strong components but choose a random subset of them so
        # different variants emphasise different spectral detail.
        strongest = np.argsort(magnitudes)[-3 * keep:]
        chosen = rng.choice(strongest, size=min(keep, strongest.size), replace=False)
        mask = np.zeros_like(magnitudes)
        mask[chosen] = 1.0
        sparse = np.fft.irfft(spectrum * mask, n=burst.size)
        peak = np.max(np.abs(sparse))
        return sparse / peak if peak > 0 else sparse

    def _apply_genome(self, samples: np.ndarray, genome: np.ndarray,
                      segments: list[dict]) -> np.ndarray:
        """Render a genome (inject, suppress, variant per segment) as audio."""
        perturbed = samples.copy()
        for (inject, suppress, variant), segment in zip(genome, segments):
            start, end = segment["start"], segment["end"]
            if end <= start:
                continue
            variants = segment["variants"]
            burst = variants[int(variant) % len(variants)]
            host_part = samples[start:end]
            perturbed[start:end] = ((1.0 - suppress) * host_part
                                    + inject * burst[: end - start])
        return np.clip(perturbed, -1.0, 1.0)

    # ------------------------------------------------------------------ run
    def run(self, host: Waveform, target_text: str) -> AttackResult:
        """Craft an AE from ``host`` targeting the (short) ``target_text``."""
        cfg = self.config
        target_text = normalize_text(target_text)
        if len(tokenize(target_text)) > cfg.max_target_words:
            raise ValueError(
                f"the black-box attack embeds at most {cfg.max_target_words} words "
                f"(got {target_text!r})")
        asr = self.target_asr
        samples = host.samples.copy()
        extractor = asr.feature_extractor
        hop = extractor.hop_length
        frame_length = extractor.frame_length

        host_transcription = asr.transcribe(host)
        alignment = target_alignment_from_host(
            target_text, list(host_transcription.frame_labels),
            asr.word_decoder.lexicon,
            min_frames_per_phoneme=max(2, asr.min_phoneme_run))
        rng = self._rng
        segments = self._build_segments(alignment, hop, frame_length,
                                        len(samples), host.sample_rate)
        n_genes = len(segments)

        host_norm = float(np.linalg.norm(samples)) or 1.0

        def render(genome: np.ndarray) -> np.ndarray:
            return self._apply_genome(samples, genome, segments)

        def fitness(genome: np.ndarray) -> float:
            rendered = render(genome)
            distortion = float(np.linalg.norm(rendered - samples)) / host_norm
            return (self._alignment_loss(rendered, alignment)
                    + cfg.perturbation_penalty * distortion)

        # Half the initial population starts from weak perturbations, the
        # other half from aggressive ones, so the GA explores both ends.
        population = []
        for member in range(cfg.population_size):
            if member % 2 == 0:
                inject = rng.uniform(0.0, cfg.max_inject * 0.5, n_genes)
                suppress = rng.uniform(0.0, 0.5, n_genes)
            else:
                inject = rng.uniform(cfg.max_inject * 0.4, cfg.max_inject, n_genes)
                suppress = rng.uniform(0.4, cfg.max_suppress, n_genes)
            variant = rng.integers(0, cfg.n_sparse_variants, n_genes).astype(float)
            population.append(np.column_stack([inject, suppress, variant]))
        n_elite = max(1, int(cfg.elite_fraction * cfg.population_size))
        best_genome = population[0]
        best_loss = float("inf")
        transcription = ""
        generations_used = cfg.max_generations
        success = False

        for generation in range(1, cfg.max_generations + 1):
            losses = [fitness(genome) for genome in population]
            order = np.argsort(losses)
            population = [population[i] for i in order]
            if losses[order[0]] < best_loss:
                best_loss = losses[order[0]]
                best_genome = population[0].copy()

            if generation % cfg.check_every == 0 or generation == cfg.max_generations:
                transcription = asr.transcribe(
                    host.with_samples(render(population[0]))).text
                if transcription == target_text:
                    success = True
                    generations_used = generation
                    best_genome = population[0].copy()
                    break

            elites = population[:n_elite]
            children = list(elites)
            while len(children) < cfg.population_size:
                mother, father = rng.choice(n_elite, size=2, replace=True)
                mask = rng.random(n_genes)[:, None] < 0.5
                child = np.where(mask, elites[mother], elites[father])
                child[:, :2] = child[:, :2] + \
                    cfg.mutation_std * rng.standard_normal((n_genes, 2)) * \
                    np.array([cfg.max_inject, cfg.max_suppress])
                child[:, 0] = np.clip(child[:, 0], 0.0, cfg.max_inject)
                child[:, 1] = np.clip(child[:, 1], 0.0, cfg.max_suppress)
                # Occasionally swap a segment's sparse variant.
                variant_mask = rng.random(n_genes) < 0.15
                child[variant_mask, 2] = rng.integers(
                    0, cfg.n_sparse_variants, int(variant_mask.sum())).astype(float)
                children.append(child)
            population = children

        # Gradient-estimation refinement: coordinate-wise finite differences
        # on the continuous genes, still using only query access.
        for _ in range(cfg.gradient_estimation_generations):
            if success:
                break
            base_loss = fitness(best_genome)
            gradient = np.zeros((n_genes, 2))
            for column in range(2):
                probe = best_genome.copy()
                probe[:, column] = np.clip(
                    probe[:, column] + cfg.gradient_estimation_step, 0.0,
                    cfg.max_inject if column == 0 else cfg.max_suppress)
                gradient[:, column] = (fitness(probe) - base_loss) / \
                    cfg.gradient_estimation_step
            best_genome[:, :2] = best_genome[:, :2] - \
                cfg.gradient_estimation_step * np.sign(gradient)
            best_genome[:, 0] = np.clip(best_genome[:, 0], 0.0, cfg.max_inject)
            best_genome[:, 1] = np.clip(best_genome[:, 1], 0.0, cfg.max_suppress)
            transcription = asr.transcribe(host.with_samples(render(best_genome))).text
            if transcription == target_text:
                success = True

        if success:
            best_genome = self._shrink(best_genome, render, target_text, host, asr)
        final = render(best_genome)
        final_transcription = asr.transcribe(host.with_samples(final)).text
        return self._build_result(
            host, final, target_text, final_transcription, generations_used,
            final_loss=best_loss,
            perturbation_linf=float(np.max(np.abs(final - samples))),
        )

    def _shrink(self, genome: np.ndarray, render, target_text: str,
                host: Waveform, asr: SimulatedASR) -> np.ndarray:
        """Bisect the smallest gain scale that still fools the target.

        Only the continuous genes (inject/suppress) are scaled; the discrete
        sparse-variant gene is left untouched.
        """

        def scaled(scale: float) -> np.ndarray:
            copy = genome.copy()
            copy[:, :2] *= scale
            return copy

        low, high = 0.0, 1.0
        best_scale = 1.0
        for _ in range(self.config.shrink_steps):
            mid = (low + high) / 2.0
            if asr.transcribe(host.with_samples(render(scaled(mid)))).text == target_text:
                best_scale = mid
                high = mid
            else:
                low = mid
        return scaled(best_scale)
