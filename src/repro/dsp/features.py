"""Feature extractor front ends used by the ASR simulators.

Each ASR simulator owns a :class:`FeatureExtractor`.  The three concrete
front ends (MFCC, log-mel, LPC envelope) differ in frame geometry and
feature space, which is one of the diversity axes the MVP-inspired detector
relies on: a perturbation crafted in one feature space does not line up with
another system's analysis frames or filterbanks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.dsp.dct import dct_matrix
from repro.dsp.framing import frame_signal
from repro.dsp.lpc import lpc_cepstra, lpc_spectrum_features
from repro.dsp.mel import mel_filterbank
from repro.dsp.mfcc import MfccConfig, MfccExtractor
from repro.dsp.windows import hamming_window, hann_window

_EPS = 1e-8


class FeatureExtractor(ABC):
    """Turns a waveform into a ``(n_frames, feature_dim)`` matrix."""

    #: samples per analysis frame
    frame_length: int
    #: samples between frame starts
    hop_length: int

    @property
    @abstractmethod
    def feature_dim(self) -> int:
        """Dimensionality of one frame's feature vector."""

    @abstractmethod
    def transform(self, samples: np.ndarray) -> np.ndarray:
        """Feature matrix of a waveform."""

    def frames(self, samples: np.ndarray) -> np.ndarray:
        """Analysis frames of a waveform (shared framing helper)."""
        return frame_signal(samples, self.frame_length, self.hop_length)


class MfccFeatureExtractor(FeatureExtractor):
    """MFCC front end (DeepSpeech-style)."""

    def __init__(self, config: MfccConfig | None = None):
        self._mfcc = MfccExtractor(config)
        self.frame_length = self._mfcc.config.frame_length
        self.hop_length = self._mfcc.config.hop_length

    @property
    def config(self) -> MfccConfig:
        return self._mfcc.config

    @property
    def mfcc_extractor(self) -> MfccExtractor:
        """Underlying extractor (exposed for the white-box attack tape)."""
        return self._mfcc

    @property
    def feature_dim(self) -> int:
        return self._mfcc.feature_dim

    def transform(self, samples: np.ndarray) -> np.ndarray:
        return self._mfcc.transform(samples)

    def transform_frames(self, frames: np.ndarray) -> np.ndarray:
        """MFCCs of pre-framed samples."""
        return self._mfcc.transform_frames(frames)


class LogMelFeatureExtractor(FeatureExtractor):
    """Log-mel / mel-cepstrum front end (Google-Cloud-Speech-style).

    With ``n_ceps`` unset the extractor returns per-frame-normalised log-mel
    energies.  With ``n_ceps`` set it additionally applies a DCT, yielding a
    mel-cepstrum whose filterbank size, window function and frame geometry
    differ from the DeepSpeech MFCC configuration — a deliberately distinct
    but equally robust front end.
    """

    def __init__(self, sample_rate: int = 16_000, frame_length: int = 512,
                 hop_length: int = 256, n_fft: int = 512, n_mels: int = 32,
                 f_min: float = 40.0, f_max: float | None = None,
                 per_frame_normalization: bool = True,
                 n_ceps: int | None = None):
        if n_fft < frame_length:
            raise ValueError("n_fft must be at least frame_length")
        if n_ceps is not None and n_ceps > n_mels:
            raise ValueError("n_ceps cannot exceed n_mels")
        self.sample_rate = sample_rate
        self.frame_length = frame_length
        self.hop_length = hop_length
        self.n_fft = n_fft
        self.n_mels = n_mels
        self.n_ceps = n_ceps
        self.per_frame_normalization = per_frame_normalization
        self._window = hann_window(frame_length)
        self._filterbank = mel_filterbank(n_mels, n_fft, sample_rate, f_min, f_max)
        self._dct = dct_matrix(n_ceps, n_mels) if n_ceps else None

    @property
    def feature_dim(self) -> int:
        return self.n_ceps if self.n_ceps else self.n_mels

    def transform(self, samples: np.ndarray) -> np.ndarray:
        frames = self.frames(samples)
        if frames.shape[0] == 0:
            return np.zeros((0, self.feature_dim))
        windowed = frames * self._window
        spectrum = np.fft.rfft(windowed, n=self.n_fft, axis=-1)
        power = spectrum.real ** 2 + spectrum.imag ** 2
        mel = power @ self._filterbank.T
        logmel = np.log(mel + _EPS)
        if self.per_frame_normalization:
            # Removing the per-frame mean discards overall gain and keeps
            # spectral shape, mimicking the cepstral-mean normalisation real
            # recognisers apply.
            logmel = logmel - logmel.mean(axis=1, keepdims=True)
        if self._dct is not None:
            return logmel @ self._dct.T
        return logmel


class LpcFeatureExtractor(FeatureExtractor):
    """LPC-based front end (Amazon-Transcribe-style).

    Two feature styles are supported: ``"cepstrum"`` (LPC cepstral
    coefficients, the classic LPCC features) and ``"envelope"`` (the log
    spectral envelope sampled at ``n_bands`` frequencies).
    """

    def __init__(self, sample_rate: int = 16_000, frame_length: int = 480,
                 hop_length: int = 240, order: int = 16, n_bands: int = 20,
                 style: str = "cepstrum"):
        if style not in {"cepstrum", "envelope"}:
            raise ValueError("style must be 'cepstrum' or 'envelope'")
        self.sample_rate = sample_rate
        self.frame_length = frame_length
        self.hop_length = hop_length
        self.order = order
        self.n_bands = n_bands
        self.style = style
        self._window = hamming_window(frame_length)

    @property
    def feature_dim(self) -> int:
        # Cepstral features carry an extra log-energy column.
        return self.n_bands if self.style == "envelope" else self.order + 1

    def transform(self, samples: np.ndarray) -> np.ndarray:
        frames = self.frames(samples)
        if frames.shape[0] == 0:
            return np.zeros((0, self.feature_dim))
        windowed = frames * self._window
        if self.style == "envelope":
            return lpc_spectrum_features(windowed, self.order, self.n_bands)
        return lpc_cepstra(windowed, self.order)
