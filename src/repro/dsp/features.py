"""Feature extractor front ends used by the ASR simulators.

Each ASR simulator owns a :class:`FeatureExtractor`.  The three concrete
front ends (MFCC, log-mel, LPC envelope) differ in frame geometry and
feature space, which is one of the diversity axes the MVP-inspired detector
relies on: a perturbation crafted in one feature space does not line up with
another system's analysis frames or filterbanks.

Every front end computes in float64 end-to-end (inputs are cast on entry,
all constants and intermediates are float64), exposes a ``cache_tag``
naming its exact configuration (the content-hash key prefix used by
:class:`~repro.dsp.engine.FeatureEngine`), and offers ``transform_batch``
— a whole-batch path that stacks the analysis frames of many clips,
runs the row-independent stages (windowing, rfft, the Levinson-Durbin
recursion) once over the stack, and applies the BLAS matmul stages per
clip segment so the result is bit-identical (``==``, not approx) to
per-clip :meth:`FeatureExtractor.transform` calls.  The parity is pinned
by ``tests/test_dsp_vectorized.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.dsp.dct import dct_matrix
from repro.dsp.framing import frame_signal
from repro.dsp.lpc import (
    lpc_cepstra,
    lpc_coefficients_batch,
    lpc_envelope_features,
    lpc_spectrum_features,
)
from repro.dsp.mel import mel_filterbank
from repro.dsp.mfcc import MfccConfig, MfccExtractor
from repro.dsp.windows import hamming_window, hann_window

_EPS = 1e-8


class FeatureExtractor(ABC):
    """Turns a waveform into a ``(n_frames, feature_dim)`` matrix."""

    #: samples per analysis frame
    frame_length: int
    #: samples between frame starts
    hop_length: int

    @property
    @abstractmethod
    def feature_dim(self) -> int:
        """Dimensionality of one frame's feature vector."""

    @abstractmethod
    def transform(self, samples: np.ndarray) -> np.ndarray:
        """Feature matrix of a waveform."""

    @property
    def cache_tag(self) -> str | None:
        """Configuration tag naming this front end for feature caching.

        Two extractors with equal tags must produce bit-identical
        features for the same samples.  ``None`` (the base default, for
        subclasses that do not declare a tag) disables caching for the
        extractor rather than risking a collision.
        """
        return None

    def frames(self, samples: np.ndarray) -> np.ndarray:
        """Analysis frames of a waveform (shared framing helper)."""
        return frame_signal(samples, self.frame_length, self.hop_length)

    def transform_batch(self, batch: list[np.ndarray]) -> list[np.ndarray]:
        """Feature matrices of many waveforms.

        The base implementation is the per-clip reference loop; concrete
        front ends override it with a stacked vectorized path that is
        bit-identical to this one.
        """
        return [self.transform(samples) for samples in batch]

    def _split_segments(self, batch: list[np.ndarray]):
        """Stack per-clip analysis frames for the batched front-end paths.

        Returns ``(stacked_frames, counts)`` where ``stacked_frames`` is
        the row-concatenation of every clip's frames and ``counts`` the
        per-clip frame counts (split points for the per-segment stages).
        """
        frames_list = [self.frames(samples) for samples in batch]
        counts = [frames.shape[0] for frames in frames_list]
        stacked = np.concatenate(frames_list, axis=0) if frames_list else \
            np.zeros((0, self.frame_length))
        return stacked, counts


class MfccFeatureExtractor(FeatureExtractor):
    """MFCC front end (DeepSpeech-style)."""

    def __init__(self, config: MfccConfig | None = None):
        self._mfcc = MfccExtractor(config)
        self.frame_length = self._mfcc.config.frame_length
        self.hop_length = self._mfcc.config.hop_length

    @property
    def config(self) -> MfccConfig:
        return self._mfcc.config

    @property
    def mfcc_extractor(self) -> MfccExtractor:
        """Underlying extractor (exposed for the white-box attack tape)."""
        return self._mfcc

    @property
    def feature_dim(self) -> int:
        return self._mfcc.feature_dim

    @property
    def cache_tag(self) -> str:
        cfg = self.config
        return (f"mfcc:sr{cfg.sample_rate}:fl{cfg.frame_length}"
                f":hop{cfg.hop_length}:fft{cfg.n_fft}:mel{cfg.n_mels}"
                f":c{cfg.n_mfcc}:fmin{cfg.f_min}:fmax{cfg.f_max}")

    def transform(self, samples: np.ndarray) -> np.ndarray:
        return self._mfcc.transform(samples)

    def transform_frames(self, frames: np.ndarray) -> np.ndarray:
        """MFCCs of pre-framed samples."""
        return self._mfcc.transform_frames(frames)

    def transform_batch(self, batch: list[np.ndarray]) -> list[np.ndarray]:
        stacked, counts = self._split_segments(batch)
        power = self._mfcc.power_spectrum(stacked)   # one rfft for the batch
        out, start = [], 0
        for count in counts:
            out.append(self._mfcc.features_from_power(power[start:start + count]))
            start += count
        return out


class LogMelFeatureExtractor(FeatureExtractor):
    """Log-mel / mel-cepstrum front end (Google-Cloud-Speech-style).

    With ``n_ceps`` unset the extractor returns per-frame-normalised log-mel
    energies.  With ``n_ceps`` set it additionally applies a DCT, yielding a
    mel-cepstrum whose filterbank size, window function and frame geometry
    differ from the DeepSpeech MFCC configuration — a deliberately distinct
    but equally robust front end.
    """

    def __init__(self, sample_rate: int = 16_000, frame_length: int = 512,
                 hop_length: int = 256, n_fft: int = 512, n_mels: int = 32,
                 f_min: float = 40.0, f_max: float | None = None,
                 per_frame_normalization: bool = True,
                 n_ceps: int | None = None):
        if n_fft < frame_length:
            raise ValueError("n_fft must be at least frame_length")
        if n_ceps is not None and n_ceps > n_mels:
            raise ValueError("n_ceps cannot exceed n_mels")
        self.sample_rate = sample_rate
        self.frame_length = frame_length
        self.hop_length = hop_length
        self.n_fft = n_fft
        self.n_mels = n_mels
        self.n_ceps = n_ceps
        self.f_min = f_min
        self.f_max = f_max
        self.per_frame_normalization = per_frame_normalization
        self._window = hann_window(frame_length)
        self._filterbank = mel_filterbank(n_mels, n_fft, sample_rate, f_min, f_max)
        self._dct = dct_matrix(n_ceps, n_mels) if n_ceps else None

    @property
    def feature_dim(self) -> int:
        return self.n_ceps if self.n_ceps else self.n_mels

    @property
    def cache_tag(self) -> str:
        return (f"logmel:sr{self.sample_rate}:fl{self.frame_length}"
                f":hop{self.hop_length}:fft{self.n_fft}:mel{self.n_mels}"
                f":ceps{self.n_ceps}:fmin{self.f_min}:fmax{self.f_max}"
                f":norm{int(self.per_frame_normalization)}")

    def _power_spectrum(self, frames: np.ndarray) -> np.ndarray:
        # Row-independent stages: safe to run on a cross-clip stack.
        windowed = frames * self._window
        spectrum = np.fft.rfft(windowed, n=self.n_fft, axis=-1)
        return spectrum.real ** 2 + spectrum.imag ** 2

    def _features_from_power(self, power: np.ndarray) -> np.ndarray:
        # Matmul stages: batched callers apply this per clip segment.
        mel = power @ self._filterbank.T
        logmel = np.log(mel + _EPS)
        if self.per_frame_normalization:
            # Removing the per-frame mean discards overall gain and keeps
            # spectral shape, mimicking the cepstral-mean normalisation real
            # recognisers apply.
            logmel = logmel - logmel.mean(axis=1, keepdims=True)
        if self._dct is not None:
            return logmel @ self._dct.T
        return logmel

    def transform_frames(self, frames: np.ndarray) -> np.ndarray:
        """Log-mel / mel-cepstrum features of pre-framed samples."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError("transform_frames expects (n_frames, frame_length)")
        if frames.shape[0] == 0:
            return np.zeros((0, self.feature_dim))
        return self._features_from_power(self._power_spectrum(frames))

    def transform(self, samples: np.ndarray) -> np.ndarray:
        return self.transform_frames(self.frames(samples))

    def transform_batch(self, batch: list[np.ndarray]) -> list[np.ndarray]:
        stacked, counts = self._split_segments(batch)
        power = self._power_spectrum(stacked)
        out, start = [], 0
        for count in counts:
            if count == 0:
                out.append(np.zeros((0, self.feature_dim)))
            else:
                out.append(self._features_from_power(power[start:start + count]))
            start += count
        return out


class LpcFeatureExtractor(FeatureExtractor):
    """LPC-based front end (Amazon-Transcribe-style).

    Two feature styles are supported: ``"cepstrum"`` (LPC cepstral
    coefficients, the classic LPCC features) and ``"envelope"`` (the log
    spectral envelope sampled at ``n_bands`` frequencies).
    """

    def __init__(self, sample_rate: int = 16_000, frame_length: int = 480,
                 hop_length: int = 240, order: int = 16, n_bands: int = 20,
                 style: str = "cepstrum"):
        if style not in {"cepstrum", "envelope"}:
            raise ValueError("style must be 'cepstrum' or 'envelope'")
        self.sample_rate = sample_rate
        self.frame_length = frame_length
        self.hop_length = hop_length
        self.order = order
        self.n_bands = n_bands
        self.style = style
        self._window = hamming_window(frame_length)

    @property
    def feature_dim(self) -> int:
        # Cepstral features carry an extra log-energy column.
        return self.n_bands if self.style == "envelope" else self.order + 1

    @property
    def cache_tag(self) -> str:
        return (f"lpc:{self.style}:sr{self.sample_rate}"
                f":fl{self.frame_length}:hop{self.hop_length}"
                f":ord{self.order}:bands{self.n_bands}")

    def transform_frames(self, frames: np.ndarray) -> np.ndarray:
        """LPC cepstrum / envelope features of pre-framed samples."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError("transform_frames expects (n_frames, frame_length)")
        if frames.shape[0] == 0:
            return np.zeros((0, self.feature_dim))
        windowed = frames * self._window
        if self.style == "envelope":
            return lpc_spectrum_features(windowed, self.order, self.n_bands)
        return lpc_cepstra(windowed, self.order)

    def transform(self, samples: np.ndarray) -> np.ndarray:
        return self.transform_frames(self.frames(samples))

    def transform_batch(self, batch: list[np.ndarray]) -> list[np.ndarray]:
        stacked, counts = self._split_segments(batch)
        windowed = stacked * self._window
        if self.style == "cepstrum":
            # The whole LPCC chain (autocorrelation, Levinson-Durbin,
            # cepstral recursion, log energy) is row-independent: one
            # pass over the stack, then split.
            cepstra = lpc_cepstra(windowed, self.order) if len(windowed) else \
                np.zeros((0, self.feature_dim))
            out, start = [], 0
            for count in counts:
                out.append(cepstra[start:start + count]
                           if count else np.zeros((0, self.feature_dim)))
                start += count
            return out
        coeffs = lpc_coefficients_batch(windowed, self.order) if len(windowed) \
            else np.zeros((0, self.order))
        out, start = [], 0
        for count in counts:
            if count == 0:
                out.append(np.zeros((0, self.feature_dim)))
            else:
                out.append(lpc_envelope_features(coeffs[start:start + count],
                                                 self.n_bands))
            start += count
        return out
