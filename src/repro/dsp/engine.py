"""The front-end feature engine: compute once, share across the suite.

Every suite member starts recognition with the same kind of work — frame
the clip, window it, run the front end — and members with identical
front-end configurations (transform-ensemble auxiliaries hear through
the *target's* front end; ``KAL``/``KAL-fs<N>`` variants share one MFCC
geometry) duplicate that work clip after clip.  The
:class:`FeatureEngine` makes front-end features a cached, batched
resource: it computes each (clip, front-end configuration) pair at most
once, shares the matrix across suite members through a content-hash
:class:`~repro.dsp.feature_cache.FeatureCache`, and pre-warms whole
pipeline batches through the vectorized
:meth:`~repro.dsp.features.FeatureExtractor.transform_batch` path.

Like the similarity engine, the compute path is pluggable: the ``"fast"``
backend stacks a batch's analysis frames and vectorizes the
row-independent stages across the whole batch, the ``"reference"``
backend is the seed library's per-clip loop, and the two are required to
be ``==``-identical (pinned by ``tests/test_dsp_vectorized.py`` and the
golden-fixture test).  Third-party backends can be registered under new
names via :func:`register_feature_backend`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.dsp.feature_cache import FeatureCache, FeatureCacheStats
from repro.dsp.features import FeatureExtractor


class ReferenceFeatureBackend:
    """Per-clip front-end computation (the seed library's path)."""

    name = "reference"

    def features(self, extractor: FeatureExtractor, samples: np.ndarray,
                 sample_rate: int) -> np.ndarray:
        return extractor.transform(samples)

    def features_batch(self, extractor: FeatureExtractor,
                       batch: list[np.ndarray]) -> list[np.ndarray]:
        return [extractor.transform(samples) for samples in batch]


class FastFeatureBackend:
    """Batch-vectorized front-end computation.

    Single clips go through the same code as the reference (the
    vectorized kernels are already inside ``transform``); batches stack
    analysis frames across clips and run the row-independent stages
    once (see :meth:`FeatureExtractor.transform_batch`).  Results are
    bit-identical to the reference backend.
    """

    name = "fast"

    def features(self, extractor: FeatureExtractor, samples: np.ndarray,
                 sample_rate: int) -> np.ndarray:
        return extractor.transform(samples)

    def features_batch(self, extractor: FeatureExtractor,
                       batch: list[np.ndarray]) -> list[np.ndarray]:
        return extractor.transform_batch(batch)


_BACKENDS: dict[str, object] = {}


def register_feature_backend(name: str, backend) -> None:
    """Register a feature backend under ``name`` (overwrites existing)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _BACKENDS[name] = backend


def get_feature_backend(name: str):
    """Look up a registered feature backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise KeyError(f"unknown feature backend {name!r} "
                       f"(registered: {known})") from None


def feature_backend_names() -> tuple[str, ...]:
    """Names of the registered feature backends, sorted."""
    return tuple(sorted(_BACKENDS))


register_feature_backend("reference", ReferenceFeatureBackend())
register_feature_backend("fast", FastFeatureBackend())


@lru_cache(maxsize=1)
def get_shared_feature_cache() -> FeatureCache:
    """The process-wide shared :class:`FeatureCache` (created on first use)."""
    return FeatureCache(capacity=2048)


def resolve_feature_cache(cache) -> FeatureCache | None:
    """Normalise a feature-cache argument to an instance or ``None``.

    ``True``/``"shared"`` select the process-wide shared cache,
    ``False``/``None``/``"off"`` disable caching, ``"private"`` builds a
    fresh in-memory cache, a path-like string (ending in ``.npz``) an
    on-disk store, and an instance passes through — the same policy
    surface as the transcription and pair-score caches (see
    :func:`repro.caching.resolve_cache_policy`).
    """
    from repro.caching import resolve_cache_policy
    resolved = resolve_cache_policy(cache, FeatureCache,
                                    "feature-cache policy",
                                    suffixes=(".npz",))
    if resolved is True:
        return get_shared_feature_cache()
    if resolved is False:
        return None
    return resolved


class FeatureEngine:
    """Computes front-end features once per (clip, front-end configuration).

    Args:
        backend: compute backend — an instance or a registry name
            (``"fast"``, the default, or ``"reference"``).
        cache: feature cache policy — a
            :class:`~repro.dsp.feature_cache.FeatureCache` instance,
            ``True`` for the process-wide shared cache (default), or
            ``False``/``None`` to disable caching.

    Extractors whose :attr:`~repro.dsp.features.FeatureExtractor.cache_tag`
    is ``None`` (unnamed custom front ends) are computed directly and
    never cached, so a tag collision can not serve wrong features.
    """

    def __init__(self, backend="fast", cache: FeatureCache | bool | None = True):
        self.backend = (get_feature_backend(backend)
                        if isinstance(backend, str) else backend)
        self.cache = resolve_feature_cache(cache)

    @property
    def stats(self) -> FeatureCacheStats:
        """Hit/miss statistics of the underlying cache (zeros when off)."""
        if self.cache is None:
            return FeatureCacheStats()
        return self.cache.stats

    def features(self, extractor: FeatureExtractor, samples: np.ndarray,
                 sample_rate: int) -> np.ndarray:
        """Feature matrix of one clip, served from the cache when possible."""
        tag = extractor.cache_tag
        if self.cache is None or tag is None:
            return self.backend.features(extractor, samples, sample_rate)
        key = FeatureCache.key_for(tag, samples, sample_rate)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        value = self.backend.features(extractor, samples, sample_rate)
        self.cache.put(key, value)
        return value

    def prewarm(self, extractor: FeatureExtractor,
                clips: list[tuple[np.ndarray, int]]) -> int:
        """Fill the cache for a batch of ``(samples, sample_rate)`` clips.

        Missing clips are computed through the backend's *batched* path
        (one stacked front-end pass); clips already cached are skipped.
        Returns the number of clips computed.
        """
        tag = extractor.cache_tag
        if self.cache is None or tag is None:
            return 0
        missing: dict[str, np.ndarray] = {}
        for samples, sample_rate in clips:
            key = FeatureCache.key_for(tag, samples, sample_rate)
            if key not in missing and self.cache.get(key) is None:
                missing[key] = samples
        if missing:
            values = self.backend.features_batch(extractor,
                                                 list(missing.values()))
            for key, value in zip(missing, values):
                self.cache.put(key, value)
        return len(missing)
