"""Analysis windows."""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=64)
def hamming_window(length: int) -> np.ndarray:
    """Hamming window of ``length`` samples (cached)."""
    if length <= 0:
        raise ValueError("window length must be positive")
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * n / (length - 1))


@lru_cache(maxsize=64)
def hann_window(length: int) -> np.ndarray:
    """Hann window of ``length`` samples (cached)."""
    if length <= 0:
        raise ValueError("window length must be positive")
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * n / (length - 1))
