"""Discrete cosine transform matrix (type II, orthonormal)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=32)
def dct_matrix(n_output: int, n_input: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of shape ``(n_output, n_input)``.

    Applying this matrix to a log-mel energy vector yields MFCCs.
    """
    if n_output <= 0 or n_input <= 0:
        raise ValueError("dct_matrix dimensions must be positive")
    if n_output > n_input:
        raise ValueError("cannot request more DCT coefficients than inputs")
    k = np.arange(n_output)[:, None]
    n = np.arange(n_input)[None, :]
    matrix = np.cos(np.pi * k * (2 * n + 1) / (2 * n_input))
    matrix *= np.sqrt(2.0 / n_input)
    matrix[0] *= 1.0 / np.sqrt(2.0)
    return matrix
