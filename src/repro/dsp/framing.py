"""Frame segmentation of waveforms.

Every ASR front end starts by slicing the waveform into short overlapping
frames ("slide window segmentation" in the paper's Figure 2).  Different ASR
simulators use different frame lengths and hops, which is one of the axes of
diversity the detection approach relies on.
"""

from __future__ import annotations

import numpy as np


def num_frames(n_samples: int, frame_length: int, hop_length: int) -> int:
    """Number of full frames obtainable from ``n_samples`` samples."""
    if frame_length <= 0 or hop_length <= 0:
        raise ValueError("frame_length and hop_length must be positive")
    if n_samples < frame_length:
        return 0
    return 1 + (n_samples - frame_length) // hop_length


def frame_signal(samples: np.ndarray, frame_length: int, hop_length: int,
                 pad: bool = True) -> np.ndarray:
    """Slice ``samples`` into overlapping frames.

    Args:
        samples: 1-D float array.
        frame_length: samples per frame.
        hop_length: samples between consecutive frame starts.
        pad: if True, zero-pad the signal so at least one frame exists and
            the tail of the signal is covered.

    Returns:
        Array of shape ``(n_frames, frame_length)``.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise ValueError("frame_signal expects a 1-D signal")
    n = samples.shape[0]
    if pad:
        if n < frame_length:
            target = frame_length
        else:
            remainder = (n - frame_length) % hop_length
            target = n if remainder == 0 else n + (hop_length - remainder)
        if target > n:
            samples = np.concatenate([samples, np.zeros(target - n)])
            n = target
    count = num_frames(n, frame_length, hop_length)
    if count == 0:
        return np.zeros((0, frame_length))
    indices = (np.arange(frame_length)[None, :]
               + hop_length * np.arange(count)[:, None])
    return samples[indices]


def overlap_add(frames: np.ndarray, hop_length: int,
                n_samples: int | None = None) -> np.ndarray:
    """Reassemble frames into a signal by overlap-add.

    Used by the white-box attack to map per-frame gradients back onto the
    waveform.  Overlapping regions are summed (not averaged): the caller is
    expected to normalise if needed.

    Vectorized scatter-add; bit-identical to :func:`overlap_add_reference`
    (``np.add.at`` accumulates repeated indices in row-major order, which
    is exactly the reference's frame-by-frame order).
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 2:
        raise ValueError("overlap_add expects a 2-D frame matrix")
    count, frame_length = frames.shape
    total = frame_length + hop_length * max(0, count - 1) if count else 0
    if n_samples is None:
        n_samples = total
    signal = np.zeros(max(n_samples, total))
    if count:
        indices = (np.arange(frame_length)[None, :]
                   + hop_length * np.arange(count)[:, None])
        np.add.at(signal, indices.ravel(), frames.ravel())
    return signal[:n_samples]


def overlap_add_reference(frames: np.ndarray, hop_length: int,
                          n_samples: int | None = None) -> np.ndarray:
    """Per-frame Python-loop overlap-add (the seed library's path).

    Kept as the parity reference for :func:`overlap_add`.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 2:
        raise ValueError("overlap_add expects a 2-D frame matrix")
    count, frame_length = frames.shape
    total = frame_length + hop_length * max(0, count - 1) if count else 0
    if n_samples is None:
        n_samples = total
    signal = np.zeros(max(n_samples, total))
    for i in range(count):
        start = i * hop_length
        signal[start:start + frame_length] += frames[i]
    return signal[:n_samples]
