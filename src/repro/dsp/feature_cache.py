"""Content-addressed caching of front-end feature matrices.

Computing a front end is pure — the feature matrix is a function of the
raw samples, the sample rate and the extractor configuration alone — yet
the same (clip, configuration) pairs recur constantly: overlapping
streaming windows re-hear the same audio, transform-ensemble suites run
several auxiliaries with the *target's* front end, repeated experiment
tables re-read the same dataset bundle, and any two suite members with
equal front-end configurations duplicate the work outright.  The
transcription layer caches by audio content hash
(:class:`~repro.pipeline.cache.TranscriptionCache`), the scoring layer by
text content (:class:`~repro.similarity.score_cache.PairScoreCache`);
this module gives the feature layer the same treatment.

The cache key is the extractor's configuration tag
(:attr:`~repro.dsp.features.FeatureExtractor.cache_tag`) plus a content
hash of the raw samples and the sample rate, so two clips with identical
audio share one entry regardless of where the audio came from.  Storage
is a thread-safe in-memory LRU, optionally backed on disk, mirroring
the other two caches' API and statistics.  Cached matrices are stored
read-only so a consumer cannot corrupt entries that later lookups will
share.

Two disk formats, chosen by the path:

* an ``.npz`` path — a snapshot file, written atomically (temp file +
  ``os.replace``) by an explicit :meth:`save`;
* any other path — a content-addressed *directory* of one atomically
  written ``.npz`` file per entry
  (:class:`repro.store.ContentDirectoryStore`), safe for any number of
  concurrent processes: misses fall through to the directory, puts
  write through to it.  This is the store the multi-worker serving
  layer points its workers at.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


def samples_fingerprint(samples: np.ndarray, sample_rate: int) -> str:
    """Content hash identifying one clip's audio (samples + rate)."""
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(samples).tobytes())
    digest.update(str(int(sample_rate)).encode("ascii"))
    return digest.hexdigest()


@dataclass
class FeatureCacheStats:
    """Hit/miss/eviction counters of one :class:`FeatureCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class FeatureCache:
    """Thread-safe LRU cache of feature matrices keyed by config + content.

    Args:
        capacity: maximum number of entries kept in memory; the least
            recently used entry is evicted first.
        path: optional on-disk store — an ``.npz`` snapshot file
            (loaded eagerly; call :meth:`save` to persist) or a
            content-addressed directory shared across processes
            (write-through puts, lazy per-key reads).
    """

    def __init__(self, capacity: int = 2048, path: str | None = None):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.path = path
        self.stats = FeatureCacheStats()
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self._store = None
        if path is not None and not _is_snapshot_path(path):
            from repro.store import ContentDirectoryStore
            self._store = ContentDirectoryStore(path)
        elif path is not None and os.path.exists(path):
            self.load(path)

    @staticmethod
    def key_for(extractor_tag: str, samples: np.ndarray,
                sample_rate: int) -> str:
        """Cache key of one (front-end configuration, clip) combination.

        ``extractor_tag`` is a front-end configuration tag (see
        :attr:`~repro.dsp.features.FeatureExtractor.cache_tag`); two
        extractors with equal tags share entries by design — that is the
        cross-suite-member sharing win.
        """
        return f"{extractor_tag}:{samples_fingerprint(samples, sample_rate)}"

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> np.ndarray | None:
        """Look up ``key``, updating LRU order and hit/miss statistics.

        In directory mode a memory miss falls through to the on-disk
        store, so entries other processes wrote count as hits here.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return value
        if self._store is not None:
            loaded = self._store.read(key)
            if loaded is not None:
                loaded.flags.writeable = False
                with self._lock:
                    self._entries[key] = loaded
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
                return loaded
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, features: np.ndarray) -> None:
        """Store ``features`` under ``key``, evicting the LRU entry if full.

        The matrix is copied and frozen (non-writeable), so later
        mutation by the caller cannot corrupt the shared entry.  In
        directory mode the entry is also written through to the
        content-addressed store (atomically, per entry).
        """
        value = np.array(features, dtype=np.float64, copy=True)
        value.flags.writeable = False
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        if self._store is not None:
            self._store.write(key, value)

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = FeatureCacheStats()

    # ------------------------------------------------------------ disk store
    def save(self, path: str | None = None) -> str:
        """Write the cache to ``path`` (default: the constructor path).

        ``.npz`` snapshots are written atomically (temp file +
        ``os.replace``); a directory path writes every in-memory entry
        through the content-addressed store (each entry atomic).
        """
        import io

        from repro.store import ContentDirectoryStore, atomic_write_bytes

        path = path or self.path
        if path is None:
            raise ValueError("no path given and cache has no backing file")
        with self._lock:
            entries = list(self._entries.items())
        if not _is_snapshot_path(path):
            store = (self._store
                     if self._store is not None and path == self.path
                     else ContentDirectoryStore(path))
            for key, value in entries:
                store.write(key, value)
            return path
        buffer = io.BytesIO()
        keys = [key for key, _ in entries]
        arrays = {f"arr_{i}": value for i, (_, value) in enumerate(entries)}
        np.savez(buffer, __keys__=np.array(keys, dtype=str), **arrays)
        atomic_write_bytes(path, buffer.getvalue())
        return path

    def load(self, path: str | None = None) -> int:
        """Merge entries from ``path`` into the cache; returns the count."""
        path = path or self.path
        if path is None:
            raise ValueError("no path given and cache has no backing file")
        if not _is_snapshot_path(path):
            from repro.store import ContentDirectoryStore
            store = (self._store
                     if self._store is not None and path == self.path
                     else ContentDirectoryStore(path))
            entries = store.items()
        else:
            with np.load(path, allow_pickle=False) as payload:
                keys = [str(key) for key in payload["__keys__"]]
                entries = [(key, payload[f"arr_{i}"])
                           for i, key in enumerate(keys)]
        with self._lock:
            for key, value in entries:
                value = np.asarray(value, dtype=np.float64)
                value.flags.writeable = False
                self._entries[key] = value
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return len(entries)


def _is_snapshot_path(path: str) -> bool:
    """Whether a cache path is an ``.npz`` snapshot (vs a directory store)."""
    return os.fspath(path).endswith(".npz")
