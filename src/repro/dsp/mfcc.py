"""MFCC extraction with an analytic gradient back to the waveform.

The white-box attack of Carlini & Wagner works by including the MFCC
computation in the gradient chain of the optimisation ("adding the MFCC
reconstruction layer into the backpropagation", Section II-B of the paper).
:class:`MfccGradientTape` provides exactly that: it records the forward MFCC
computation for a batch of frames and can push a gradient with respect to
the MFCC matrix back to a gradient with respect to the raw samples.

Forward pipeline per frame ``x`` of length ``frame_length``::

    windowed = window * x
    spectrum = rfft(windowed, n_fft)
    power    = |spectrum|^2
    mel      = filterbank @ power
    logmel   = log(mel + eps)
    mfcc     = dct @ logmel
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.dct import dct_matrix
from repro.dsp.framing import frame_signal
from repro.dsp.mel import mel_filterbank
from repro.dsp.windows import hamming_window

_EPS = 1e-8


@dataclass(frozen=True)
class MfccConfig:
    """Configuration of an MFCC front end."""

    sample_rate: int = 16_000
    frame_length: int = 400
    hop_length: int = 160
    n_fft: int = 512
    n_mels: int = 26
    n_mfcc: int = 13
    f_min: float = 20.0
    f_max: float | None = None

    def __post_init__(self) -> None:
        if self.n_fft < self.frame_length:
            raise ValueError("n_fft must be at least frame_length")
        if self.n_mfcc > self.n_mels:
            raise ValueError("n_mfcc cannot exceed n_mels")


class MfccExtractor:
    """Computes MFCC feature matrices for waveforms."""

    def __init__(self, config: MfccConfig | None = None):
        self.config = config or MfccConfig()
        cfg = self.config
        self._window = hamming_window(cfg.frame_length)
        self._filterbank = mel_filterbank(cfg.n_mels, cfg.n_fft, cfg.sample_rate,
                                          cfg.f_min, cfg.f_max)
        self._dct = dct_matrix(cfg.n_mfcc, cfg.n_mels)

    @property
    def feature_dim(self) -> int:
        """Dimensionality of one feature vector."""
        return self.config.n_mfcc

    # ---------------------------------------------------------------- forward
    def frames(self, samples: np.ndarray) -> np.ndarray:
        """Slice a waveform into analysis frames."""
        return frame_signal(samples, self.config.frame_length, self.config.hop_length)

    def power_spectrum(self, frames: np.ndarray) -> np.ndarray:
        """Windowed rfft power spectrum, shape ``(n_frames, n_fft // 2 + 1)``.

        Row-independent (every output row depends only on its input row),
        so frames from many clips can be stacked, transformed together and
        split — bit-identically to per-clip calls.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError("transform_frames expects (n_frames, frame_length)")
        windowed = frames * self._window
        spectrum = np.fft.rfft(windowed, n=self.config.n_fft, axis=-1)
        return spectrum.real ** 2 + spectrum.imag ** 2

    def features_from_power(self, power: np.ndarray) -> np.ndarray:
        """Mel projection + log + DCT of a power spectrum.

        Contains the BLAS matmul stages, whose results depend on the row
        count of the operand — batched callers must apply this per clip
        segment (same rows as a standalone call) to stay bit-identical.
        """
        mel = power @ self._filterbank.T
        logmel = np.log(mel + _EPS)
        return logmel @ self._dct.T

    def transform_frames(self, frames: np.ndarray) -> np.ndarray:
        """MFCCs of pre-framed samples, shape ``(n_frames, n_mfcc)``."""
        return self.features_from_power(self.power_spectrum(frames))

    def transform(self, samples: np.ndarray) -> np.ndarray:
        """MFCC matrix of a waveform, shape ``(n_frames, n_mfcc)``."""
        return self.transform_frames(self.frames(samples))

    # --------------------------------------------------------------- gradient
    def forward_with_tape(self, frames: np.ndarray) -> "MfccGradientTape":
        """Run the forward pass and keep intermediates for backprop."""
        frames = np.asarray(frames, dtype=np.float64)
        windowed = frames * self._window
        spectrum = np.fft.rfft(windowed, n=self.config.n_fft, axis=-1)
        power = spectrum.real ** 2 + spectrum.imag ** 2
        mel = power @ self._filterbank.T
        logmel = np.log(mel + _EPS)
        mfcc = logmel @ self._dct.T
        return MfccGradientTape(extractor=self, frames=frames, spectrum=spectrum,
                                mel=mel, mfcc=mfcc)


@dataclass
class MfccGradientTape:
    """Recorded forward pass of :class:`MfccExtractor` for a frame batch."""

    extractor: MfccExtractor
    frames: np.ndarray
    spectrum: np.ndarray
    mel: np.ndarray
    mfcc: np.ndarray

    def backward(self, grad_mfcc: np.ndarray) -> np.ndarray:
        """Gradient of a scalar loss w.r.t. the frame samples.

        Args:
            grad_mfcc: gradient of the loss with respect to ``self.mfcc``
                (same shape as the MFCC matrix).

        Returns:
            Array with the same shape as ``self.frames`` containing
            ``dLoss/dframes``.
        """
        grad_mfcc = np.asarray(grad_mfcc, dtype=np.float64)
        if grad_mfcc.shape != self.mfcc.shape:
            raise ValueError("grad_mfcc shape mismatch")
        ext = self.extractor
        cfg = ext.config
        # mfcc = logmel @ dct.T        => d logmel = grad @ dct
        grad_logmel = grad_mfcc @ ext._dct
        # logmel = log(mel + eps)      => d mel = d logmel / (mel + eps)
        grad_mel = grad_logmel / (self.mel + _EPS)
        # mel = power @ filterbank.T   => d power = d mel @ filterbank
        grad_power = grad_mel @ ext._filterbank
        # power_k = Re(X_k)^2 + Im(X_k)^2 with X = rfft(window * x, n_fft)
        # dLoss/dx_n = 2 * w_n * Re( sum_k g_k conj(X_k) e^{-2 pi i k n / N} )
        g = grad_power * np.conj(self.spectrum)
        n_fft = cfg.n_fft
        full = np.zeros((g.shape[0], n_fft), dtype=np.complex128)
        full[:, : g.shape[1]] = g
        time_domain = np.fft.fft(full, axis=-1)
        grad_windowed = 2.0 * np.real(time_domain[:, : cfg.frame_length])
        return grad_windowed * ext._window
