"""Digital signal processing substrate.

Implements the feature-extraction stage of the ASR pipeline (Section II of
the paper): framing, windowing, spectrograms, mel filterbanks, MFCCs and
LPC-style features.  The MFCC pipeline additionally exposes an analytic
gradient with respect to the input samples, which is what makes the
white-box (Carlini-style) attack possible — the original attack back-
propagates through the MFCC computation into the waveform.
"""

from repro.dsp.framing import (
    frame_signal,
    num_frames,
    overlap_add,
    overlap_add_reference,
)
from repro.dsp.windows import hamming_window, hann_window
from repro.dsp.mel import (
    hz_to_mel,
    mel_to_hz,
    mel_filterbank,
    mel_filterbank_reference,
)
from repro.dsp.dct import dct_matrix
from repro.dsp.mfcc import MfccConfig, MfccExtractor, MfccGradientTape
from repro.dsp.lpc import (
    lpc_cepstra,
    lpc_coefficients,
    lpc_envelope_features,
    lpc_spectrum_features,
)
from repro.dsp.features import (
    FeatureExtractor,
    MfccFeatureExtractor,
    LogMelFeatureExtractor,
    LpcFeatureExtractor,
)
from repro.dsp.feature_cache import (
    FeatureCache,
    FeatureCacheStats,
    samples_fingerprint,
)
from repro.dsp.engine import (
    FeatureEngine,
    feature_backend_names,
    get_feature_backend,
    get_shared_feature_cache,
    register_feature_backend,
    resolve_feature_cache,
)

__all__ = [
    "frame_signal",
    "num_frames",
    "overlap_add",
    "overlap_add_reference",
    "hamming_window",
    "hann_window",
    "hz_to_mel",
    "mel_to_hz",
    "mel_filterbank",
    "mel_filterbank_reference",
    "dct_matrix",
    "MfccConfig",
    "MfccExtractor",
    "MfccGradientTape",
    "lpc_cepstra",
    "lpc_coefficients",
    "lpc_envelope_features",
    "lpc_spectrum_features",
    "FeatureExtractor",
    "MfccFeatureExtractor",
    "LogMelFeatureExtractor",
    "LpcFeatureExtractor",
    "FeatureCache",
    "FeatureCacheStats",
    "samples_fingerprint",
    "FeatureEngine",
    "feature_backend_names",
    "get_feature_backend",
    "get_shared_feature_cache",
    "register_feature_backend",
    "resolve_feature_cache",
]
