"""Mel scale conversions and triangular mel filterbanks."""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def hz_to_mel(hz):
    """Convert frequency in Hz to mel (HTK formula)."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel):
    """Convert mel values back to Hz."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


def _band_edges(n_filters: int, n_fft: int, sample_rate: int,
                f_min: float, f_max: float | None) -> np.ndarray:
    """FFT-bin edge indices of the triangular filters, shape ``(n_filters + 2,)``."""
    if n_filters <= 0:
        raise ValueError("n_filters must be positive")
    if f_max is None:
        f_max = sample_rate / 2.0
    if not 0 <= f_min < f_max <= sample_rate / 2.0:
        raise ValueError("require 0 <= f_min < f_max <= Nyquist")
    n_bins = n_fft // 2 + 1
    mel_points = np.linspace(hz_to_mel(f_min), hz_to_mel(f_max), n_filters + 2)
    hz_points = mel_to_hz(mel_points)
    bin_points = np.floor((n_fft + 1) * hz_points / sample_rate).astype(int)
    return np.clip(bin_points, 0, n_bins - 1)


@lru_cache(maxsize=32)
def mel_filterbank(n_filters: int, n_fft: int, sample_rate: int,
                   f_min: float = 0.0, f_max: float | None = None) -> np.ndarray:
    """Triangular mel filterbank matrix of shape ``(n_filters, n_fft // 2 + 1)``.

    Vectorized construction; bit-identical to
    :func:`mel_filterbank_reference` (pinned by ``tests/test_dsp_vectorized``).

    Args:
        n_filters: number of triangular filters.
        n_fft: FFT size used for the power spectrum.
        sample_rate: sampling rate in Hz.
        f_min: lowest band edge in Hz.
        f_max: highest band edge in Hz (defaults to Nyquist).
    """
    bin_points = _band_edges(n_filters, n_fft, sample_rate, f_min, f_max)
    n_bins = n_fft // 2 + 1

    lefts = bin_points[:-2]
    centers = bin_points[1:-1]
    rights = bin_points[2:]
    # Collision fixes in the reference order: centers off lefts first,
    # then rights off the already-fixed centers.
    centers = np.where(centers == lefts,
                       np.minimum(lefts + 1, n_bins - 1), centers)
    rights = np.where(rights == centers,
                      np.minimum(centers + 1, n_bins - 1), rights)

    k = np.arange(n_bins)[None, :]
    lefts_c = lefts[:, None]
    centers_c = centers[:, None]
    rights_c = rights[:, None]
    rising = (k - lefts_c) / np.maximum(1, centers_c - lefts_c)
    falling = (rights_c - k) / np.maximum(1, rights_c - centers_c)
    bank = np.where((k >= lefts_c) & (k < centers_c), rising, 0.0)
    bank = np.where((k >= centers_c) & (k <= rights_c), falling, bank)
    bank[np.arange(n_filters), centers] = 1.0
    return bank


@lru_cache(maxsize=32)
def mel_filterbank_reference(n_filters: int, n_fft: int, sample_rate: int,
                             f_min: float = 0.0,
                             f_max: float | None = None) -> np.ndarray:
    """Per-filter scalar-loop filterbank construction (the seed library's path).

    Kept as the parity reference for :func:`mel_filterbank`; same
    signature, same matrix, bit for bit.
    """
    bin_points = _band_edges(n_filters, n_fft, sample_rate, f_min, f_max)
    n_bins = n_fft // 2 + 1

    bank = np.zeros((n_filters, n_bins))
    for i in range(n_filters):
        left, center, right = bin_points[i], bin_points[i + 1], bin_points[i + 2]
        if center == left:
            center = min(left + 1, n_bins - 1)
        if right == center:
            right = min(center + 1, n_bins - 1)
        for k in range(left, center):
            bank[i, k] = (k - left) / max(1, center - left)
        for k in range(center, right + 1):
            bank[i, k] = (right - k) / max(1, right - center)
        bank[i, center] = 1.0
    return bank
