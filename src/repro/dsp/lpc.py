"""Linear predictive coding features.

The Amazon Transcribe simulator uses an LPC/PLP-flavoured front end so that
its feature space differs from the MFCC/log-mel front ends of the other
ASRs.  LPC coefficients are obtained via the autocorrelation method
(Levinson-Durbin recursion, vectorised across frames) and converted into a
smooth log spectral envelope sampled at a small number of bands.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-10


def _batch_autocorrelation(frames: np.ndarray, order: int) -> np.ndarray:
    """Autocorrelation lags 0..order for every frame (via the FFT)."""
    n = frames.shape[1]
    n_fft = 1
    while n_fft < 2 * n:
        n_fft *= 2
    spectrum = np.fft.rfft(frames, n=n_fft, axis=1)
    power = spectrum.real ** 2 + spectrum.imag ** 2
    autocorr = np.fft.irfft(power, n=n_fft, axis=1)
    return autocorr[:, : order + 1]


def lpc_coefficients_batch(frames: np.ndarray, order: int) -> np.ndarray:
    """LPC coefficients for every frame via Levinson-Durbin.

    Returns an array of shape ``(n_frames, order)`` containing the
    prediction coefficients (the leading 1 of the polynomial is omitted).
    Near-silent frames produce zero coefficients.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 2:
        raise ValueError("lpc_coefficients_batch expects (n_frames, frame_length)")
    if order <= 0:
        raise ValueError("order must be positive")
    if frames.shape[1] <= order:
        raise ValueError("frame shorter than LPC order")
    n_frames = frames.shape[0]
    autocorr = _batch_autocorrelation(frames, order)

    coeffs = np.zeros((n_frames, order))
    error = autocorr[:, 0].copy()
    silent = error <= _EPS
    error = np.maximum(error, _EPS)
    for i in range(order):
        if i == 0:
            acc = autocorr[:, 1]
        else:
            acc = autocorr[:, i + 1] - np.einsum(
                "fk,fk->f", coeffs[:, :i], autocorr[:, i:0:-1])
        reflection = np.clip(acc / error, -0.999, 0.999)
        new_coeffs = coeffs.copy()
        new_coeffs[:, i] = reflection
        if i > 0:
            new_coeffs[:, :i] = coeffs[:, :i] - reflection[:, None] * coeffs[:, :i][:, ::-1]
        coeffs = new_coeffs
        error = np.maximum(error * (1.0 - reflection ** 2), _EPS)
    coeffs[silent] = 0.0
    return coeffs


def lpc_coefficients(frame: np.ndarray, order: int) -> np.ndarray:
    """LPC coefficients of a single frame (convenience wrapper)."""
    frame = np.asarray(frame, dtype=np.float64)
    if frame.ndim != 1:
        raise ValueError("lpc_coefficients expects a single frame")
    return lpc_coefficients_batch(frame[None, :], order)[0]


def lpc_cepstra(frames: np.ndarray, order: int,
                include_energy: bool = True) -> np.ndarray:
    """LPC cepstral coefficients (LPCC) for every frame.

    The cepstra are derived from the prediction coefficients with the
    standard recursion ``c_n = a_n + sum_{k=1}^{n-1} (k/n) c_k a_{n-k}``.
    With ``include_energy`` a log-energy term is appended as the last
    column (needed to tell silence from speech).
    """
    frames = np.asarray(frames, dtype=np.float64)
    coeffs = lpc_coefficients_batch(frames, order)      # (n_frames, order)
    n_frames = coeffs.shape[0]
    cepstra = np.zeros((n_frames, order))
    for n in range(1, order + 1):
        value = coeffs[:, n - 1].copy()
        for k in range(1, n):
            value += (k / n) * cepstra[:, k - 1] * coeffs[:, n - k - 1]
        cepstra[:, n - 1] = value
    if not include_energy:
        return cepstra
    energy = np.log(np.mean(frames ** 2, axis=1) + _EPS)[:, None]
    return np.concatenate([cepstra, energy], axis=1)


def lpc_envelope_features(coeffs: np.ndarray, n_bands: int,
                          per_frame_normalization: bool = True) -> np.ndarray:
    """Log spectral envelope bands from prediction coefficients.

    Contains the complex matmul stage, whose result depends on the row
    count of the operand — batched callers must apply this per clip
    segment (same rows as a standalone call) to stay bit-identical.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    order = coeffs.shape[1]
    omegas = np.linspace(0.05 * np.pi, 0.95 * np.pi, n_bands)
    k = np.arange(1, order + 1)
    basis = np.exp(-1j * np.outer(omegas, k))          # (n_bands, order)
    denom = 1.0 - coeffs @ basis.T                     # (n_frames, n_bands)
    envelope = 1.0 / np.maximum(np.abs(denom), 1e-6)
    features = np.log(envelope + _EPS)
    if per_frame_normalization:
        features = features - features.mean(axis=1, keepdims=True)
    return features


def lpc_spectrum_features(frames: np.ndarray, order: int, n_bands: int,
                          per_frame_normalization: bool = True) -> np.ndarray:
    """Log spectral envelope features from LPC analysis.

    For each frame the LPC all-pole envelope ``1 / |A(e^{jw})|`` is sampled
    at ``n_bands`` frequencies and log-compressed, yielding a compact PLP-
    like feature vector.  With ``per_frame_normalization`` the per-frame
    mean is removed so the features describe spectral shape, not gain.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 2:
        raise ValueError("lpc_spectrum_features expects (n_frames, frame_length)")
    if frames.shape[0] == 0:
        return np.zeros((0, n_bands))
    coeffs = lpc_coefficients_batch(frames, order)     # (n_frames, order)
    return lpc_envelope_features(coeffs, n_bands, per_frame_normalization)
