"""Shared parsing of cache policy strings.

The transcription cache and the pair-score cache expose the same policy
surface — ``"shared"`` / ``"private"`` / ``"off"`` / an on-disk JSON
path — configured from the same spec fields and CLI flags.  This module
holds the single parser both
:func:`repro.pipeline.engine.resolve_transcription_cache` and
:func:`repro.similarity.engine.resolve_score_cache` delegate to, so the
policy names and the path heuristic can never diverge between the two.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.errors import UnknownComponentError


def _path_like(value: str, suffixes: tuple[str, ...]) -> bool:
    return (os.sep in value or "/" in value
            or any(value.endswith(suffix) for suffix in suffixes))


def check_cache_policy(spec, kind: str,
                       suffixes: tuple[str, ...] = (".json", ".jsonl")
                       ) -> None:
    """Validate a policy without constructing (or reading) any cache.

    Raises :class:`UnknownComponentError` for a mistyped policy name;
    accepts everything :func:`resolve_cache_policy` would.  Used by spec
    validation so ``repro config validate`` never touches cache files.
    """
    if isinstance(spec, str) and spec not in ("shared", "private", "off") \
            and not _path_like(spec, suffixes):
        raise UnknownComponentError(
            kind, spec, ("shared", "private", "off",
                         f"<path ending in {'/'.join(suffixes)}>"))


def resolve_cache_policy(spec, cache_type: type, kind: str,
                         make_shared: Callable[[], object] | None = None,
                         suffixes: tuple[str, ...] = (".json", ".jsonl")):
    """Coerce a cache policy into an engine ``cache`` argument.

    Accepted policies: an instance of ``cache_type`` (used as given), a
    bool, ``None``/``"off"`` (disabled), ``"shared"`` (``True`` — the
    engine substitutes its process-wide cache), ``"private"`` (a fresh
    in-memory cache) or a path-like string (an on-disk store — must
    contain a path separator or end in one of ``suffixes``, so a
    mistyped policy name errors instead of silently creating a cache
    file).  ``suffixes`` follows the store's formats: ``.json``
    (snapshot) / ``.jsonl`` (append-only journal, multi-process safe)
    for the transcription and pair-score caches; ``.npz`` (snapshot)
    for the feature cache, whose separator-containing paths without
    that suffix select a content-addressed directory store instead.
    """
    if isinstance(spec, cache_type) or isinstance(spec, bool):
        return spec
    if spec is None or spec == "off":
        return False
    if spec == "shared":
        return True if make_shared is None else make_shared()
    if spec == "private":
        return cache_type()
    path = str(spec)
    if _path_like(path, suffixes):
        return cache_type(path=path)
    raise UnknownComponentError(
        kind, spec, ("shared", "private", "off",
                     f"<path ending in {'/'.join(suffixes)}>"))
