"""MVP-EARS reproduction: multiversion-programming audio AE detection.

Re-exports the objects most users need: the detector and its batched
pipeline, the ASR registry, the attacks, and the waveform value type.
Everything else lives in the subpackages (see ``docs/ARCHITECTURE.md``).
"""

from repro.asr.registry import build_asr, default_asr_suite
from repro.attacks.blackbox import BlackBoxGeneticAttack
from repro.attacks.whitebox import WhiteBoxCarliniAttack
from repro.audio.waveform import Waveform
from repro.core.detector import DetectionResult, MVPEarsDetector
from repro.pipeline.cache import TranscriptionCache
from repro.pipeline.detection import BatchDetectionResult, DetectionPipeline
from repro.pipeline.engine import TranscriptionEngine

__all__ = [
    "build_asr",
    "default_asr_suite",
    "BlackBoxGeneticAttack",
    "WhiteBoxCarliniAttack",
    "Waveform",
    "DetectionResult",
    "MVPEarsDetector",
    "TranscriptionCache",
    "BatchDetectionResult",
    "DetectionPipeline",
    "TranscriptionEngine",
]
