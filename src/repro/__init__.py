"""MVP-EARS reproduction: multiversion-programming audio AE detection.

Re-exports the stable public surface (documented in ``docs/API.md``):
the declarative spec tree and the ``repro.build(spec)`` entry points
(see ``docs/CONFIG.md``), the detector and its batched pipeline, the
serving layer (streaming detection, micro-batching, metrics), the
similarity scoring engine (pluggable backends + pair-score cache, see
``docs/SCORING.md``), the front-end feature engine (pluggable DSP
backends + content-hash feature cache, see ``docs/FEATURES.md``), the
open ASR registry, the attacks, and the waveform value type.  Everything else lives in the subpackages and is
considered internal (see ``docs/ARCHITECTURE.md``).

Note: the ``build`` name is the *function* (``repro.build(spec)``); the
module it lives in remains importable as ``from repro.build import ...``.
"""

from repro.asr.registry import (
    available_asr_names,
    build_asr,
    default_asr_suite,
    register_asr,
    unregister_asr,
)
from repro.build import (build, build_batcher, build_pipeline,
                         build_service, build_streaming)
from repro.attacks.blackbox import BlackBoxGeneticAttack
from repro.attacks.whitebox import WhiteBoxCarliniAttack
from repro.audio.waveform import Waveform
from repro.core.bootstrap import default_detector
from repro.core.detector import DetectionResult, MVPEarsDetector
from repro.errors import BackendUnavailableError, UnknownComponentError
from repro.defenses.ensemble import TransformedASR, TransformEnsembleDetector
from repro.defenses.transforms import Transform, default_transform_suite, parse_transforms
from repro.dsp.engine import (
    FeatureEngine,
    feature_backend_names,
    get_feature_backend,
    get_shared_feature_cache,
    register_feature_backend,
    resolve_feature_cache,
)
from repro.dsp.feature_cache import FeatureCache, FeatureCacheStats
from repro.pipeline.bench import run_pipeline_benchmark
from repro.pipeline.cache import TranscriptionCache
from repro.pipeline.detection import BatchDetectionResult, DetectionPipeline
from repro.pipeline.engine import TranscriptionEngine
from repro.serving.aggregator import (
    FlaggedSpan,
    StreamDetectionResult,
    WindowVerdict,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.chunker import StreamConfig, StreamWindow, chunk_waveform
from repro.serving.metrics import ServingMetrics
from repro.serving.service import (DetectionService, ServeResult,
                                   load_manifest)
from repro.serving.streaming import StreamingDetector, StreamSession
from repro.similarity.engine import (
    SimilarityEngine,
    get_scoring_backend,
    register_scoring_backend,
)
from repro.similarity.score_cache import PairScoreCache
from repro.similarity.scorer import SIMILARITY_METHODS, SimilarityScorer, get_scorer
from repro.specs import (
    ASRSpec,
    ClassifierSpec,
    DetectorSpec,
    FeaturesSpec,
    InvalidSpecError,
    PipelineSpec,
    ScoringSpec,
    ServingSpec,
    SuiteSpec,
    TrainingSpec,
    TransformSpec,
)

__all__ = [
    "available_asr_names",
    "build_asr",
    "default_asr_suite",
    "register_asr",
    "unregister_asr",
    "build",
    "build_batcher",
    "build_pipeline",
    "build_service",
    "build_streaming",
    "ASRSpec",
    "ClassifierSpec",
    "DetectorSpec",
    "FeaturesSpec",
    "InvalidSpecError",
    "PipelineSpec",
    "ScoringSpec",
    "ServingSpec",
    "SuiteSpec",
    "TrainingSpec",
    "TransformSpec",
    "BackendUnavailableError",
    "UnknownComponentError",
    "BlackBoxGeneticAttack",
    "WhiteBoxCarliniAttack",
    "Waveform",
    "default_detector",
    "DetectionResult",
    "MVPEarsDetector",
    "Transform",
    "TransformedASR",
    "TransformEnsembleDetector",
    "default_transform_suite",
    "parse_transforms",
    "FeatureEngine",
    "FeatureCache",
    "FeatureCacheStats",
    "feature_backend_names",
    "get_feature_backend",
    "get_shared_feature_cache",
    "register_feature_backend",
    "resolve_feature_cache",
    "run_pipeline_benchmark",
    "TranscriptionCache",
    "BatchDetectionResult",
    "DetectionPipeline",
    "TranscriptionEngine",
    "FlaggedSpan",
    "StreamDetectionResult",
    "WindowVerdict",
    "MicroBatcher",
    "StreamConfig",
    "StreamWindow",
    "chunk_waveform",
    "ServingMetrics",
    "StreamingDetector",
    "StreamSession",
    "DetectionService",
    "ServeResult",
    "load_manifest",
    "SimilarityEngine",
    "get_scoring_backend",
    "register_scoring_backend",
    "PairScoreCache",
    "SIMILARITY_METHODS",
    "SimilarityScorer",
    "get_scorer",
    "register_backend",
    "backend_names",
    "backend_status",
    "simulated_family",
]

# Imported last (it builds on the registries above) for its side
# effect: registering the shipped optional backends, so every entry
# point that imports repro sees them.
from repro.backends import (  # noqa: E402
    backend_names,
    backend_status,
    register_backend,
    simulated_family,
)
