"""Kaldi simulator.

Kaldi appears twice in the paper: Section III uses a Kaldi variant obtained
by changing ``--frame-subsampling-factor`` from 1 to 3 to show that even a
slightly reconfigured model breaks AE transfer, and Section V-E notes that
using Kaldi as an auxiliary ASR hurts detection accuracy (< 80 %) because
its benign-audio transcriptions are less accurate.  The simulator models
both: a Viterbi (HMM-style) decoder with a configurable subsampling factor,
and substantially noisier acoustic templates than the other systems.
"""

from __future__ import annotations

from repro.asr.simulated import SimulatedASR
from repro.audio.synthesis import SpeechSynthesizer
from repro.dsp.features import MfccFeatureExtractor
from repro.dsp.mfcc import MfccConfig
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon


class Kaldi(SimulatedASR):
    """Simulated Kaldi GMM/DNN-HMM hybrid ("KAL")."""

    def __init__(self, lexicon: Lexicon, language_model: BigramLanguageModel,
                 synthesizer: SpeechSynthesizer, sample_rate: int = 16_000,
                 frame_subsampling_factor: int = 1):
        if frame_subsampling_factor < 1:
            raise ValueError("frame_subsampling_factor must be >= 1")
        config = MfccConfig(sample_rate=sample_rate, frame_length=400,
                            hop_length=160, n_fft=512, n_mels=23, n_mfcc=13)
        suffix = "" if frame_subsampling_factor == 1 else \
            f" (subsampling {frame_subsampling_factor})"
        super().__init__(
            name=f"Kaldi{suffix}",
            short_name="KAL" if frame_subsampling_factor == 1 else
            f"KAL-fs{frame_subsampling_factor}",
            feature_extractor=MfccFeatureExtractor(config),
            lexicon=lexicon, language_model=language_model,
            synthesizer=synthesizer, seed=4040 + frame_subsampling_factor,
            template_noise=0.22, temperature=4.0, decode_style="viterbi",
            min_phoneme_run=2,
            frame_subsampling_factor=frame_subsampling_factor,
        )
