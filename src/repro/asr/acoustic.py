"""Template-based acoustic models with per-ASR learned projections.

Each simulated ASR owns a :class:`TemplateAcousticModel`: for every phoneme
it stores a template vector in the system's own feature space, obtained by
running clean phoneme exemplars through the system's front end.  A
model-specific anisotropic weighting (the "learned projection") determines
which feature dimensions the model attends to, and model-specific template
noise stands in for differences in training data and optimisation.

Frame scoring is a weighted nearest-template softmax::

    logit[p] = -sum_k w_k * (f_k - T[p, k])^2 / temperature
    posterior = softmax(logit)

The projection weights ``w`` differ per ASR.  This is the crucial diversity
mechanism: a white-box attack minimising the perturbation needed to cross
the *target* model's decision boundary concentrates its energy in the
dimensions that model weighs heavily, which are (with high probability) not
the dimensions another model weighs heavily — so the attack does not
transfer, exactly the behaviour Section III of the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.audio.synthesis import SpeakerProfile, SpeechSynthesizer
from repro.dsp.features import FeatureExtractor
from repro.text.phonemes import PHONEMES, PHONEME_TO_INDEX, Phoneme


class TemplateAcousticModel:
    """Weighted nearest-template phoneme classifier."""

    def __init__(self, feature_extractor: FeatureExtractor, seed: int,
                 template_noise: float = 0.0, temperature: float = 4.0,
                 weight_range: tuple[float, float] = (0.3, 1.7)):
        """Create an (unfitted) acoustic model.

        Args:
            feature_extractor: the ASR's front end.
            seed: seed controlling the learned projection and template noise;
                two models with different seeds behave like independently
                trained systems.
            template_noise: standard deviation of the noise added to the
                templates (relative to per-dimension feature scale).  Larger
                values give a less accurate model (used for Kaldi).
            temperature: softmax temperature of the frame classifier.
            weight_range: range of the per-dimension projection weights.
        """
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.feature_extractor = feature_extractor
        self.seed = seed
        self.template_noise = template_noise
        self.temperature = temperature
        self.weight_range = weight_range
        self.templates: np.ndarray | None = None
        self.weights: np.ndarray | None = None
        self._fitted = False

    # ---------------------------------------------------------------- fitting
    def fit(self, synthesizer: SpeechSynthesizer,
            speakers: list[SpeakerProfile] | None = None) -> "TemplateAcousticModel":
        """Build phoneme templates from clean synthetic exemplars."""
        rng = np.random.default_rng(self.seed)
        if speakers is None:
            speakers = [
                SpeakerProfile(pitch_hz=110.0),
                SpeakerProfile(pitch_hz=150.0, formant_scale=0.97),
                SpeakerProfile(pitch_hz=200.0, formant_scale=1.05),
            ]
        dim = self.feature_extractor.feature_dim
        templates = np.zeros((len(PHONEMES), dim))
        for phoneme in PHONEMES:
            vectors = []
            for speaker in speakers:
                exemplar = synthesizer.phoneme_exemplar(phoneme, duration=0.12,
                                                        speaker=speaker)
                features = self.feature_extractor.transform(exemplar)
                if features.shape[0] == 0:
                    continue
                middle = features[features.shape[0] // 3: max(1, 2 * features.shape[0] // 3 + 1)]
                vectors.append(middle.mean(axis=0))
            if not vectors:
                raise RuntimeError(f"could not build template for phoneme {phoneme}")
            templates[PHONEME_TO_INDEX[phoneme]] = np.mean(vectors, axis=0)

        feature_scale = np.maximum(templates.std(axis=0), 1e-3)
        if self.template_noise > 0:
            templates = templates + (self.template_noise * feature_scale
                                     * rng.standard_normal(templates.shape))
        low, high = self.weight_range
        weights = rng.uniform(low, high, size=dim)
        # Normalise so the average weighted scale is comparable across ASRs.
        weights = weights / weights.mean()
        self.templates = templates
        self.weights = weights / (feature_scale ** 2)
        self._fitted = True
        return self

    def _require_fit(self) -> None:
        if not self._fitted:
            raise RuntimeError("acoustic model has not been fitted")

    # ---------------------------------------------------------------- scoring
    @property
    def n_phonemes(self) -> int:
        return len(PHONEMES)

    def logits(self, features: np.ndarray) -> np.ndarray:
        """Frame logits of shape ``(n_frames, n_phonemes)``."""
        self._require_fit()
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.templates.shape[1]:
            raise ValueError("feature matrix has the wrong shape")
        diff = features[:, None, :] - self.templates[None, :, :]
        dist = np.einsum("fpk,k->fp", diff ** 2, self.weights)
        return -dist / self.temperature

    def log_posteriors(self, features: np.ndarray) -> np.ndarray:
        """Log-softmax of the frame logits."""
        logits = self.logits(features)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return shifted - log_norm

    def log_posteriors_batch(self,
                             features_list: list[np.ndarray]) -> list[np.ndarray]:
        """Log posteriors for many clips' feature matrices in one pass.

        Stacks the clips' frames and scores them together: every stage
        (the einsum distance contraction, the per-row max-shift and the
        per-row log-sum-exp) is row-independent, so the split results are
        bit-identical to per-clip :meth:`log_posteriors` calls — pinned
        by ``tests/test_dsp_vectorized.py``.
        """
        self._require_fit()
        if not features_list:
            return []
        counts = [np.asarray(f).shape[0] for f in features_list]
        stacked = np.concatenate(
            [np.asarray(f, dtype=np.float64) for f in features_list], axis=0)
        scored = self.log_posteriors(stacked)
        out, start = [], 0
        for count in counts:
            out.append(scored[start:start + count])
            start += count
        return out

    def posteriors(self, features: np.ndarray) -> np.ndarray:
        """Softmax posteriors per frame."""
        return np.exp(self.log_posteriors(features))

    def classify_frames(self, features: np.ndarray) -> list[Phoneme]:
        """Most likely phoneme per frame."""
        logits = self.logits(features)
        return [PHONEMES[i] for i in logits.argmax(axis=1)]

    # ------------------------------------------------------ attack interface
    def logits_gradient(self, features: np.ndarray,
                        grad_logits: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient on the logits to the feature matrix.

        ``logit[f, p] = -sum_k w_k (x[f,k] - T[p,k])^2 / temperature`` hence
        ``d logit[f, p] / d x[f, k] = -2 w_k (x[f,k] - T[p,k]) / temperature``.
        """
        self._require_fit()
        features = np.asarray(features, dtype=np.float64)
        grad_logits = np.asarray(grad_logits, dtype=np.float64)
        diff = features[:, None, :] - self.templates[None, :, :]
        scaled = -2.0 * self.weights[None, None, :] * diff / self.temperature
        return np.einsum("fp,fpk->fk", grad_logits, scaled)

    def target_margin_loss(self, features: np.ndarray, target_indices: np.ndarray,
                           margin: float = 1.0) -> tuple[float, np.ndarray]:
        """Hinge loss encouraging the target phoneme to win each frame.

        For each frame, the loss is ``max(0, margin + best_other - target)``
        over the logits.  Returns the total loss and its gradient with
        respect to the feature matrix.  The hinge form matters: the attack
        stops as soon as the target model's decision flips (plus a small
        margin) rather than pushing features all the way onto the target
        phoneme's template, which is what keeps white-box AEs from
        transferring to other models.
        """
        self._require_fit()
        target_indices = np.asarray(target_indices, dtype=int)
        logits = self.logits(features)
        n_frames = logits.shape[0]
        if target_indices.shape[0] != n_frames:
            raise ValueError("one target phoneme index per frame is required")
        frame_idx = np.arange(n_frames)
        target_logits = logits[frame_idx, target_indices]
        masked = logits.copy()
        masked[frame_idx, target_indices] = -np.inf
        best_other_idx = masked.argmax(axis=1)
        best_other = masked[frame_idx, best_other_idx]
        violation = margin + best_other - target_logits
        active = violation > 0

        loss = float(np.sum(violation[active])) if active.any() else 0.0
        grad_logits = np.zeros_like(logits)
        grad_logits[frame_idx[active], target_indices[active]] = -1.0
        grad_logits[frame_idx[active], best_other_idx[active]] = 1.0
        grad_features = self.logits_gradient(features, grad_logits)
        return loss, grad_features
