"""Common interface of all ASR simulators."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.audio.waveform import Waveform
from repro.text.phonemes import Phoneme


@dataclass(frozen=True)
class Transcription:
    """Result of transcribing one audio clip.

    Attributes:
        text: the recognised sentence (normalised, lower-case).
        phonemes: the collapsed phoneme sequence produced by the acoustic
            stage (silence removed).
        frame_labels: per-frame phoneme labels before collapsing.
        asr_name: name of the system that produced the result.
        elapsed_seconds: wall-clock recognition time.
        extra: decoder diagnostics (segment boundaries, scores, ...).
    """

    text: str
    phonemes: tuple[Phoneme, ...] = ()
    frame_labels: tuple[Phoneme, ...] = ()
    asr_name: str = ""
    elapsed_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.text


class ASRSystem(ABC):
    """Abstract speech-to-text system.

    Concrete simulators implement :meth:`_transcribe_samples`; the public
    :meth:`transcribe` adds timing and input validation so every system
    reports comparable latency numbers for the overhead experiment
    (Section V-I of the paper).
    """

    #: Human-readable system name, e.g. ``"DeepSpeech v0.1.0"``.
    name: str = "asr"
    #: Short identifier used in experiment tables, e.g. ``"DS0"``.
    short_name: str = "ASR"
    #: True for cloud-style systems (Google / Amazon simulators).
    is_cloud: bool = False
    #: True when :meth:`transcribe_with_features` actually consumes an
    #: externally computed front-end feature matrix (see
    #: :class:`~repro.dsp.engine.FeatureEngine`).  Systems that must see
    #: the raw samples (e.g. transformed views of a model, which filter
    #: the audio before the front end) leave this False.
    supports_precomputed_features: bool = False

    @abstractmethod
    def _transcribe_samples(self, samples: np.ndarray, sample_rate: int) -> Transcription:
        """Transcribe raw samples (implemented by subclasses)."""

    def transcribe(self, audio: Waveform) -> Transcription:
        """Transcribe ``audio`` and attach timing information."""
        if not isinstance(audio, Waveform):
            raise TypeError("transcribe expects a Waveform")
        start = time.perf_counter()
        result = self._transcribe_samples(audio.samples, audio.sample_rate)
        elapsed = time.perf_counter() - start
        return Transcription(text=result.text, phonemes=result.phonemes,
                             frame_labels=result.frame_labels,
                             asr_name=self.name, elapsed_seconds=elapsed,
                             extra=result.extra)

    def transcribe_with_features(self, audio: Waveform,
                                 features: np.ndarray) -> Transcription:
        """Transcribe ``audio`` given its precomputed front-end features.

        The features must have been produced by this system's own front
        end on exactly this audio (the
        :class:`~repro.dsp.engine.FeatureEngine` guarantees that via
        content-hash keys).  The base implementation ignores ``features``
        and transcribes from the samples; systems that set
        :attr:`supports_precomputed_features` override this to skip the
        front end — with results identical to :meth:`transcribe`.
        """
        return self.transcribe(audio)

    def transcribe_batch(self, audios: list[Waveform]) -> list[Transcription]:
        """Transcribe a list of audio clips sequentially.

        Simulated systems override this with a batched path (stacked
        front end + batched acoustic scoring) that produces identical
        transcriptions.  For parallel fan-out across a whole ASR suite
        (and content-hash caching) use
        :class:`repro.pipeline.engine.TranscriptionEngine`.
        """
        return [self.transcribe(audio) for audio in audios]

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return f"<{type(self).__name__} {self.name!r}>"
