"""Common interface of all ASR simulators."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.audio.waveform import Waveform
from repro.text.phonemes import Phoneme


@dataclass(frozen=True)
class Transcription:
    """Result of transcribing one audio clip.

    Attributes:
        text: the recognised sentence (normalised, lower-case).
        phonemes: the collapsed phoneme sequence produced by the acoustic
            stage (silence removed).
        frame_labels: per-frame phoneme labels before collapsing.
        asr_name: name of the system that produced the result.
        elapsed_seconds: wall-clock recognition time.
        extra: decoder diagnostics (segment boundaries, scores, ...).
    """

    text: str
    phonemes: tuple[Phoneme, ...] = ()
    frame_labels: tuple[Phoneme, ...] = ()
    asr_name: str = ""
    elapsed_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.text


class ASRSystem(ABC):
    """Abstract speech-to-text system.

    Concrete simulators implement :meth:`_transcribe_samples`; the public
    :meth:`transcribe` adds timing and input validation so every system
    reports comparable latency numbers for the overhead experiment
    (Section V-I of the paper).
    """

    #: Human-readable system name, e.g. ``"DeepSpeech v0.1.0"``.
    name: str = "asr"
    #: Short identifier used in experiment tables, e.g. ``"DS0"``.
    short_name: str = "ASR"
    #: True for cloud-style systems (Google / Amazon simulators).
    is_cloud: bool = False

    @abstractmethod
    def _transcribe_samples(self, samples: np.ndarray, sample_rate: int) -> Transcription:
        """Transcribe raw samples (implemented by subclasses)."""

    def transcribe(self, audio: Waveform) -> Transcription:
        """Transcribe ``audio`` and attach timing information."""
        if not isinstance(audio, Waveform):
            raise TypeError("transcribe expects a Waveform")
        start = time.perf_counter()
        result = self._transcribe_samples(audio.samples, audio.sample_rate)
        elapsed = time.perf_counter() - start
        return Transcription(text=result.text, phonemes=result.phonemes,
                             frame_labels=result.frame_labels,
                             asr_name=self.name, elapsed_seconds=elapsed,
                             extra=result.extra)

    def transcribe_batch(self, audios: list[Waveform]) -> list[Transcription]:
        """Transcribe a list of audio clips sequentially.

        For parallel fan-out across a whole ASR suite (and content-hash
        caching) use :class:`repro.pipeline.engine.TranscriptionEngine`.
        """
        return [self.transcribe(audio) for audio in audios]

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return f"<{type(self).__name__} {self.name!r}>"
