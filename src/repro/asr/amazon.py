"""Amazon Transcribe simulator.

No public information exists about the internals of the real service; the
simulator therefore uses yet another front end (LPC spectral envelopes) and
its own projection seed, making it the most "different" auxiliary model in
the suite — which is all the detection approach needs from it.
"""

from __future__ import annotations

from repro.asr.simulated import SimulatedASR
from repro.audio.synthesis import SpeechSynthesizer
from repro.dsp.features import LpcFeatureExtractor
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon


class AmazonTranscribe(SimulatedASR):
    """Simulated Amazon Transcribe ("AT")."""

    def __init__(self, lexicon: Lexicon, language_model: BigramLanguageModel,
                 synthesizer: SpeechSynthesizer, sample_rate: int = 16_000):
        extractor = LpcFeatureExtractor(sample_rate=sample_rate,
                                        frame_length=480, hop_length=200,
                                        order=16, style="cepstrum")
        super().__init__(
            name="Amazon Transcribe", short_name="AT",
            feature_extractor=extractor,
            lexicon=lexicon, language_model=language_model,
            synthesizer=synthesizer, seed=3030, template_noise=0.025,
            temperature=4.5, decode_style="greedy", min_phoneme_run=2,
            is_cloud=True, cloud_latency_seconds=0.6,
        )
