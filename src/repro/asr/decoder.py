"""Phoneme-sequence decoding and word generation.

Implements the "phoneme assembling" and "language generation" stages of the
ASR pipeline (Figure 2 of the paper):

* frame-label decoders (greedy CTC-style collapse, temporally smoothed
  argmax, and a Viterbi decoder with self-loop transitions),
* a :class:`WordDecoder` that segments the collapsed phoneme sequence at
  silences and maps each segment to the closest vocabulary word using the
  pronunciation lexicon and a bigram language model.
"""

from __future__ import annotations

import numpy as np

from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon
from repro.text.metrics import edit_distance, levenshtein_codes_batch
from repro.text.phonemes import PHONEMES, SILENCE, Phoneme

# ----------------------------------------------------------- frame decoders


def greedy_frame_labels(log_posteriors: np.ndarray) -> list[Phoneme]:
    """Most likely phoneme per frame (CTC-style greedy path)."""
    log_posteriors = np.asarray(log_posteriors)
    if log_posteriors.ndim != 2 or log_posteriors.shape[1] != len(PHONEMES):
        raise ValueError("log_posteriors must have shape (n_frames, n_phonemes)")
    return [PHONEMES[i] for i in log_posteriors.argmax(axis=1)]


def smoothed_frame_labels(log_posteriors: np.ndarray, window: int = 2) -> list[Phoneme]:
    """Argmax after temporal smoothing of the posteriors.

    Stands in for the recurrent context of an LSTM acoustic model: each
    frame's score is averaged with its neighbours before the decision.

    Vectorized sliding-window smoothing; bit-identical to
    :func:`smoothed_frame_labels_reference` (the einsum contraction over
    the window axis sums in the same order as ``np.convolve``).
    """
    log_posteriors = np.asarray(log_posteriors)
    if window < 1:
        raise ValueError("window must be at least 1")
    n_frames = log_posteriors.shape[0]
    if n_frames == 0:
        return []
    kernel = np.ones(2 * window + 1)
    kernel /= kernel.sum()
    padded = np.pad(log_posteriors, ((window, window), (0, 0)), mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, 2 * window + 1, axis=0)          # (n_frames, n_phonemes, 2w+1)
    smoothed = np.einsum("nkw,w->nk", windows, kernel)
    return [PHONEMES[i] for i in smoothed.argmax(axis=1)]


def smoothed_frame_labels_reference(log_posteriors: np.ndarray,
                                    window: int = 2) -> list[Phoneme]:
    """Per-column ``np.convolve`` smoothing (the seed library's path).

    Kept as the parity reference for :func:`smoothed_frame_labels`.
    """
    log_posteriors = np.asarray(log_posteriors)
    if window < 1:
        raise ValueError("window must be at least 1")
    n_frames = log_posteriors.shape[0]
    if n_frames == 0:
        return []
    kernel = np.ones(2 * window + 1)
    kernel /= kernel.sum()
    padded = np.pad(log_posteriors, ((window, window), (0, 0)), mode="edge")
    smoothed = np.empty_like(log_posteriors)
    for k in range(log_posteriors.shape[1]):
        smoothed[:, k] = np.convolve(padded[:, k], kernel, mode="valid")
    return [PHONEMES[i] for i in smoothed.argmax(axis=1)]


def viterbi_frame_labels(log_posteriors: np.ndarray, self_loop_logprob: float = -0.1,
                         switch_logprob: float = -2.5,
                         frame_subsampling_factor: int = 1) -> list[Phoneme]:
    """HMM-style decoding with a uniform transition model (Kaldi flavour).

    Args:
        log_posteriors: frame log posteriors.
        self_loop_logprob: log probability of staying in the same phoneme.
        switch_logprob: log probability of switching to any other phoneme.
        frame_subsampling_factor: decode only every ``k``-th frame, mirroring
            Kaldi's ``--frame-subsampling-factor`` option that Section III of
            the paper perturbs to create a model variant.
    """
    log_posteriors = np.asarray(log_posteriors)
    if frame_subsampling_factor < 1:
        raise ValueError("frame_subsampling_factor must be >= 1")
    log_posteriors = log_posteriors[::frame_subsampling_factor]
    n_frames, n_states = log_posteriors.shape
    if n_frames == 0:
        return []
    scores = log_posteriors[0].copy()
    backpointers = np.zeros((n_frames, n_states), dtype=int)
    for t in range(1, n_frames):
        switch_best = scores.max() + switch_logprob
        switch_arg = int(scores.argmax())
        stay = scores + self_loop_logprob
        use_stay = stay >= switch_best
        new_scores = np.where(use_stay, stay, switch_best) + log_posteriors[t]
        backpointers[t] = np.where(use_stay, np.arange(n_states), switch_arg)
        scores = new_scores
    path = [int(scores.argmax())]
    for t in range(n_frames - 1, 0, -1):
        path.append(int(backpointers[t, path[-1]]))
    path.reverse()
    labels = [PHONEMES[i] for i in path]
    # Re-expand so callers always see one label per original frame.
    if frame_subsampling_factor > 1:
        expanded: list[Phoneme] = []
        for label in labels:
            expanded.extend([label] * frame_subsampling_factor)
        labels = expanded
    return labels


def collapse_frame_labels(frame_labels: list[Phoneme],
                          min_run: int = 1) -> list[Phoneme]:
    """Collapse consecutive repeats (CTC collapse), dropping short runs.

    Args:
        frame_labels: per-frame phoneme labels.
        min_run: minimum number of consecutive frames required for a phoneme
            to be emitted (runs shorter than this are treated as noise).
    """
    if min_run < 1:
        raise ValueError("min_run must be >= 1")
    collapsed: list[Phoneme] = []
    run_label: Phoneme | None = None
    run_length = 0
    for label in [*frame_labels, None]:
        if label == run_label:
            run_length += 1
            continue
        if run_label is not None and run_length >= min_run:
            if not collapsed or collapsed[-1] != run_label:
                collapsed.append(run_label)
        run_label = label
        run_length = 1
    return collapsed


def strip_silence(phonemes: list[Phoneme]) -> list[Phoneme]:
    """Remove silence markers from a phoneme sequence."""
    return [p for p in phonemes if p != SILENCE]


def split_at_silence(phonemes: list[Phoneme]) -> list[list[Phoneme]]:
    """Split a collapsed phoneme sequence into word segments at silences."""
    segments: list[list[Phoneme]] = []
    current: list[Phoneme] = []
    for phoneme in phonemes:
        if phoneme == SILENCE:
            if current:
                segments.append(current)
                current = []
        else:
            current.append(phoneme)
    if current:
        segments.append(current)
    return segments


# ------------------------------------------------------------- word decoder


class WordDecoder:
    """Maps phoneme segments to vocabulary words.

    For each silence-delimited segment the decoder searches the lexicon for
    the pronunciation with the smallest edit distance, using the language
    model to break near-ties.  Segments that match no word well are decoded
    by trying a two-word split; segments that still match nothing are
    dropped (mirroring how a real decoder would emit nothing for
    unintelligible audio).

    The lexicon search — the hot loop of the whole recognition stack —
    has two implementations selected by ``search``: ``"fast"`` (default)
    computes every candidate's edit distance in one vectorized integer
    DP (:func:`~repro.text.metrics.levenshtein_codes_batch`) and reuses
    per-``previous`` language-model score vectors; ``"scalar"`` is the
    seed library's per-word loop.  Both produce identical words and
    identical (integer + float64) costs — the selection replays the
    scalar loop's exact pruning and tie-breaking order.
    """

    #: Per-phoneme cost above which a segment is considered unintelligible.
    MAX_COST_PER_PHONEME = 0.67

    def __init__(self, lexicon: Lexicon, language_model: BigramLanguageModel,
                 lm_weight: float = 0.2, search: str = "fast"):
        if search not in {"fast", "scalar"}:
            raise ValueError("search must be 'fast' or 'scalar'")
        self.lexicon = lexicon
        self.language_model = language_model
        self.lm_weight = lm_weight
        self.search = search
        self._entries: list[tuple[str, tuple[Phoneme, ...]]] = []
        self._by_length: dict[int, list[int]] = {}
        self._segment_cache: dict[tuple, tuple[str, float]] = {}
        self._distance_cache: dict[tuple, np.ndarray] = {}
        self._lm_vectors: dict[str | None, np.ndarray] = {}
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        self._entries = sorted(self.lexicon.items())
        self._by_length = {}
        for idx, (_, pron) in enumerate(self._entries):
            self._by_length.setdefault(len(pron), []).append(idx)
        self._words = [word for word, _ in self._entries]
        # Pre-encode the pronunciations once: the fast search then only
        # has to encode each new segment (codes are non-negative, so the
        # -1 padding never matches a hypothesis token).
        self._codes: dict[Phoneme, int] = {}
        prons = [pron for _, pron in self._entries]
        max_len = max((len(pron) for pron in prons), default=0)
        self._pron_lengths = np.array([len(pron) for pron in prons],
                                      dtype=np.int64)
        self._pron_matrix = np.full((len(prons), max(1, max_len)), -1,
                                    dtype=np.int32)
        for idx, pron in enumerate(prons):
            for j, token in enumerate(pron):
                self._pron_matrix[idx, j] = self._code(token)
        self._unigram_scores: np.ndarray | None = None
        self._segment_cache.clear()
        self._distance_cache.clear()
        self._lm_vectors.clear()

    def _code(self, token: Phoneme) -> int:
        code = self._codes.get(token)
        if code is None:
            code = self._codes[token] = len(self._codes)
        return code

    # ------------------------------------------------------------- decoding
    def decode(self, phonemes: list[Phoneme]) -> tuple[str, list[str]]:
        """Decode a collapsed phoneme sequence (with silences) into text.

        Returns:
            ``(sentence, words)`` where ``sentence`` is the joined text.
        """
        segments = split_at_silence(phonemes)
        words: list[str] = []
        previous: str | None = None
        for segment in segments:
            decoded = self._decode_segment(tuple(segment), previous)
            words.extend(decoded)
            if decoded:
                previous = decoded[-1]
        return " ".join(words), words

    def _decode_segment(self, segment: tuple[Phoneme, ...],
                        previous: str | None) -> list[str]:
        if not segment:
            return []
        word, cost = self._best_word(segment, previous)
        per_phoneme = cost / max(1, len(segment))
        if per_phoneme <= self.MAX_COST_PER_PHONEME:
            return [word]
        # Try splitting into two words (handles a missed inter-word silence).
        if len(segment) >= 4:
            best: tuple[float, list[str]] | None = None
            for split in range(2, len(segment) - 1):
                left_word, left_cost = self._best_word(segment[:split], previous)
                right_word, right_cost = self._best_word(segment[split:], left_word)
                total = left_cost + right_cost
                if best is None or total < best[0]:
                    best = (total, [left_word, right_word])
            if best is not None and best[0] / len(segment) <= self.MAX_COST_PER_PHONEME:
                return best[1]
        if per_phoneme <= 1.0:
            # Poor match, but close enough to emit the best guess.
            return [word]
        return []

    def _best_word(self, segment: tuple[Phoneme, ...],
                   previous: str | None) -> tuple[str, float]:
        cache_key = (segment, previous if self.lm_weight > 0 else None)
        if cache_key in self._segment_cache:
            return self._segment_cache[cache_key]
        if self.search == "scalar":
            result = self._best_word_scalar(segment, previous)
        else:
            result = self._best_word_fast(segment, previous)
        self._segment_cache[cache_key] = result
        return result

    def _best_word_scalar(self, segment: tuple[Phoneme, ...],
                          previous: str | None) -> tuple[str, float]:
        """Per-word loop lexicon search (the seed library's path).

        Kept as the parity reference for :meth:`_best_word_fast`.
        """
        seg_len = len(segment)
        best_word = ""
        best_score = float("inf")
        for length in range(max(1, seg_len - 2), seg_len + 3):
            for idx in self._by_length.get(length, ()):
                word, pron = self._entries[idx]
                distance = edit_distance(pron, segment)
                if distance - 1 > best_score:
                    continue
                lm_bonus = self.language_model.word_score(previous, word)
                score = distance - self.lm_weight * lm_bonus
                if score < best_score:
                    best_score = score
                    best_word = word
        if not best_word:
            # Fall back to an unconstrained search over the whole lexicon.
            for word, pron in self._entries:
                distance = edit_distance(pron, segment)
                if distance < best_score:
                    best_score = distance
                    best_word = word
        result = (best_word, float(best_score if best_score != float("inf") else seg_len))
        return result

    def _segment_distances(self, segment: tuple[Phoneme, ...]) -> np.ndarray:
        """Edit distances from every lexicon pronunciation to ``segment``.

        One vectorized DP over the whole lexicon, cached per segment (a
        segment's distances are independent of ``previous``, so this
        also shares work across language-model contexts).
        """
        cached = self._distance_cache.get(segment)
        if cached is None:
            hyp = np.array([self._code(token) for token in segment],
                           dtype=np.int32)
            cached = levenshtein_codes_batch(self._pron_matrix,
                                             self._pron_lengths, hyp)
            self._distance_cache[segment] = cached
        return cached

    def _lm_vector(self, previous: str | None) -> np.ndarray:
        """Language-model scores of every lexicon word after ``previous``."""
        cached = self._lm_vectors.get(previous)
        if cached is None:
            if self._unigram_scores is None:
                self._unigram_scores = \
                    self.language_model.unigram_logprob_vector(self._words)
            cached = self.language_model.word_scores(previous, self._words,
                                                     self._unigram_scores)
            self._lm_vectors[previous] = cached
        return cached

    def _best_word_fast(self, segment: tuple[Phoneme, ...],
                        previous: str | None) -> tuple[str, float]:
        """Vectorized lexicon search; replays the scalar selection exactly.

        The distances come from one batched integer DP and the LM bonus
        from a cached per-context vector; the candidate scan below keeps
        the scalar loop's iteration order, pruning rule and strict ``<``
        tie-break, so word and cost are bit-identical to
        :meth:`_best_word_scalar`.
        """
        seg_len = len(segment)
        distances = self._segment_distances(segment)
        lm_scores = None
        best_word = ""
        best_score = float("inf")
        for length in range(max(1, seg_len - 2), seg_len + 3):
            for idx in self._by_length.get(length, ()):
                distance = distances[idx]
                if distance - 1 > best_score:
                    continue
                if lm_scores is None:
                    lm_scores = self._lm_vector(previous)
                score = distance - self.lm_weight * lm_scores[idx]
                if score < best_score:
                    best_score = score
                    best_word = self._entries[idx][0]
        if not best_word and len(self._entries):
            # Unconstrained fallback: the scalar strict-< scan selects the
            # first minimum in entry order, which is exactly np.argmin.
            idx = int(np.argmin(distances))
            best_word = self._entries[idx][0]
            best_score = float(distances[idx])
        result = (best_word, float(best_score if best_score != float("inf") else seg_len))
        return result
