"""Phoneme-sequence decoding and word generation.

Implements the "phoneme assembling" and "language generation" stages of the
ASR pipeline (Figure 2 of the paper):

* frame-label decoders (greedy CTC-style collapse, temporally smoothed
  argmax, and a Viterbi decoder with self-loop transitions),
* a :class:`WordDecoder` that segments the collapsed phoneme sequence at
  silences and maps each segment to the closest vocabulary word using the
  pronunciation lexicon and a bigram language model.
"""

from __future__ import annotations

import numpy as np

from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon
from repro.text.metrics import edit_distance
from repro.text.phonemes import PHONEMES, SILENCE, Phoneme

# ----------------------------------------------------------- frame decoders


def greedy_frame_labels(log_posteriors: np.ndarray) -> list[Phoneme]:
    """Most likely phoneme per frame (CTC-style greedy path)."""
    log_posteriors = np.asarray(log_posteriors)
    if log_posteriors.ndim != 2 or log_posteriors.shape[1] != len(PHONEMES):
        raise ValueError("log_posteriors must have shape (n_frames, n_phonemes)")
    return [PHONEMES[i] for i in log_posteriors.argmax(axis=1)]


def smoothed_frame_labels(log_posteriors: np.ndarray, window: int = 2) -> list[Phoneme]:
    """Argmax after temporal smoothing of the posteriors.

    Stands in for the recurrent context of an LSTM acoustic model: each
    frame's score is averaged with its neighbours before the decision.
    """
    log_posteriors = np.asarray(log_posteriors)
    if window < 1:
        raise ValueError("window must be at least 1")
    n_frames = log_posteriors.shape[0]
    if n_frames == 0:
        return []
    kernel = np.ones(2 * window + 1)
    kernel /= kernel.sum()
    padded = np.pad(log_posteriors, ((window, window), (0, 0)), mode="edge")
    smoothed = np.empty_like(log_posteriors)
    for k in range(log_posteriors.shape[1]):
        smoothed[:, k] = np.convolve(padded[:, k], kernel, mode="valid")
    return [PHONEMES[i] for i in smoothed.argmax(axis=1)]


def viterbi_frame_labels(log_posteriors: np.ndarray, self_loop_logprob: float = -0.1,
                         switch_logprob: float = -2.5,
                         frame_subsampling_factor: int = 1) -> list[Phoneme]:
    """HMM-style decoding with a uniform transition model (Kaldi flavour).

    Args:
        log_posteriors: frame log posteriors.
        self_loop_logprob: log probability of staying in the same phoneme.
        switch_logprob: log probability of switching to any other phoneme.
        frame_subsampling_factor: decode only every ``k``-th frame, mirroring
            Kaldi's ``--frame-subsampling-factor`` option that Section III of
            the paper perturbs to create a model variant.
    """
    log_posteriors = np.asarray(log_posteriors)
    if frame_subsampling_factor < 1:
        raise ValueError("frame_subsampling_factor must be >= 1")
    log_posteriors = log_posteriors[::frame_subsampling_factor]
    n_frames, n_states = log_posteriors.shape
    if n_frames == 0:
        return []
    scores = log_posteriors[0].copy()
    backpointers = np.zeros((n_frames, n_states), dtype=int)
    for t in range(1, n_frames):
        switch_best = scores.max() + switch_logprob
        switch_arg = int(scores.argmax())
        stay = scores + self_loop_logprob
        use_stay = stay >= switch_best
        new_scores = np.where(use_stay, stay, switch_best) + log_posteriors[t]
        backpointers[t] = np.where(use_stay, np.arange(n_states), switch_arg)
        scores = new_scores
    path = [int(scores.argmax())]
    for t in range(n_frames - 1, 0, -1):
        path.append(int(backpointers[t, path[-1]]))
    path.reverse()
    labels = [PHONEMES[i] for i in path]
    # Re-expand so callers always see one label per original frame.
    if frame_subsampling_factor > 1:
        expanded: list[Phoneme] = []
        for label in labels:
            expanded.extend([label] * frame_subsampling_factor)
        labels = expanded
    return labels


def collapse_frame_labels(frame_labels: list[Phoneme],
                          min_run: int = 1) -> list[Phoneme]:
    """Collapse consecutive repeats (CTC collapse), dropping short runs.

    Args:
        frame_labels: per-frame phoneme labels.
        min_run: minimum number of consecutive frames required for a phoneme
            to be emitted (runs shorter than this are treated as noise).
    """
    if min_run < 1:
        raise ValueError("min_run must be >= 1")
    collapsed: list[Phoneme] = []
    run_label: Phoneme | None = None
    run_length = 0
    for label in [*frame_labels, None]:
        if label == run_label:
            run_length += 1
            continue
        if run_label is not None and run_length >= min_run:
            if not collapsed or collapsed[-1] != run_label:
                collapsed.append(run_label)
        run_label = label
        run_length = 1
    return collapsed


def strip_silence(phonemes: list[Phoneme]) -> list[Phoneme]:
    """Remove silence markers from a phoneme sequence."""
    return [p for p in phonemes if p != SILENCE]


def split_at_silence(phonemes: list[Phoneme]) -> list[list[Phoneme]]:
    """Split a collapsed phoneme sequence into word segments at silences."""
    segments: list[list[Phoneme]] = []
    current: list[Phoneme] = []
    for phoneme in phonemes:
        if phoneme == SILENCE:
            if current:
                segments.append(current)
                current = []
        else:
            current.append(phoneme)
    if current:
        segments.append(current)
    return segments


# ------------------------------------------------------------- word decoder


class WordDecoder:
    """Maps phoneme segments to vocabulary words.

    For each silence-delimited segment the decoder searches the lexicon for
    the pronunciation with the smallest edit distance, using the language
    model to break near-ties.  Segments that match no word well are decoded
    by trying a two-word split; segments that still match nothing are
    dropped (mirroring how a real decoder would emit nothing for
    unintelligible audio).
    """

    #: Per-phoneme cost above which a segment is considered unintelligible.
    MAX_COST_PER_PHONEME = 0.67

    def __init__(self, lexicon: Lexicon, language_model: BigramLanguageModel,
                 lm_weight: float = 0.2):
        self.lexicon = lexicon
        self.language_model = language_model
        self.lm_weight = lm_weight
        self._entries: list[tuple[str, tuple[Phoneme, ...]]] = []
        self._by_length: dict[int, list[int]] = {}
        self._segment_cache: dict[tuple, tuple[str, float]] = {}
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        self._entries = sorted(self.lexicon.items())
        self._by_length = {}
        for idx, (_, pron) in enumerate(self._entries):
            self._by_length.setdefault(len(pron), []).append(idx)
        self._segment_cache.clear()

    # ------------------------------------------------------------- decoding
    def decode(self, phonemes: list[Phoneme]) -> tuple[str, list[str]]:
        """Decode a collapsed phoneme sequence (with silences) into text.

        Returns:
            ``(sentence, words)`` where ``sentence`` is the joined text.
        """
        segments = split_at_silence(phonemes)
        words: list[str] = []
        previous: str | None = None
        for segment in segments:
            decoded = self._decode_segment(tuple(segment), previous)
            words.extend(decoded)
            if decoded:
                previous = decoded[-1]
        return " ".join(words), words

    def _decode_segment(self, segment: tuple[Phoneme, ...],
                        previous: str | None) -> list[str]:
        if not segment:
            return []
        word, cost = self._best_word(segment, previous)
        per_phoneme = cost / max(1, len(segment))
        if per_phoneme <= self.MAX_COST_PER_PHONEME:
            return [word]
        # Try splitting into two words (handles a missed inter-word silence).
        if len(segment) >= 4:
            best: tuple[float, list[str]] | None = None
            for split in range(2, len(segment) - 1):
                left_word, left_cost = self._best_word(segment[:split], previous)
                right_word, right_cost = self._best_word(segment[split:], left_word)
                total = left_cost + right_cost
                if best is None or total < best[0]:
                    best = (total, [left_word, right_word])
            if best is not None and best[0] / len(segment) <= self.MAX_COST_PER_PHONEME:
                return best[1]
        if per_phoneme <= 1.0:
            # Poor match, but close enough to emit the best guess.
            return [word]
        return []

    def _best_word(self, segment: tuple[Phoneme, ...],
                   previous: str | None) -> tuple[str, float]:
        cache_key = (segment, previous if self.lm_weight > 0 else None)
        if cache_key in self._segment_cache:
            return self._segment_cache[cache_key]
        seg_len = len(segment)
        best_word = ""
        best_score = float("inf")
        for length in range(max(1, seg_len - 2), seg_len + 3):
            for idx in self._by_length.get(length, ()):
                word, pron = self._entries[idx]
                distance = edit_distance(pron, segment)
                if distance - 1 > best_score:
                    continue
                lm_bonus = self.language_model.word_score(previous, word)
                score = distance - self.lm_weight * lm_bonus
                if score < best_score:
                    best_score = score
                    best_word = word
        if not best_word:
            # Fall back to an unconstrained search over the whole lexicon.
            for word, pron in self._entries:
                distance = edit_distance(pron, segment)
                if distance < best_score:
                    best_score = distance
                    best_word = word
        result = (best_word, float(best_score if best_score != float("inf") else seg_len))
        self._segment_cache[cache_key] = result
        return result
