"""DeepSpeech v0.1.0 and v0.1.1 simulators.

DeepSpeech is the end-to-end RNN-CTC system the white-box attack targets.
The two versions share the same architecture; v0.1.1 differs only in
implementation details and training, which we model as a different
projection seed and slightly different frame geometry and template noise.
The paper's experiments show that even this small amount of diversity is
enough for AEs crafted against v0.1.0 to fail on v0.1.1.
"""

from __future__ import annotations

from repro.asr.simulated import SimulatedASR
from repro.audio.synthesis import SpeechSynthesizer
from repro.dsp.features import MfccFeatureExtractor
from repro.dsp.mfcc import MfccConfig
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon


class DeepSpeechV010(SimulatedASR):
    """Simulated Mozilla DeepSpeech v0.1.0 (the target model, "DS0")."""

    def __init__(self, lexicon: Lexicon, language_model: BigramLanguageModel,
                 synthesizer: SpeechSynthesizer, sample_rate: int = 16_000):
        config = MfccConfig(sample_rate=sample_rate, frame_length=400,
                            hop_length=160, n_fft=512, n_mels=26, n_mfcc=13)
        super().__init__(
            name="DeepSpeech v0.1.0", short_name="DS0",
            feature_extractor=MfccFeatureExtractor(config),
            lexicon=lexicon, language_model=language_model,
            synthesizer=synthesizer, seed=1010, template_noise=0.015,
            temperature=4.0, decode_style="greedy", min_phoneme_run=2,
        )


class DeepSpeechV011(SimulatedASR):
    """Simulated Mozilla DeepSpeech v0.1.1 (auxiliary model, "DS1")."""

    def __init__(self, lexicon: Lexicon, language_model: BigramLanguageModel,
                 synthesizer: SpeechSynthesizer, sample_rate: int = 16_000):
        config = MfccConfig(sample_rate=sample_rate, frame_length=384,
                            hop_length=176, n_fft=512, n_mels=26, n_mfcc=13)
        super().__init__(
            name="DeepSpeech v0.1.1", short_name="DS1",
            feature_extractor=MfccFeatureExtractor(config),
            lexicon=lexicon, language_model=language_model,
            synthesizer=synthesizer, seed=1111, template_noise=0.015,
            temperature=4.0, decode_style="greedy", min_phoneme_run=2,
        )
