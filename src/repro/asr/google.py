"""Google Cloud Speech simulator.

The real system is a cloud LSTM-RNN recogniser.  The simulator differs from
the DeepSpeech simulators along every axis the paper identifies as a source
of diversity: a log-mel front end with a larger frame, temporally smoothed
decoding (standing in for recurrent context), its own projection seed, and
an optional simulated network latency.
"""

from __future__ import annotations

from repro.asr.simulated import SimulatedASR
from repro.audio.synthesis import SpeechSynthesizer
from repro.dsp.features import LogMelFeatureExtractor
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon


class GoogleCloudSpeech(SimulatedASR):
    """Simulated Google Cloud Speech ("GCS")."""

    def __init__(self, lexicon: Lexicon, language_model: BigramLanguageModel,
                 synthesizer: SpeechSynthesizer, sample_rate: int = 16_000):
        extractor = LogMelFeatureExtractor(sample_rate=sample_rate,
                                           frame_length=512, hop_length=224,
                                           n_fft=512, n_mels=40, n_ceps=20,
                                           f_min=60.0,
                                           per_frame_normalization=False)
        super().__init__(
            name="Google Cloud Speech", short_name="GCS",
            feature_extractor=extractor,
            lexicon=lexicon, language_model=language_model,
            synthesizer=synthesizer, seed=2020, template_noise=0.02,
            temperature=5.0, decode_style="smoothed", min_phoneme_run=2,
            smoothing_window=1, is_cloud=True, cloud_latency_seconds=0.35,
        )
