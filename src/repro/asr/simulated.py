"""Shared machinery of the simulated ASR systems.

:class:`SimulatedASR` wires together a feature extractor, a
:class:`~repro.asr.acoustic.TemplateAcousticModel`, a frame decoder and a
:class:`~repro.asr.decoder.WordDecoder` into a complete speech-to-text
pipeline following the four stages described in Section II of the paper.
Concrete systems (DeepSpeech, Google Cloud Speech, Amazon Transcribe,
Kaldi) differ only in their front ends, projection seeds, decoding styles
and noise levels.
"""

from __future__ import annotations

import time

import numpy as np

from repro.asr.acoustic import TemplateAcousticModel
from repro.asr.base import ASRSystem, Transcription
from repro.asr.decoder import (
    WordDecoder,
    collapse_frame_labels,
    greedy_frame_labels,
    smoothed_frame_labels,
    strip_silence,
    viterbi_frame_labels,
)
from repro.audio.synthesis import SpeechSynthesizer
from repro.audio.waveform import Waveform
from repro.config import runtime
from repro.dsp.features import FeatureExtractor
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon


class SimulatedASR(ASRSystem):
    """Full feature → phoneme → word speech recognition pipeline."""

    supports_precomputed_features = True

    #: decoding style: "greedy", "smoothed" or "viterbi".
    decode_style: str = "greedy"
    #: minimum frame run required for a phoneme to be emitted.
    min_phoneme_run: int = 2
    #: simulated cloud round-trip latency in seconds (only applied when the
    #: runtime flag ``simulate_cloud_latency`` is on).
    cloud_latency_seconds: float = 0.0

    def __init__(self, name: str, short_name: str,
                 feature_extractor: FeatureExtractor,
                 lexicon: Lexicon, language_model: BigramLanguageModel,
                 synthesizer: SpeechSynthesizer, seed: int,
                 template_noise: float = 0.02, temperature: float = 4.0,
                 decode_style: str = "greedy", min_phoneme_run: int = 2,
                 is_cloud: bool = False, cloud_latency_seconds: float = 0.0,
                 frame_subsampling_factor: int = 1,
                 smoothing_window: int = 2):
        self.name = name
        self.short_name = short_name
        self.is_cloud = is_cloud
        self.cloud_latency_seconds = cloud_latency_seconds
        self.decode_style = decode_style
        self.min_phoneme_run = min_phoneme_run
        self.frame_subsampling_factor = frame_subsampling_factor
        self.smoothing_window = smoothing_window
        self.feature_extractor = feature_extractor
        self.acoustic_model = TemplateAcousticModel(
            feature_extractor, seed=seed, template_noise=template_noise,
            temperature=temperature,
        ).fit(synthesizer)
        self.word_decoder = WordDecoder(lexicon, language_model)

    # ----------------------------------------------------------- components
    def features(self, samples: np.ndarray) -> np.ndarray:
        """Feature matrix of raw samples (front-end stage)."""
        return self.feature_extractor.transform(samples)

    def frame_log_posteriors(self, samples: np.ndarray) -> np.ndarray:
        """Frame-level phoneme log posteriors (acoustic stage)."""
        return self.acoustic_model.log_posteriors(self.features(samples))

    def _frame_labels(self, log_posteriors: np.ndarray) -> list[str]:
        if self.decode_style == "greedy":
            return greedy_frame_labels(log_posteriors)
        if self.decode_style == "smoothed":
            return smoothed_frame_labels(log_posteriors, window=self.smoothing_window)
        if self.decode_style == "viterbi":
            return viterbi_frame_labels(
                log_posteriors,
                frame_subsampling_factor=self.frame_subsampling_factor)
        raise ValueError(f"unknown decode style {self.decode_style!r}")

    # --------------------------------------------------------------- pipeline
    def _simulate_latency(self) -> None:
        if self.is_cloud and runtime().simulate_cloud_latency and \
                self.cloud_latency_seconds > 0:
            time.sleep(self.cloud_latency_seconds)

    def _decode_log_posteriors(self, log_posteriors: np.ndarray) -> Transcription:
        """Frame decoding + word generation from acoustic log posteriors."""
        frame_labels = self._frame_labels(log_posteriors)
        collapsed = collapse_frame_labels(frame_labels, min_run=self.min_phoneme_run)
        text, words = self.word_decoder.decode(collapsed)
        return Transcription(text=text,
                             phonemes=tuple(strip_silence(collapsed)),
                             frame_labels=tuple(frame_labels),
                             asr_name=self.name,
                             extra={"n_frames": len(frame_labels),
                                    "words": words})

    def _transcribe_samples(self, samples: np.ndarray, sample_rate: int) -> Transcription:
        self._simulate_latency()
        return self._decode_log_posteriors(self.frame_log_posteriors(samples))

    def transcribe_with_features(self, audio: Waveform,
                                 features: np.ndarray) -> Transcription:
        """Transcribe ``audio`` from a precomputed front-end feature matrix.

        Skips the front end (the :class:`~repro.dsp.engine.FeatureEngine`
        already computed and possibly shared it); acoustic scoring and
        decoding are the ordinary per-clip stages, so the transcription is
        identical to :meth:`~repro.asr.base.ASRSystem.transcribe`.
        """
        if not isinstance(audio, Waveform):
            raise TypeError("transcribe_with_features expects a Waveform")
        start = time.perf_counter()
        self._simulate_latency()
        result = self._decode_log_posteriors(
            self.acoustic_model.log_posteriors(features))
        elapsed = time.perf_counter() - start
        return Transcription(text=result.text, phonemes=result.phonemes,
                             frame_labels=result.frame_labels,
                             asr_name=self.name, elapsed_seconds=elapsed,
                             extra=result.extra)

    def transcribe_batch(self, audios: list[Waveform]) -> list[Transcription]:
        """Transcribe a batch through the stacked front-end/acoustic path.

        The front end runs once over the whole batch
        (:meth:`~repro.dsp.features.FeatureExtractor.transform_batch`) and
        acoustic scoring once over the stacked frames
        (:meth:`~repro.asr.acoustic.TemplateAcousticModel.log_posteriors_batch`);
        decoding stays per clip.  Transcription contents are identical to
        sequential :meth:`~repro.asr.base.ASRSystem.transcribe` calls.
        Simulated cloud latency is charged once per batch, and the shared
        batch stages' wall time is split evenly across the clips.
        """
        if not audios:
            return []
        for audio in audios:
            if not isinstance(audio, Waveform):
                raise TypeError("transcribe_batch expects Waveforms")
        start = time.perf_counter()
        self._simulate_latency()
        features = self.feature_extractor.transform_batch(
            [audio.samples for audio in audios])
        log_posteriors = self.acoustic_model.log_posteriors_batch(features)
        shared_seconds = (time.perf_counter() - start) / len(audios)
        results = []
        for clip_log_posteriors in log_posteriors:
            clip_start = time.perf_counter()
            result = self._decode_log_posteriors(clip_log_posteriors)
            elapsed = shared_seconds + time.perf_counter() - clip_start
            results.append(Transcription(
                text=result.text, phonemes=result.phonemes,
                frame_labels=result.frame_labels, asr_name=self.name,
                elapsed_seconds=elapsed, extra=result.extra))
        return results
