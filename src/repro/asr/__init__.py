"""ASR simulators.

The paper's detector runs several heterogeneous off-the-shelf ASR systems
(DeepSpeech v0.1.0 / v0.1.1, Google Cloud Speech, Amazon Transcribe, and —
in an ablation — Kaldi).  None of those systems are available offline, so
this package provides simulated equivalents that follow the same pipeline
described in Section II of the paper (feature extraction → acoustic feature
recognition → phoneme assembling → language generation) while differing in
frame geometry, feature space, learned acoustic projections and decoding
strategy.  That diversity, not any specific architecture, is what the
MVP-inspired detection approach relies on.
"""

from repro.asr.base import ASRSystem, Transcription
from repro.asr.acoustic import TemplateAcousticModel
from repro.asr.decoder import (
    WordDecoder,
    collapse_frame_labels,
    greedy_frame_labels,
    smoothed_frame_labels,
    viterbi_frame_labels,
)
from repro.asr.deepspeech import DeepSpeechV010, DeepSpeechV011
from repro.asr.google import GoogleCloudSpeech
from repro.asr.amazon import AmazonTranscribe
from repro.asr.kaldi import Kaldi
from repro.asr.registry import (
    ASR_NAMES,
    build_asr,
    default_asr_suite,
    get_shared_lexicon,
    get_shared_language_model,
    get_training_synthesizer,
)

__all__ = [
    "ASRSystem",
    "Transcription",
    "TemplateAcousticModel",
    "WordDecoder",
    "collapse_frame_labels",
    "greedy_frame_labels",
    "smoothed_frame_labels",
    "viterbi_frame_labels",
    "DeepSpeechV010",
    "DeepSpeechV011",
    "GoogleCloudSpeech",
    "AmazonTranscribe",
    "Kaldi",
    "ASR_NAMES",
    "build_asr",
    "default_asr_suite",
    "get_shared_lexicon",
    "get_shared_language_model",
    "get_training_synthesizer",
]
