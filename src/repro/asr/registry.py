"""Construction and caching of the ASR suite.

Building an ASR simulator involves synthesising phoneme exemplars and
fitting acoustic templates, so the registry caches one instance per system
and shares a single lexicon, language model and training synthesiser across
the whole suite (mirroring how the paper uses fixed, off-the-shelf models).
"""

from __future__ import annotations

from functools import lru_cache

from repro.asr.amazon import AmazonTranscribe
from repro.asr.base import ASRSystem
from repro.asr.deepspeech import DeepSpeechV010, DeepSpeechV011
from repro.asr.google import GoogleCloudSpeech
from repro.asr.kaldi import Kaldi
from repro.audio.synthesis import SpeechSynthesizer
from repro.config import SAMPLE_RATE
from repro.text.corpus import (
    attack_command_corpus,
    combined_vocabulary,
    commonvoice_like_corpus,
    librispeech_like_corpus,
)
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon

#: Short names of the systems used in the paper's evaluation.
ASR_NAMES: tuple[str, ...] = ("DS0", "DS1", "GCS", "AT")


@lru_cache(maxsize=1)
def get_shared_lexicon() -> Lexicon:
    """Pronunciation lexicon covering every built-in corpus."""
    return Lexicon(combined_vocabulary())


@lru_cache(maxsize=1)
def get_shared_language_model() -> BigramLanguageModel:
    """Bigram language model trained on the benign and attack corpora."""
    model = BigramLanguageModel()
    model.fit(librispeech_like_corpus())
    model.fit(commonvoice_like_corpus())
    model.fit(attack_command_corpus())
    model.fit(attack_command_corpus(two_word_only=True))
    return model


@lru_cache(maxsize=1)
def get_training_synthesizer() -> SpeechSynthesizer:
    """Synthesiser used to build acoustic templates (fixed seed)."""
    return SpeechSynthesizer(sample_rate=SAMPLE_RATE,
                             lexicon=get_shared_lexicon(), seed=7)


@lru_cache(maxsize=16)
def build_asr(short_name: str) -> ASRSystem:
    """Build (or fetch the cached) ASR simulator for ``short_name``.

    Recognised names: ``DS0``, ``DS1``, ``GCS``, ``AT``, ``KAL`` and
    ``KAL-fs3`` (the Kaldi variant with frame subsampling factor 3).
    """
    lexicon = get_shared_lexicon()
    language_model = get_shared_language_model()
    synthesizer = get_training_synthesizer()
    kwargs = dict(lexicon=lexicon, language_model=language_model,
                  synthesizer=synthesizer, sample_rate=SAMPLE_RATE)
    if short_name == "DS0":
        return DeepSpeechV010(**kwargs)
    if short_name == "DS1":
        return DeepSpeechV011(**kwargs)
    if short_name == "GCS":
        return GoogleCloudSpeech(**kwargs)
    if short_name == "AT":
        return AmazonTranscribe(**kwargs)
    if short_name == "KAL":
        return Kaldi(**kwargs)
    if short_name.startswith("KAL-fs"):
        factor = int(short_name.removeprefix("KAL-fs"))
        return Kaldi(frame_subsampling_factor=factor, **kwargs)
    raise KeyError(f"unknown ASR short name {short_name!r}")


def default_asr_suite() -> dict[str, ASRSystem]:
    """The target model and the three auxiliary models used by the paper."""
    return {name: build_asr(name) for name in ASR_NAMES}
