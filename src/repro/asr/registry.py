"""The open ASR registry: construction, caching and plugins.

The multiversion suite is *not* fixed: any callable that produces an
:class:`~repro.asr.base.ASRSystem` can be registered under a short name
with :func:`register_asr`, after which it participates in suites,
:class:`~repro.specs.SuiteSpec` configs and the CLI exactly like the
built-in simulators.  The paper's four evaluation systems (``DS0``,
``DS1``, ``GCS``, ``AT``) are simply the entries registered at import
time with ``default_suite=True``; :func:`default_asr_suite` and the
auxiliary order used by the scored datasets are derived from those
registrations, not from a hardcoded list.

Building an ASR simulator involves synthesising phoneme exemplars and
fitting acoustic templates, so the registry caches one instance per
name and shares a single lexicon, language model and training
synthesiser across the whole suite (mirroring how the paper uses fixed,
off-the-shelf models).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.asr.amazon import AmazonTranscribe
from repro.asr.base import ASRSystem
from repro.asr.deepspeech import DeepSpeechV010, DeepSpeechV011
from repro.asr.google import GoogleCloudSpeech
from repro.asr.kaldi import Kaldi
from repro.audio.synthesis import SpeechSynthesizer
from repro.config import SAMPLE_RATE
from repro.errors import UnknownComponentError
from repro.text.corpus import (
    attack_command_corpus,
    combined_vocabulary,
    commonvoice_like_corpus,
    librispeech_like_corpus,
)
from repro.text.language_model import BigramLanguageModel
from repro.text.lexicon import Lexicon


@lru_cache(maxsize=1)
def get_shared_lexicon() -> Lexicon:
    """Pronunciation lexicon covering every built-in corpus."""
    return Lexicon(combined_vocabulary())


@lru_cache(maxsize=1)
def get_shared_language_model() -> BigramLanguageModel:
    """Bigram language model trained on the benign and attack corpora."""
    model = BigramLanguageModel()
    model.fit(librispeech_like_corpus())
    model.fit(commonvoice_like_corpus())
    model.fit(attack_command_corpus())
    model.fit(attack_command_corpus(two_word_only=True))
    return model


@lru_cache(maxsize=1)
def get_training_synthesizer() -> SpeechSynthesizer:
    """Synthesiser used to build acoustic templates (fixed seed)."""
    return SpeechSynthesizer(sample_rate=SAMPLE_RATE,
                             lexicon=get_shared_lexicon(), seed=7)


def shared_asr_kwargs() -> dict:
    """The shared resources handed to every built-in ASR constructor.

    Exposed so plugin factories can opt into the same lexicon, language
    model and training synthesiser as the built-ins::

        register_asr("MY", lambda: MyASR(**shared_asr_kwargs()))
    """
    return dict(lexicon=get_shared_lexicon(),
                language_model=get_shared_language_model(),
                synthesizer=get_training_synthesizer(),
                sample_rate=SAMPLE_RATE)


# ------------------------------------------------------------------ registry
_FACTORIES: dict[str, Callable[[], ASRSystem]] = {}
_DEFAULT_SUITE: list[str] = []
_INSTANCES: dict[str, ASRSystem] = {}


def register_asr(name: str, factory: Callable[[], ASRSystem],
                 default_suite: bool = False) -> None:
    """Register an ASR factory under ``name`` (overwrites allowed).

    Args:
        name: short name the system is addressed by in suites, specs and
            on the CLI (e.g. ``"DS0"``, ``"whisper-tiny"``).
        factory: zero-argument callable returning a fresh
            :class:`~repro.asr.base.ASRSystem`; called at most once —
            the instance is cached process-wide.  Use
            :func:`shared_asr_kwargs` to share the built-ins' lexicon /
            language model / synthesiser.
        default_suite: include the name in :func:`default_suite_names`
            (the paper's target-first suite order).  Leave ``False`` for
            plugins: registering a system makes it *available*, it does
            not silently change what the default system builds.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"ASR name must be a non-empty string, got {name!r}")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)          # a re-registration replaces the cache
    if default_suite and name not in _DEFAULT_SUITE:
        _DEFAULT_SUITE.append(name)


def unregister_asr(name: str) -> None:
    """Remove a registered ASR (no-op if absent).  Mainly for tests.

    Unregistering a name that shadows a built-in restores the built-in
    factory instead of leaving a hole in the paper's suite; built-ins
    keep their default-suite position throughout.
    """
    if name in _BUILTINS:
        _FACTORIES[name] = _BUILTINS[name]
        _INSTANCES.pop(name, None)
        return
    _FACTORIES.pop(name, None)
    _INSTANCES.pop(name, None)
    if name in _DEFAULT_SUITE:
        _DEFAULT_SUITE.remove(name)


def available_asr_names() -> tuple[str, ...]:
    """Sorted names of every registered ASR system (built-ins + plugins).

    Parameterised Kaldi variants (``KAL-fs<N>``) resolve through
    :func:`build_asr` as well but are unbounded, so they are not listed.
    """
    return tuple(sorted(_FACTORIES))


def default_suite_names() -> tuple[str, ...]:
    """The paper's suite in target-first order (``DS0``, then auxiliaries).

    Derived from the registrations flagged ``default_suite=True``, in
    registration order — the single source the scored-dataset auxiliary
    order and :func:`default_asr_suite` are computed from.
    """
    return tuple(_DEFAULT_SUITE)


def _dynamic_factory(short_name: str) -> Callable[[], ASRSystem] | None:
    """Factory for the parameterised name families.

    Two families resolve dynamically: ``KAL-fs<N>`` (Kaldi with frame
    subsampling factor ``N``) and ``sim-<NN>`` (member ``NN`` of the
    generated simulated family, see :mod:`repro.backends.family`).
    """
    if not isinstance(short_name, str):
        return None
    if short_name.startswith("KAL-fs"):
        suffix = short_name.removeprefix("KAL-fs")
        if suffix.isdigit():
            factor = int(suffix)
            return lambda: Kaldi(frame_subsampling_factor=factor,
                                 **shared_asr_kwargs())
    if short_name.startswith("sim-"):
        suffix = short_name.removeprefix("sim-")
        if suffix.isdigit():
            index = int(suffix)

            def build_member() -> ASRSystem:
                # Imported lazily: repro.backends imports this module.
                from repro.backends.family import (
                    build_family_member,
                    family_member_config,
                )
                return build_family_member(family_member_config(index))

            return build_member
    return None


def asr_name_resolvable(short_name) -> bool:
    """Whether :func:`build_asr` would resolve ``short_name``.

    The single source of truth for spec validation: a registered name
    (built-in or plugin) or a member of a parameterised family.
    """
    return short_name in _FACTORIES or _dynamic_factory(short_name) is not None


def build_asr(short_name: str) -> ASRSystem:
    """Build (or fetch the cached) ASR simulator for ``short_name``.

    Resolves built-ins (``DS0``, ``DS1``, ``GCS``, ``AT``, ``KAL``),
    systems added via :func:`register_asr`, and the parameterised Kaldi
    family ``KAL-fs<N>`` (frame subsampling factor ``N``).  One instance
    is cached per name.
    """
    instance = _INSTANCES.get(short_name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(short_name) or _dynamic_factory(short_name)
    if factory is None:
        raise UnknownComponentError("ASR system", short_name,
                                    available_asr_names())
    instance = _INSTANCES[short_name] = factory()
    return instance


def build_fresh_asr(short_name: str) -> ASRSystem:
    """Build a new, uncached instance of ``short_name``.

    Unlike :func:`build_asr`, the process-wide instance cache is neither
    consulted nor populated.  Used where shared mutable state (decoder
    segment caches, attached feature engines) must not leak between
    configurations — e.g. the reference path of the pipeline benchmark.
    """
    factory = _FACTORIES.get(short_name) or _dynamic_factory(short_name)
    if factory is None:
        raise UnknownComponentError("ASR system", short_name,
                                    available_asr_names())
    return factory()


def default_asr_suite() -> dict[str, ASRSystem]:
    """The target model and the paper's auxiliary models, by short name.

    Derived from the registry's default-suite flags; registering extra
    plugins does not change it.
    """
    return {name: build_asr(name) for name in default_suite_names()}


# The paper's evaluation systems.  DS0 is the target; DS1/GCS/AT are the
# auxiliary suite of the headline DS0+{DS1, GCS, AT} system.
register_asr("DS0", lambda: DeepSpeechV010(**shared_asr_kwargs()),
             default_suite=True)
register_asr("DS1", lambda: DeepSpeechV011(**shared_asr_kwargs()),
             default_suite=True)
register_asr("GCS", lambda: GoogleCloudSpeech(**shared_asr_kwargs()),
             default_suite=True)
register_asr("AT", lambda: AmazonTranscribe(**shared_asr_kwargs()),
             default_suite=True)
register_asr("KAL", lambda: Kaldi(**shared_asr_kwargs()))

#: Snapshot of the built-in factories: what :func:`unregister_asr`
#: restores when a shadowing plugin is removed (built-ins never leave
#: the registry or their default-suite position).
_BUILTINS: dict[str, Callable[[], ASRSystem]] = dict(_FACTORIES)

#: Short names of the systems used in the paper's evaluation, in
#: target-first order.  Derived from the registry, kept as a module
#: constant for backwards compatibility.
ASR_NAMES: tuple[str, ...] = default_suite_names()
