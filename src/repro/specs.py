"""The declarative spec tree: every detection system as one value.

A :class:`DetectorSpec` describes a complete detection system — the ASR
suite, the similarity scoring configuration, the classifier, the
execution layer and the serving layer — as a tree of small frozen
dataclasses.  Specs are plain data: they can be compared, hashed,
round-tripped through ``to_dict``/``from_dict`` and JSON files, overlaid
with environment variables, validated field by field, and handed to
:func:`repro.build.build` to produce a fitted detector.  A reproducible
experiment is therefore a JSON file, not a pile of keyword arguments.

The tree::

    DetectorSpec
    ├── suite:      SuiteSpec        # target + auxiliary versions
    │   ├── target:      ASRSpec    # registry name (+ optional transform)
    │   └── auxiliaries: (ASRSpec, ...)
    │                     └── transform: TransformSpec | None
    ├── scoring:    ScoringSpec      # method, backend, pair-score cache
    ├── classifier: ClassifierSpec   # registry name
    ├── pipeline:   PipelineSpec     # workers, transcription cache
    │   └── features:    FeaturesSpec  # front-end backend + feature cache
    ├── serving:    ServingSpec      # stream windows, micro-batching
    └── training:   TrainingSpec     # scale preset, seed, data source

Component *names* inside the tree resolve through the open registries
(:func:`repro.asr.registry.register_asr` and friends), so a spec can
reference user plugins as freely as built-ins.  Validation
(:meth:`DetectorSpec.validate`) checks every name against its registry
and reports **all** problems at once, each naming the offending field
and the allowed values.

Environment overlay: :meth:`DetectorSpec.with_env_overlay` folds the
``REPRO_*`` variables (see :data:`ENV_OVERLAYS`) onto a spec, so the
precedence everywhere is *explicit flags > environment > config file >
built-in defaults* — :meth:`DetectorSpec.load` applies it after reading
a JSON file.
"""

from __future__ import annotations

import json
import os
import weakref
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.config import DEFAULT_SEED, scale_names
from repro.errors import UnknownComponentError

#: The defense modes :meth:`DetectorSpec.default` can express as suites.
DEFENSE_MODES: tuple[str, ...] = ("multi-asr", "transform", "combined")

#: Where :meth:`TrainingSpec` may draw its training data from.
TRAINING_SOURCES: tuple[str, ...] = ("auto", "scored", "bundle")

#: Audio transports :class:`ServingSpec` can route dispatches through.
SERVE_TRANSPORTS: tuple[str, ...] = ("shm", "pickle")

#: Dataset scale presets, derived from :mod:`repro.config`'s registry.
SCALE_NAMES: tuple[str, ...] = scale_names()


#: Identities of DetectorSpec instances that already passed validate()
#: (entries are discarded when the instance is garbage-collected).
_VALIDATED_IDS: set[int] = set()


class InvalidSpecError(ValueError):
    """A spec failed validation.

    ``problems`` lists every offending field as
    ``"<path>: <what is wrong; allowed values>"`` — all of them, not
    just the first, so a config file can be fixed in one pass.
    """

    def __init__(self, problems: Sequence[str]):
        self.problems = tuple(problems)
        super().__init__(
            "invalid spec (%d problem%s):\n  %s" % (
                len(self.problems), "s" if len(self.problems) != 1 else "",
                "\n  ".join(self.problems)))


# ----------------------------------------------------------------- utilities
def _check_keys(data: Mapping, cls, path: str) -> None:
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise InvalidSpecError([
            f"{path}: unknown field {name!r} "
            f"(allowed: {sorted(allowed)})" for name in unknown])


def _expect_mapping(data: Any, path: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise InvalidSpecError(
            [f"{path}: expected an object, got {type(data).__name__}"])
    return data


def _coerce(value: Any, kind: Callable, path: str, none_ok: bool = False):
    if value is None:
        if none_ok:
            return None
        raise InvalidSpecError([f"{path}: must not be null"])
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise InvalidSpecError(
            [f"{path}: expected {kind.__name__}, got {value!r}"]) from None


# ------------------------------------------------------------------ ASR suite
@dataclass(frozen=True)
class TransformSpec:
    """One input transformation in compact parse syntax.

    ``spec`` is the syntax :func:`repro.defenses.transforms.parse_transform`
    accepts: ``"quantize:8"``, ``"lowpass:3000"``, chains like
    ``"quantize:8+lowpass:3000"``.  Serialises as the bare string.
    """

    spec: str

    def build(self):
        """The configured :class:`~repro.defenses.transforms.Transform`."""
        from repro.defenses.transforms import parse_transform
        return parse_transform(self.spec)

    def problems(self, path: str = "transform") -> list[str]:
        from repro.defenses.transforms import parse_transform
        try:
            parse_transform(self.spec)
        except ValueError as exc:
            return [f"{path}: {exc}"]
        return []

    @classmethod
    def from_value(cls, value: Any, path: str) -> "TransformSpec":
        if isinstance(value, TransformSpec):
            return value
        if isinstance(value, str):
            return cls(value)
        raise InvalidSpecError(
            [f"{path}: expected a transform spec string, got {value!r}"])


@dataclass(frozen=True)
class ASRSpec:
    """One suite member: a registered ASR, optionally heard through a
    transform.

    ``name`` resolves through the open ASR registry
    (:func:`repro.asr.registry.build_asr` — built-ins and
    :func:`~repro.asr.registry.register_asr` plugins alike).  With
    ``transform`` set, the member is a
    :class:`~repro.defenses.ensemble.TransformedASR` view: the named
    model hearing the transformed audio.  Serialises as the bare name
    string when there is no transform.
    """

    name: str
    transform: TransformSpec | None = None

    def to_dict(self) -> dict | str:
        if self.transform is None:
            return self.name
        return {"name": self.name, "transform": self.transform.spec}

    @classmethod
    def from_value(cls, value: Any, path: str) -> "ASRSpec":
        if isinstance(value, ASRSpec):
            return value
        if isinstance(value, str):
            return cls(value)
        data = _expect_mapping(value, path)
        _check_keys(data, cls, path)
        if "name" not in data:
            raise InvalidSpecError([f"{path}: missing required field 'name'"])
        name = _coerce(data["name"], str, f"{path}.name")
        transform = data.get("transform")
        if transform is not None:
            transform = TransformSpec.from_value(transform, f"{path}.transform")
        return cls(name=name, transform=transform)

    def problems(self, path: str = "asr") -> list[str]:
        from repro.asr.registry import asr_name_resolvable, available_asr_names
        out = []
        if not self.name or not isinstance(self.name, str):
            out.append(f"{path}.name: must be a non-empty string")
        elif not asr_name_resolvable(self.name):
            out.append(f"{path}.name: unknown ASR system {self.name!r}; "
                       f"available: {list(available_asr_names())}")
        if self.transform is not None:
            out.extend(self.transform.problems(f"{path}.transform"))
        return out


def _default_target() -> "ASRSpec":
    from repro.asr.registry import default_suite_names
    return ASRSpec(default_suite_names()[0])


def _default_auxiliaries() -> tuple["ASRSpec", ...]:
    from repro.asr.registry import default_suite_names
    return tuple(ASRSpec(name) for name in default_suite_names()[1:])


@dataclass(frozen=True)
class SuiteSpec:
    """The multiversion suite: one target, any mix of auxiliary versions.

    Auxiliaries may freely mix built-in ASRs, registered plugins and
    transformed views (of the target or of any other member) — the
    diversity knob the paper's detection strength comes from.  Defaults
    to the paper's headline DS0+{DS1, GCS, AT} suite, derived from the
    registry's default-suite registrations.
    """

    target: ASRSpec = field(default_factory=_default_target)
    auxiliaries: tuple[ASRSpec, ...] = field(
        default_factory=_default_auxiliaries)

    def to_dict(self) -> dict:
        return {"target": self.target.to_dict(),
                "auxiliaries": [aux.to_dict() for aux in self.auxiliaries]}

    @classmethod
    def from_dict(cls, data: Any, path: str = "suite") -> "SuiteSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: dict = {}
        if "target" in data:
            kwargs["target"] = ASRSpec.from_value(data["target"],
                                                  f"{path}.target")
        if "auxiliaries" in data:
            raw = data["auxiliaries"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise InvalidSpecError(
                    [f"{path}.auxiliaries: expected a list, got {raw!r}"])
            kwargs["auxiliaries"] = tuple(
                ASRSpec.from_value(item, f"{path}.auxiliaries[{i}]")
                for i, item in enumerate(raw))
        return cls(**kwargs)

    def problems(self, path: str = "suite") -> list[str]:
        out = self.target.problems(f"{path}.target")
        if not self.auxiliaries:
            out.append(f"{path}.auxiliaries: at least one auxiliary version "
                       f"is required")
        for i, aux in enumerate(self.auxiliaries):
            out.extend(aux.problems(f"{path}.auxiliaries[{i}]"))
        return out


# ------------------------------------------------------------------- scoring
def _default_scorer() -> str:
    from repro.similarity.scorer import DEFAULT_METHOD
    return DEFAULT_METHOD


def _default_backend() -> str:
    from repro.similarity.engine import DEFAULT_SCORING_BACKEND
    return DEFAULT_SCORING_BACKEND


@dataclass(frozen=True)
class ScoringSpec:
    """The similarity scoring stage.

    Attributes:
        scorer: similarity method name (Table III; default the paper's
            ``PE_JaroWinkler``).
        backend: scoring backend registry name (``"fast"`` /
            ``"reference"`` / a registered plugin).
        cache: pair-score cache policy — ``"shared"``, ``"private"``,
            ``"off"`` or an on-disk JSON path (see
            :func:`repro.similarity.engine.resolve_score_cache`).
    """

    scorer: str = field(default_factory=_default_scorer)
    backend: str = field(default_factory=_default_backend)
    cache: str = "shared"

    def to_dict(self) -> dict:
        return {"scorer": self.scorer, "backend": self.backend,
                "cache": self.cache}

    @classmethod
    def from_dict(cls, data: Any, path: str = "scoring") -> "ScoringSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs = {key: _coerce(data[key], str, f"{path}.{key}")
                  for key in ("scorer", "backend", "cache") if key in data}
        return cls(**kwargs)

    def problems(self, path: str = "scoring") -> list[str]:
        from repro.caching import check_cache_policy
        from repro.similarity.engine import scoring_backend_names
        from repro.similarity.scorer import available_method_names
        out = []
        if self.scorer not in available_method_names():
            out.append(f"{path}.scorer: unknown similarity method "
                       f"{self.scorer!r}; available: "
                       f"{list(available_method_names())}")
        if self.backend not in scoring_backend_names():
            out.append(f"{path}.backend: unknown scoring backend "
                       f"{self.backend!r}; available: "
                       f"{list(scoring_backend_names())}")
        try:
            # Policy check only — validation must not read cache files.
            check_cache_policy(self.cache, "score-cache policy")
        except UnknownComponentError as exc:
            out.append(f"{path}.cache: {exc}")
        return out


# ---------------------------------------------------------------- classifier
@dataclass(frozen=True)
class ClassifierSpec:
    """The binary classifier, by registry name (default: the paper's SVM)."""

    name: str = "SVM"

    def to_dict(self) -> dict:
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data: Any, path: str = "classifier") -> "ClassifierSpec":
        if isinstance(data, str):        # shorthand: "SVM"
            return cls(data)
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs = {}
        if "name" in data:
            kwargs["name"] = _coerce(data["name"], str, f"{path}.name")
        return cls(**kwargs)

    def problems(self, path: str = "classifier") -> list[str]:
        from repro.ml.registry import available_classifier_names
        if self.name not in available_classifier_names():
            return [f"{path}.name: unknown classifier {self.name!r}; "
                    f"available: {list(available_classifier_names())}"]
        return []


# ------------------------------------------------------------------ pipeline
@dataclass(frozen=True)
class FeaturesSpec:
    """The front-end feature stage: compute backend and feature cache.

    Attributes:
        backend: feature backend registry name (``"fast"`` — batch
            vectorized, the default — / ``"reference"`` — the per-clip
            seed path — / a registered plugin), or ``"off"`` to disable
            the shared :class:`~repro.dsp.engine.FeatureEngine` entirely
            so every ASR runs its own front end from raw samples.
        cache: feature cache policy — ``"shared"``, ``"private"``,
            ``"off"`` or an on-disk ``.npz`` path (see
            :func:`repro.dsp.engine.resolve_feature_cache`).
    """

    backend: str = "fast"
    cache: str = "shared"

    def to_dict(self) -> dict:
        return {"backend": self.backend, "cache": self.cache}

    @classmethod
    def from_dict(cls, data: Any, path: str = "pipeline.features"
                  ) -> "FeaturesSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs = {key: _coerce(data[key], str, f"{path}.{key}")
                  for key in ("backend", "cache") if key in data}
        return cls(**kwargs)

    def problems(self, path: str = "pipeline.features") -> list[str]:
        from repro.caching import check_cache_policy
        from repro.dsp.engine import feature_backend_names
        out = []
        if self.backend != "off" \
                and self.backend not in feature_backend_names():
            out.append(f"{path}.backend: unknown feature backend "
                       f"{self.backend!r}; available: "
                       f"{['off', *feature_backend_names()]}")
        try:
            # Policy check only — validation must not read cache files.
            check_cache_policy(self.cache, "feature-cache policy",
                               suffixes=(".npz",))
        except UnknownComponentError as exc:
            out.append(f"{path}.cache: {exc}")
        return out


@dataclass(frozen=True)
class PipelineSpec:
    """The execution layer: transcription fan-out, caching, front end.

    Attributes:
        workers: worker-pool size (``0`` = the paper-faithful sequential
            path, ``None`` = ``REPRO_WORKERS`` / CPU count).
        cache: transcription cache policy — ``"shared"``, ``"private"``,
            ``"off"`` or an on-disk JSON path (see
            :func:`repro.pipeline.engine.resolve_transcription_cache`).
        features: the front-end feature stage (see :class:`FeaturesSpec`).
    """

    workers: int | None = None
    cache: str = "shared"
    features: FeaturesSpec = field(default_factory=FeaturesSpec)

    def to_dict(self) -> dict:
        return {"workers": self.workers, "cache": self.cache,
                "features": self.features.to_dict()}

    @classmethod
    def from_dict(cls, data: Any, path: str = "pipeline") -> "PipelineSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: dict = {}
        if "workers" in data:
            kwargs["workers"] = _coerce(data["workers"], int,
                                        f"{path}.workers", none_ok=True)
        if "cache" in data:
            kwargs["cache"] = _coerce(data["cache"], str, f"{path}.cache")
        if "features" in data:
            kwargs["features"] = FeaturesSpec.from_dict(data["features"],
                                                        f"{path}.features")
        return cls(**kwargs)

    def problems(self, path: str = "pipeline") -> list[str]:
        from repro.caching import check_cache_policy
        out = []
        if self.workers is not None and self.workers < 0:
            out.append(f"{path}.workers: must be >= 0 or null, "
                       f"got {self.workers}")
        try:
            # Policy check only — validation must not read cache files.
            check_cache_policy(self.cache, "transcription-cache policy")
        except UnknownComponentError as exc:
            out.append(f"{path}.cache: {exc}")
        out.extend(self.features.problems(f"{path}.features"))
        return out


# ------------------------------------------------------------------- serving
@dataclass(frozen=True)
class ServingSpec:
    """The serving layer: stream windowing, micro-batching, workers.

    The stream fields mirror :class:`repro.serving.chunker.StreamConfig`;
    the batch fields mirror :class:`repro.serving.batcher.MicroBatcher`;
    the pool fields configure
    :class:`repro.serving.service.DetectionService` — ``workers``
    worker processes (``0`` = run requests inline in the caller),
    admission control rejecting new requests once ``queue_depth``
    requests are pending, and a per-request deadline of
    ``request_timeout_seconds`` (``None`` disables the deadline).
    """

    window_seconds: float = 2.0
    hop_seconds: float | None = None
    min_tail_fraction: float = 0.25
    trigger_windows: int = 2
    release_windows: int = 2
    max_batch_size: int = 8
    max_latency_seconds: float = 0.01
    workers: int = 2
    queue_depth: int = 64
    request_timeout_seconds: float | None = 30.0
    #: Audio data plane between the dispatcher and the worker pool:
    #: ``"shm"`` (default) writes samples once into a shared-memory
    #: arena and ships only descriptors through the task queues —
    #: falling back to ``"pickle"`` per dispatch when the arena is full
    #: and wholesale when shared memory is unavailable; ``"pickle"``
    #: ships the full sample arrays through the queues.
    transport: str = "shm"

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Any, path: str = "serving") -> "ServingSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: dict = {}
        for name, kind, none_ok in (
                ("window_seconds", float, False),
                ("hop_seconds", float, True),
                ("min_tail_fraction", float, False),
                ("trigger_windows", int, False),
                ("release_windows", int, False),
                ("max_batch_size", int, False),
                ("max_latency_seconds", float, False),
                ("workers", int, False),
                ("queue_depth", int, False),
                ("request_timeout_seconds", float, True),
                ("transport", str, False)):
            if name in data:
                kwargs[name] = _coerce(data[name], kind, f"{path}.{name}",
                                       none_ok=none_ok)
        return cls(**kwargs)

    def stream_config(self):
        """The equivalent :class:`~repro.serving.chunker.StreamConfig`."""
        from repro.serving.chunker import StreamConfig
        return StreamConfig(window_seconds=self.window_seconds,
                            hop_seconds=self.hop_seconds,
                            min_tail_fraction=self.min_tail_fraction,
                            trigger_windows=self.trigger_windows,
                            release_windows=self.release_windows)

    def problems(self, path: str = "serving") -> list[str]:
        out = []
        try:
            self.stream_config()
        except ValueError as exc:
            out.append(f"{path}: {exc}")
        if self.max_batch_size < 1:
            out.append(f"{path}.max_batch_size: must be >= 1, "
                       f"got {self.max_batch_size}")
        if self.max_latency_seconds < 0:
            out.append(f"{path}.max_latency_seconds: must be >= 0, "
                       f"got {self.max_latency_seconds}")
        if self.workers < 0:
            out.append(f"{path}.workers: must be >= 0, got {self.workers}")
        if self.queue_depth < 1:
            out.append(f"{path}.queue_depth: must be >= 1, "
                       f"got {self.queue_depth}")
        if (self.request_timeout_seconds is not None
                and self.request_timeout_seconds <= 0):
            out.append(f"{path}.request_timeout_seconds: must be > 0 or "
                       f"null, got {self.request_timeout_seconds}")
        if self.transport not in SERVE_TRANSPORTS:
            out.append(f"{path}.transport: unknown transport "
                       f"{self.transport!r}; available: "
                       f"{list(SERVE_TRANSPORTS)}")
        return out


# ------------------------------------------------------------------ training
@dataclass(frozen=True)
class TrainingSpec:
    """How the classifier is fitted.

    Attributes:
        scale: dataset scale preset (``tiny``/``small``/``medium``/
            ``paper``; ``None`` reads ``REPRO_SCALE``, defaulting to
            ``small``).
        seed: dataset seed (default: the paper's Random Forest seed).
        source: ``"scored"`` fits on the pre-computed scored dataset
            (only valid for plain-ASR suites covered by it),
            ``"bundle"`` extracts fresh features from the audio bundle,
            ``"auto"`` picks ``scored`` when the suite allows it.
    """

    scale: str | None = None
    seed: int = DEFAULT_SEED
    source: str = "auto"

    def to_dict(self) -> dict:
        return {"scale": self.scale, "seed": self.seed, "source": self.source}

    @classmethod
    def from_dict(cls, data: Any, path: str = "training") -> "TrainingSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: dict = {}
        if "scale" in data:
            kwargs["scale"] = _coerce(data["scale"], str, f"{path}.scale",
                                      none_ok=True)
        if "seed" in data:
            kwargs["seed"] = _coerce(data["seed"], int, f"{path}.seed")
        if "source" in data:
            kwargs["source"] = _coerce(data["source"], str, f"{path}.source")
        return cls(**kwargs)

    def problems(self, path: str = "training") -> list[str]:
        out = []
        if self.scale is not None and self.scale not in SCALE_NAMES:
            out.append(f"{path}.scale: unknown scale preset {self.scale!r}; "
                       f"available: {list(SCALE_NAMES)}")
        if self.source not in TRAINING_SOURCES:
            out.append(f"{path}.source: unknown training source "
                       f"{self.source!r}; available: {list(TRAINING_SOURCES)}")
        return out


# ---------------------------------------------------------------- env overlay
#: ``REPRO_*`` variables folded onto a spec by
#: :meth:`DetectorSpec.with_env_overlay`: variable name ->
#: (dotted spec path, parser).  One table instead of scattered
#: ``os.environ`` reads; environment values win over config-file values.
ENV_OVERLAYS: dict[str, tuple[str, Callable[[str], Any]]] = {
    "REPRO_SCALE": ("training.scale", str),
    "REPRO_WORKERS": ("pipeline.workers", int),
    "REPRO_TRANSCRIPTION_CACHE": ("pipeline.cache", str),
    "REPRO_FEATURE_BACKEND": ("pipeline.features.backend", str),
    "REPRO_FEATURE_CACHE": ("pipeline.features.cache", str),
    "REPRO_SCORE_CACHE": ("scoring.cache", str),
    "REPRO_SCORER": ("scoring.scorer", str),
    "REPRO_SCORING_BACKEND": ("scoring.backend", str),
    "REPRO_CLASSIFIER": ("classifier.name", str),
    "REPRO_SERVE_WORKERS": ("serving.workers", int),
    "REPRO_SERVE_QUEUE": ("serving.queue_depth", int),
    "REPRO_SERVE_TIMEOUT": ("serving.request_timeout_seconds", float),
    "REPRO_SERVE_TRANSPORT": ("serving.transport", str),
}


# ------------------------------------------------------------- detector spec
@dataclass(frozen=True)
class DetectorSpec:
    """A complete detection system, declaratively.

    Build one with :meth:`default` (the paper's presets), read one from
    JSON with :meth:`from_json`/:meth:`load`, or compose the sub-specs
    directly.  Hand it to :func:`repro.build.build` (fitted detector),
    :func:`repro.build.build_streaming` (streaming detector) or the CLI
    (``repro --config``).
    """

    suite: SuiteSpec = field(default_factory=SuiteSpec)
    scoring: ScoringSpec = field(default_factory=ScoringSpec)
    classifier: ClassifierSpec = field(default_factory=ClassifierSpec)
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    serving: ServingSpec = field(default_factory=ServingSpec)
    training: TrainingSpec = field(default_factory=TrainingSpec)

    # ------------------------------------------------------------- factories
    @classmethod
    def default(cls, target: str | None = None,
                auxiliaries: Iterable[str] | None = None,
                classifier: str = "SVM",
                scale: str | None = None,
                workers: int | None = None,
                cache: str = "shared",
                defense: str = "multi-asr",
                transforms: Any = None,
                scorer: str | None = None,
                scoring_backend: str | None = None,
                score_cache: str = "shared") -> "DetectorSpec":
        """The spec equivalent of the legacy ``default_detector`` kwargs.

        ``defense`` shapes the suite: ``"multi-asr"`` (the paper's
        system — diverse auxiliary models), ``"transform"`` (transformed
        views of the target as auxiliaries) or ``"combined"`` (both).
        ``transforms`` accepts a comma-separated spec string, a sequence
        of spec strings, or built :class:`Transform` instances that
        carry a ``spec`` (default: the standard five-transform suite).
        """
        from repro.asr.registry import default_suite_names
        if defense not in DEFENSE_MODES:
            raise UnknownComponentError("defense mode", defense, DEFENSE_MODES)
        target_name = target if target is not None else default_suite_names()[0]
        if auxiliaries is None:
            aux_names = tuple(default_suite_names()[1:])
        else:
            aux_names = tuple(auxiliaries)
        members: list[ASRSpec] = []
        if defense in ("multi-asr", "combined"):
            members.extend(ASRSpec(name) for name in aux_names)
        if defense in ("transform", "combined"):
            members.extend(ASRSpec(target_name, transform=spec)
                           for spec in _transform_specs(transforms))
        return cls(
            suite=SuiteSpec(target=ASRSpec(target_name),
                            auxiliaries=tuple(members)),
            scoring=ScoringSpec(
                scorer=scorer if scorer is not None else _default_scorer(),
                backend=(scoring_backend if scoring_backend is not None
                         else _default_backend()),
                cache=score_cache),
            classifier=ClassifierSpec(classifier),
            pipeline=PipelineSpec(workers=workers, cache=cache),
            # "auto" resolves to the pre-computed scored dataset exactly
            # when the suite is covered by it (the paper's systems) and
            # to the audio bundle otherwise — so a non-default target or
            # a plugin auxiliary never silently trains on DS0's scores.
            training=TrainingSpec(scale=scale, source="auto"),
        )

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {"suite": self.suite.to_dict(),
                "scoring": self.scoring.to_dict(),
                "classifier": self.classifier.to_dict(),
                "pipeline": self.pipeline.to_dict(),
                "serving": self.serving.to_dict(),
                "training": self.training.to_dict()}

    @classmethod
    def from_dict(cls, data: Any, path: str = "detector") -> "DetectorSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        sections = {"suite": SuiteSpec, "scoring": ScoringSpec,
                    "classifier": ClassifierSpec, "pipeline": PipelineSpec,
                    "serving": ServingSpec, "training": TrainingSpec}
        kwargs = {}
        problems: list[str] = []
        for name, section in sections.items():
            if name in data:
                try:
                    kwargs[name] = section.from_dict(data[name],
                                                     f"{path}.{name}")
                except InvalidSpecError as exc:
                    problems.extend(exc.problems)
        if problems:
            raise InvalidSpecError(problems)
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document (what :meth:`from_json` reads)."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def save(self, path: str) -> str:
        """Write the spec to a JSON file; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def from_json(cls, path: str) -> "DetectorSpec":
        """Read a spec from the JSON file at ``path`` (strictly parsed)."""
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise InvalidSpecError([f"{path}: not valid JSON: {exc}"]) \
                    from exc
        return cls.from_dict(data, path=os.path.basename(path))

    @classmethod
    def load(cls, path: str, env: Mapping[str, str] | None = None
             ) -> "DetectorSpec":
        """:meth:`from_json` plus the environment overlay (env wins)."""
        return cls.from_json(path).with_env_overlay(env)

    # -------------------------------------------------------------- overlays
    def with_env_overlay(self, env: Mapping[str, str] | None = None
                         ) -> "DetectorSpec":
        """A copy with every set ``REPRO_*`` variable folded in.

        Environment values take precedence over the spec's current
        (e.g. file-loaded) values; unset variables change nothing.
        """
        if env is None:
            env = os.environ
        spec = self
        for variable, (dotted, parse) in ENV_OVERLAYS.items():
            raw = env.get(variable)
            if raw is None or raw == "":
                continue
            try:
                value = parse(raw)
            except (TypeError, ValueError):
                raise InvalidSpecError(
                    [f"${variable}: expected {parse.__name__}, "
                     f"got {raw!r}"]) from None
            spec = spec.with_value(dotted, value)
        return spec

    def with_value(self, dotted: str, value: Any) -> "DetectorSpec":
        """A copy with the field at ``dotted`` path replaced.

        ``spec.with_value("scoring.backend", "reference")`` is the
        programmatic form of one flag/env overlay.  Paths may descend
        any number of levels (``"pipeline.features.backend"``).
        """
        return _replace_path(self, dotted, value)

    # ------------------------------------------------------------ validation
    def problems(self) -> list[str]:
        """Every validation problem, one message per offending field."""
        out = []
        out.extend(self.suite.problems("suite"))
        out.extend(self.scoring.problems("scoring"))
        out.extend(self.classifier.problems("classifier"))
        out.extend(self.pipeline.problems("pipeline"))
        out.extend(self.serving.problems("serving"))
        out.extend(self.training.problems("training"))
        return out

    def validate(self) -> "DetectorSpec":
        """Raise :class:`InvalidSpecError` listing *all* problems; else self.

        Validation of a given *instance* is memoised, so a spec threaded
        through several builders (``build_streaming`` ->
        ``StreamingDetector.from_spec`` -> ``build``) pays the registry
        walk once.  Mutating a registry after an instance validated (a
        test unregistering a plugin) does not re-flag that instance;
        construct a fresh spec to re-check.
        """
        if id(self) in _VALIDATED_IDS:
            return self
        problems = self.problems()
        if problems:
            raise InvalidSpecError(problems)
        _VALIDATED_IDS.add(id(self))
        weakref.finalize(self, _VALIDATED_IDS.discard, id(self))
        return self


def _replace_path(node: Any, dotted: str, value: Any):
    """Replace the field at ``dotted`` in a nested frozen-dataclass tree."""
    head, _, rest = dotted.partition(".")
    if not rest:
        return replace(node, **{head: value})
    return replace(node,
                   **{head: _replace_path(getattr(node, head), rest, value)})


# ----------------------------------------------------------- experiment spec
#: ``REPRO_*`` variables folded onto an :class:`ExperimentSpec` by its
#: :meth:`~ExperimentSpec.with_env_overlay` (the detector subtree gets
#: the full :data:`ENV_OVERLAYS` table on top).
EXPERIMENT_ENV_OVERLAYS: dict[str, tuple[str, Callable[[str], Any]]] = {
    "REPRO_SCALE": ("scale", str),
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment run, declaratively (see docs/EXPERIMENTS.md).

    Attributes:
        experiment: registry name of the experiment
            (:func:`repro.experiments.registry.experiment_names`).
        scale: dataset scale preset (``None`` reads ``REPRO_SCALE``,
            defaulting to ``small``).
        seed: dataset seed (the bundle / scored-dataset seed, not the
            experiment-internal seeds — those live in :attr:`params`).
        workers: shard worker *processes* (``0`` = run shards inline).
        params: experiment-specific knobs overriding the experiment's
            declared defaults (e.g. ``{"n_splits": 3}``).
        detector: :class:`DetectorSpec` overlay consulted by experiments
            that build detectors or classifiers (``classifier.name``,
            ``scoring.scorer``, ``scoring.backend``, ...); sweeps vary
            its dotted paths per grid point.
    """

    experiment: str = ""
    scale: str | None = None
    seed: int = DEFAULT_SEED
    workers: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    detector: DetectorSpec = field(default_factory=DetectorSpec)

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {"experiment": self.experiment, "scale": self.scale,
                "seed": self.seed, "workers": self.workers,
                "params": dict(self.params),
                "detector": self.detector.to_dict()}

    @classmethod
    def from_dict(cls, data: Any, path: str = "experiment") -> "ExperimentSpec":
        data = _expect_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: dict = {}
        if "experiment" in data:
            kwargs["experiment"] = _coerce(data["experiment"], str,
                                           f"{path}.experiment")
        if "scale" in data:
            kwargs["scale"] = _coerce(data["scale"], str, f"{path}.scale",
                                      none_ok=True)
        if "seed" in data:
            kwargs["seed"] = _coerce(data["seed"], int, f"{path}.seed")
        if "workers" in data:
            kwargs["workers"] = _coerce(data["workers"], int,
                                        f"{path}.workers")
        if "params" in data:
            params = _expect_mapping(data["params"], f"{path}.params")
            bad = [key for key in params if not isinstance(key, str)]
            if bad:
                raise InvalidSpecError(
                    [f"{path}.params: parameter names must be strings, "
                     f"got {key!r}" for key in bad])
            kwargs["params"] = dict(params)
        if "detector" in data:
            kwargs["detector"] = DetectorSpec.from_dict(data["detector"],
                                                        f"{path}.detector")
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, path: str) -> "ExperimentSpec":
        """Read a spec from the JSON file at ``path`` (strictly parsed)."""
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise InvalidSpecError([f"{path}: not valid JSON: {exc}"]) \
                    from exc
        return cls.from_dict(data, path=os.path.basename(path))

    # -------------------------------------------------------------- overlays
    def with_env_overlay(self, env: Mapping[str, str] | None = None
                         ) -> "ExperimentSpec":
        """A copy with ``REPRO_*`` variables folded in (env wins).

        ``REPRO_SCALE`` overlays the experiment's own scale; the whole
        :data:`ENV_OVERLAYS` table overlays the detector subtree, so
        e.g. ``REPRO_CLASSIFIER`` reaches detector-building experiments.
        """
        if env is None:
            env = os.environ
        spec = self
        for variable, (dotted, parse) in EXPERIMENT_ENV_OVERLAYS.items():
            raw = env.get(variable)
            if raw is None or raw == "":
                continue
            try:
                value = parse(raw)
            except (TypeError, ValueError):
                raise InvalidSpecError(
                    [f"${variable}: expected {parse.__name__}, "
                     f"got {raw!r}"]) from None
            spec = spec.with_value(dotted, value)
        return replace(spec, detector=spec.detector.with_env_overlay(env))

    def with_value(self, dotted: str, value: Any) -> "ExperimentSpec":
        """A copy with the field at ``dotted`` path replaced.

        ``"params.<name>"`` sets one experiment parameter;
        ``"detector.<...>"`` descends the :class:`DetectorSpec` tree
        (``"detector.scoring.scorer"``); top-level fields are plain
        names (``"scale"``).
        """
        head, _, rest = dotted.partition(".")
        if head == "params" and rest:
            params = dict(self.params)
            params[rest] = value
            return replace(self, params=params)
        return _replace_path(self, dotted, value)

    # ------------------------------------------------------------ validation
    def problems(self, path: str = "experiment") -> list[str]:
        out = []
        from repro.experiments.registry import (
            experiment_defaults,
            experiment_names,
        )
        names = experiment_names()
        if not self.experiment:
            out.append(f"{path}.experiment: missing experiment name; "
                       f"available: {list(names)}")
        elif self.experiment not in names:
            out.append(f"{path}.experiment: unknown experiment "
                       f"{self.experiment!r}; available: {list(names)}")
        else:
            allowed = experiment_defaults(self.experiment)
            for key in sorted(set(self.params) - set(allowed)):
                out.append(f"{path}.params.{key}: unknown parameter for "
                           f"{self.experiment!r} "
                           f"(allowed: {sorted(allowed)})")
        if self.scale is not None and self.scale not in SCALE_NAMES:
            out.append(f"{path}.scale: unknown scale preset {self.scale!r}; "
                       f"available: {list(SCALE_NAMES)}")
        if self.workers < 0:
            out.append(f"{path}.workers: must be >= 0, got {self.workers}")
        out.extend(self.detector.problems())
        return out

    def validate(self) -> "ExperimentSpec":
        """Raise :class:`InvalidSpecError` listing *all* problems; else self."""
        if id(self) in _VALIDATED_IDS:
            return self
        problems = self.problems()
        if problems:
            raise InvalidSpecError(problems)
        _VALIDATED_IDS.add(id(self))
        weakref.finalize(self, _VALIDATED_IDS.discard, id(self))
        return self


@dataclass(frozen=True)
class SweepSpec:
    """A grid of spec overlays over one base :class:`ExperimentSpec`.

    The JSON form is an experiment spec plus a ``"grid"`` object (and an
    optional ``"name"``): each grid key is a dotted
    :meth:`ExperimentSpec.with_value` path, each value a non-empty list
    of alternatives.  :meth:`points` expands the cartesian product in
    declaration order — one resumable run per point.
    """

    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    grid: tuple[tuple[str, tuple], ...] = ()
    name: str = ""

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        payload = self.base.to_dict()
        payload["grid"] = {dotted: list(values)
                           for dotted, values in self.grid}
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, data: Any, path: str = "sweep") -> "SweepSpec":
        data = dict(_expect_mapping(data, path))
        name = _coerce(data.pop("name", ""), str, f"{path}.name")
        raw_grid = data.pop("grid", {})
        grid_map = _expect_mapping(raw_grid, f"{path}.grid")
        problems: list[str] = []
        grid: list[tuple[str, tuple]] = []
        for dotted, values in grid_map.items():
            if not isinstance(values, Sequence) or isinstance(values, str):
                problems.append(f"{path}.grid.{dotted}: expected a list of "
                                f"values, got {values!r}")
                continue
            if not values:
                problems.append(f"{path}.grid.{dotted}: must list at least "
                                f"one value")
                continue
            grid.append((str(dotted), tuple(values)))
        if problems:
            raise InvalidSpecError(problems)
        base = ExperimentSpec.from_dict(data, path)
        return cls(base=base, grid=tuple(grid), name=name)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, path: str) -> "SweepSpec":
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise InvalidSpecError([f"{path}: not valid JSON: {exc}"]) \
                    from exc
        return cls.from_dict(data, path=os.path.basename(path))

    # ------------------------------------------------------------- expansion
    def with_env_overlay(self, env: Mapping[str, str] | None = None
                         ) -> "SweepSpec":
        """A copy whose base spec has the environment folded in."""
        return replace(self, base=self.base.with_env_overlay(env))

    def points(self) -> list["SweepPoint"]:
        """Every grid point: label, overlay values, and the expanded spec.

        Labels are stable across invocations of the same sweep file
        (``<index>-<leaf>=<value>,...``), which is what lets a killed
        sweep resume into the same per-point run directories.
        """
        import itertools
        import re

        if not self.grid:
            return [SweepPoint(label="000-base", overlays={}, spec=self.base)]
        paths = [dotted for dotted, _ in self.grid]
        combos = itertools.product(*(values for _, values in self.grid))
        points = []
        for index, combo in enumerate(combos):
            spec = self.base
            overlays = {}
            for dotted, value in zip(paths, combo):
                spec = spec.with_value(dotted, value)
                overlays[dotted] = value
            pieces = ",".join(f"{dotted.rsplit('.', 1)[-1]}={value}"
                              for dotted, value in overlays.items())
            label = f"{index:03d}-" + re.sub(r"[^A-Za-z0-9_.+=,-]", "-",
                                             pieces)[:80]
            points.append(SweepPoint(label=label, overlays=overlays,
                                     spec=spec))
        return points

    # ------------------------------------------------------------ validation
    def problems(self, path: str = "sweep") -> list[str]:
        out = []
        seen: set[str] = set()
        for point in self._expand_for_validation(path, out):
            for problem in point.spec.problems(path):
                if problem not in seen:
                    seen.add(problem)
                    out.append(problem)
        return out

    def _expand_for_validation(self, path: str,
                               out: list[str]) -> list["SweepPoint"]:
        try:
            return self.points()
        except (AttributeError, TypeError) as exc:
            # An overlay path that does not exist in the spec tree.
            bad = ", ".join(dotted for dotted, _ in self.grid)
            out.append(f"{path}.grid: cannot apply overlay ({bad}): {exc}")
            return []

    def validate(self) -> "SweepSpec":
        """Raise :class:`InvalidSpecError` listing *all* problems; else self."""
        if id(self) in _VALIDATED_IDS:
            return self
        problems = self.problems()
        if problems:
            raise InvalidSpecError(problems)
        _VALIDATED_IDS.add(id(self))
        weakref.finalize(self, _VALIDATED_IDS.discard, id(self))
        return self


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point of a :class:`SweepSpec`."""

    label: str
    overlays: Mapping[str, Any]
    spec: ExperimentSpec


def _transform_specs(transforms: Any) -> list[TransformSpec]:
    """Coerce the ``transforms`` argument of :meth:`DetectorSpec.default`."""
    if transforms is None:
        from repro.defenses.transforms import default_transform_suite
        transforms = default_transform_suite()
    if isinstance(transforms, str):
        parts = [p.strip() for p in transforms.split(",") if p.strip()]
        if not parts:
            raise ValueError("no transform specs given")
        return [TransformSpec(part) for part in parts]
    out = []
    for item in transforms:
        if isinstance(item, TransformSpec):
            out.append(item)
        elif isinstance(item, str):
            out.append(TransformSpec(item))
        else:
            spec = getattr(item, "spec", None)
            if not spec:
                raise ValueError(
                    f"transform {getattr(item, 'name', item)!r} has no "
                    f"compact spec representation and cannot appear in a "
                    f"serialisable DetectorSpec; pass a spec string instead")
            out.append(TransformSpec(spec))
    return out
