"""Noise generators and SNR-controlled mixing.

Used by the non-targeted AE experiment (Section V-J of the paper adds noise
at −6 dB SNR) and by the robustness/ablation studies.
"""

from __future__ import annotations

import numpy as np

from repro.audio.waveform import Waveform


def white_noise(n_samples: int, rng: np.random.Generator) -> np.ndarray:
    """Unit-variance white Gaussian noise."""
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    return rng.standard_normal(n_samples)


def pink_noise(n_samples: int, rng: np.random.Generator) -> np.ndarray:
    """Approximate 1/f (pink) noise via spectral shaping."""
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    if n_samples == 0:
        return np.zeros(0)
    spectrum = np.fft.rfft(rng.standard_normal(n_samples))
    freqs = np.arange(spectrum.shape[0], dtype=np.float64)
    freqs[0] = 1.0
    shaped = np.fft.irfft(spectrum / np.sqrt(freqs), n=n_samples)
    std = shaped.std()
    return shaped / std if std > 0 else shaped


def add_noise_snr(waveform: Waveform, snr_db: float,
                  rng: np.random.Generator, kind: str = "white") -> Waveform:
    """Mix noise into ``waveform`` at the requested signal-to-noise ratio.

    Args:
        waveform: host audio.
        snr_db: desired SNR in dB (negative values mean the noise is louder
            than the speech, as in the paper's −6 dB setting).
        rng: random generator.
        kind: ``"white"`` or ``"pink"``.
    """
    n = len(waveform)
    if kind == "white":
        noise = white_noise(n, rng)
    elif kind == "pink":
        noise = pink_noise(n, rng)
    else:
        raise ValueError(f"unknown noise kind {kind!r}")
    signal_power = np.mean(waveform.samples ** 2)
    noise_power = np.mean(noise ** 2)
    if signal_power == 0 or noise_power == 0:
        return waveform
    target_noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    noise = noise * np.sqrt(target_noise_power / noise_power)
    noisy = waveform.with_samples(waveform.samples + noise,
                                  snr_db=snr_db, noise_kind=kind)
    return noisy.with_label("nontargeted-ae")
