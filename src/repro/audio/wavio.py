"""Minimal RIFF/WAVE reader and writer (16-bit PCM, mono).

The evaluation pipeline is fully in-memory, but the library still provides
WAV I/O so generated datasets and adversarial examples can be exported and
inspected with ordinary audio tools, matching the artefact the paper
released (a directory of WAV files).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.audio.waveform import Waveform

_PCM_FORMAT = 1
_BITS_PER_SAMPLE = 16
_MAX_INT16 = 32767


def write_wav(path: str, waveform: Waveform) -> None:
    """Write ``waveform`` to ``path`` as 16-bit mono PCM."""
    samples = np.clip(waveform.samples, -1.0, 1.0)
    pcm = np.round(samples * _MAX_INT16).astype("<i2")
    data = pcm.tobytes()
    byte_rate = waveform.sample_rate * _BITS_PER_SAMPLE // 8
    block_align = _BITS_PER_SAMPLE // 8
    with open(path, "wb") as handle:
        handle.write(b"RIFF")
        handle.write(struct.pack("<I", 36 + len(data)))
        handle.write(b"WAVE")
        handle.write(b"fmt ")
        handle.write(struct.pack("<IHHIIHH", 16, _PCM_FORMAT, 1,
                                 waveform.sample_rate, byte_rate,
                                 block_align, _BITS_PER_SAMPLE))
        handle.write(b"data")
        handle.write(struct.pack("<I", len(data)))
        handle.write(data)


def read_wav(path: str) -> Waveform:
    """Read a 16-bit mono PCM WAV file written by :func:`write_wav`.

    Raises:
        ValueError: if the file is not a supported RIFF/WAVE PCM file.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < 44 or blob[:4] != b"RIFF" or blob[8:12] != b"WAVE":
        raise ValueError(f"{path!r} is not a RIFF/WAVE file")

    offset = 12
    sample_rate = None
    channels = None
    bits = None
    data = None
    while offset + 8 <= len(blob):
        chunk_id = blob[offset:offset + 4]
        chunk_size = struct.unpack("<I", blob[offset + 4:offset + 8])[0]
        body = blob[offset + 8:offset + 8 + chunk_size]
        if chunk_id == b"fmt ":
            fmt, channels, sample_rate, _, _, bits = struct.unpack("<HHIIHH", body[:16])
            if fmt != _PCM_FORMAT:
                raise ValueError("only PCM WAV files are supported")
        elif chunk_id == b"data":
            data = body
        offset += 8 + chunk_size + (chunk_size % 2)

    if sample_rate is None or data is None:
        raise ValueError(f"{path!r} is missing fmt or data chunks")
    if channels != 1:
        raise ValueError("only mono WAV files are supported")
    if bits != _BITS_PER_SAMPLE:
        raise ValueError("only 16-bit WAV files are supported")
    pcm = np.frombuffer(data, dtype="<i2").astype(np.float64)
    return Waveform(samples=pcm / _MAX_INT16, sample_rate=int(sample_rate))
