"""The :class:`Waveform` value type used across the library.

A waveform is an immutable wrapper around a 1-D float64 sample array in
``[-1, 1]`` plus a sample rate and optional ground-truth text.  All audio in
the library — synthesised benign speech, adversarial examples, noisy
variants — flows through this type.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np


@dataclass(frozen=True)
class Waveform:
    """An audio clip.

    Attributes:
        samples: 1-D float64 array of samples, nominally in ``[-1, 1]``.
        sample_rate: sampling rate in Hz.
        text: ground-truth transcription (empty if unknown).
        label: free-form tag ("benign", "whitebox-ae", ...).
        metadata: extra provenance information (attack target phrase, host
            sentence, attack iterations, ...).
    """

    samples: np.ndarray
    sample_rate: int = 16_000
    text: str = ""
    label: str = "benign"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalise to C-contiguous float64 exactly once at ingest, so
        # shared-memory copies, content hashing and DSP framing can all
        # assume a flat buffer and never re-convert per stage.  For an
        # already-contiguous float64 array (including read-only
        # shared-memory views) this is a no-copy passthrough.
        samples = np.ascontiguousarray(self.samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ValueError("Waveform samples must be one-dimensional")
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        object.__setattr__(self, "samples", samples)

    # ------------------------------------------------------------ properties
    def __len__(self) -> int:
        return int(self.samples.shape[0])

    @property
    def duration(self) -> float:
        """Duration in seconds."""
        return len(self) / self.sample_rate

    @property
    def rms(self) -> float:
        """Root-mean-square amplitude."""
        if len(self) == 0:
            return 0.0
        return float(np.sqrt(np.mean(self.samples ** 2)))

    @property
    def peak(self) -> float:
        """Maximum absolute sample value."""
        if len(self) == 0:
            return 0.0
        return float(np.max(np.abs(self.samples)))

    # ------------------------------------------------------------ operations
    def with_samples(self, samples: np.ndarray, **metadata_updates) -> "Waveform":
        """Return a copy carrying ``samples`` and updated metadata."""
        merged = dict(self.metadata)
        merged.update(metadata_updates)
        return replace(self, samples=np.asarray(samples, dtype=np.float64),
                       metadata=merged)

    def with_text(self, text: str) -> "Waveform":
        """Return a copy with a different ground-truth text."""
        return replace(self, text=text)

    def with_label(self, label: str) -> "Waveform":
        """Return a copy with a different label."""
        return replace(self, label=label)

    def clipped(self, limit: float = 1.0) -> "Waveform":
        """Return a copy with samples clipped to ``[-limit, limit]``."""
        if limit <= 0:
            raise ValueError("clip limit must be positive")
        return self.with_samples(np.clip(self.samples, -limit, limit))

    def normalized(self, peak: float = 0.9) -> "Waveform":
        """Return a copy scaled so the maximum absolute sample is ``peak``."""
        current = self.peak
        if current == 0:
            return self
        return self.with_samples(self.samples * (peak / current))

    def padded_to(self, n_samples: int) -> "Waveform":
        """Return a copy zero-padded (or truncated) to ``n_samples``."""
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        if n_samples <= len(self):
            return self.with_samples(self.samples[:n_samples])
        pad = np.zeros(n_samples - len(self))
        return self.with_samples(np.concatenate([self.samples, pad]))

    def mixed_with(self, other: "Waveform", gain: float = 1.0) -> "Waveform":
        """Return this waveform plus ``gain * other`` (lengths aligned)."""
        if other.sample_rate != self.sample_rate:
            raise ValueError("cannot mix waveforms with different sample rates")
        n = max(len(self), len(other))
        mixed = self.padded_to(n).samples + gain * other.padded_to(n).samples
        return self.with_samples(mixed)

    def perturbation_from(self, original: "Waveform") -> np.ndarray:
        """Sample-wise difference between this waveform and ``original``."""
        n = max(len(self), len(original))
        return self.padded_to(n).samples - original.padded_to(n).samples
