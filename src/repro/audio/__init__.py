"""Audio substrate: waveforms, WAV I/O, speech synthesis and noise."""

from repro.audio.waveform import Waveform
from repro.audio.wavio import read_wav, write_wav
from repro.audio.synthesis import SpeechSynthesizer, SpeakerProfile
from repro.audio.noise import white_noise, pink_noise, add_noise_snr
from repro.audio.metrics import (
    relative_perturbation,
    similarity_percent,
    signal_to_noise_ratio_db,
)

__all__ = [
    "Waveform",
    "read_wav",
    "write_wav",
    "SpeechSynthesizer",
    "SpeakerProfile",
    "white_noise",
    "pink_noise",
    "add_noise_snr",
    "relative_perturbation",
    "similarity_percent",
    "signal_to_noise_ratio_db",
]
