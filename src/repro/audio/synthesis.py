"""Formant-style speech synthesiser.

The evaluation needs speech-shaped audio with known ground-truth text so
that every ASR simulator can transcribe it with high (but imperfect)
accuracy.  Real corpora (LibriSpeech, CommonVoice) are unavailable offline,
so sentences are rendered with a simple source-filter synthesiser:

* each phoneme is rendered as a short segment whose spectrum contains the
  phoneme's formant peaks (voiced sounds: harmonics of a pitch contour
  shaped by the formants; unvoiced sounds: band-shaped noise),
* speaker variability (pitch, formant scaling, speaking rate, noise floor)
  is drawn per-utterance from a :class:`SpeakerProfile`,
* silence separates words.

This is nowhere near natural speech, but it preserves exactly the property
the paper's pipeline needs: distinct phonemes occupy distinct spectral
regions, so the ASR front ends can recover the spoken text, while small
adversarial perturbations can move one model's decisions without moving the
others'.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.audio.waveform import Waveform
from repro.config import SAMPLE_RATE
from repro.text.lexicon import Lexicon
from repro.text.phonemes import SILENCE, Phoneme, phoneme_profile


@dataclass(frozen=True)
class SpeakerProfile:
    """Per-utterance speaker characteristics."""

    pitch_hz: float = 120.0
    formant_scale: float = 1.0
    rate: float = 1.0
    breathiness: float = 0.02

    @staticmethod
    def random(rng: np.random.Generator) -> "SpeakerProfile":
        """Draw a plausible speaker at random."""
        return SpeakerProfile(
            pitch_hz=float(rng.uniform(90.0, 220.0)),
            formant_scale=float(rng.uniform(0.92, 1.08)),
            rate=float(rng.uniform(0.9, 1.15)),
            breathiness=float(rng.uniform(0.01, 0.04)),
        )


class SpeechSynthesizer:
    """Renders sentences as :class:`Waveform` objects."""

    def __init__(self, sample_rate: int = SAMPLE_RATE,
                 lexicon: Lexicon | None = None, seed: int = 0):
        self.sample_rate = sample_rate
        self.lexicon = lexicon or Lexicon()
        self._seed = seed

    # ------------------------------------------------------------------ API
    def synthesize(self, text: str, speaker: SpeakerProfile | None = None,
                   rng: np.random.Generator | None = None) -> Waveform:
        """Render ``text`` as audio.

        Args:
            text: sentence to speak.
            speaker: speaker characteristics; a random speaker is drawn when
                omitted.
            rng: random generator controlling the speaker draw and the
                low-level jitter.  When omitted, a generator is derived from
                the synthesiser seed and the text, so a given sentence always
                renders identically regardless of how many utterances were
                synthesised before it (call-order independence).
        """
        if rng is None:
            rng = np.random.default_rng((self._seed, zlib.crc32(text.encode())))
        speaker = speaker or SpeakerProfile.random(rng)
        phonemes = self.lexicon.pronounce_sentence(text)
        segments = [self._render_phoneme(p, speaker, rng) for p in phonemes]
        samples = np.concatenate(segments) if segments else np.zeros(0)
        peak = np.max(np.abs(samples)) if samples.size else 0.0
        if peak > 0:
            samples = samples * (0.6 / peak)
        return Waveform(samples=samples, sample_rate=self.sample_rate, text=text,
                        label="benign",
                        metadata={"speaker_pitch": speaker.pitch_hz,
                                  "speaker_rate": speaker.rate})

    def phoneme_exemplar(self, phoneme: Phoneme, duration: float | None = None,
                         speaker: SpeakerProfile | None = None) -> np.ndarray:
        """Clean rendering of a single phoneme (used to build ASR templates)."""
        speaker = speaker or SpeakerProfile()
        rng = np.random.default_rng(1234)
        return self._render_phoneme(phoneme, speaker, rng, duration=duration,
                                    jitter=False)

    # ------------------------------------------------------------ internals
    def _render_phoneme(self, phoneme: Phoneme, speaker: SpeakerProfile,
                        rng: np.random.Generator, duration: float | None = None,
                        jitter: bool = True) -> np.ndarray:
        profile = phoneme_profile(phoneme)
        base_duration = duration if duration is not None else profile.duration
        if jitter:
            base_duration *= float(rng.uniform(0.9, 1.1))
        n = max(8, int(base_duration * self.sample_rate / speaker.rate))
        t = np.arange(n) / self.sample_rate

        if phoneme == SILENCE:
            return speaker.breathiness * 0.1 * rng.standard_normal(n)

        signal = np.zeros(n)
        if profile.voiced:
            pitch = speaker.pitch_hz
            if jitter:
                pitch *= float(rng.uniform(0.97, 1.03))
            # Sum the first few pitch harmonics, each weighted by its
            # proximity to the phoneme's formants (a crude source-filter).
            harmonics = np.arange(1, 31)
            freqs = harmonics * pitch
            weights = np.zeros_like(freqs)
            for formant, amp in zip(profile.formants, profile.amplitudes):
                centre = formant * speaker.formant_scale
                bandwidth = 90.0 + 0.06 * centre
                weights += amp * np.exp(-0.5 * ((freqs - centre) / bandwidth) ** 2)
            weights += 0.01
            phases = rng.uniform(0, 2 * np.pi, size=freqs.shape) if jitter else \
                np.zeros_like(freqs)
            signal = (weights[:, None]
                      * np.sin(2 * np.pi * freqs[:, None] * t[None, :]
                               + phases[:, None])).sum(axis=0)
            signal /= max(1e-6, np.max(np.abs(signal)))
        if profile.noise > 0:
            noise = rng.standard_normal(n)
            noise = _shape_noise(noise, profile.formants, profile.amplitudes,
                                 speaker.formant_scale, self.sample_rate)
            signal = (1.0 - profile.noise) * signal + profile.noise * noise
        # Attack/decay envelope avoids clicks at segment boundaries.
        envelope = np.ones(n)
        ramp = max(2, n // 10)
        envelope[:ramp] = np.linspace(0.0, 1.0, ramp)
        envelope[-ramp:] = np.linspace(1.0, 0.0, ramp)
        signal = signal * envelope
        signal += speaker.breathiness * rng.standard_normal(n)
        return signal


def _shape_noise(noise: np.ndarray, formants: tuple[float, ...],
                 amplitudes: tuple[float, ...], scale: float,
                 sample_rate: int) -> np.ndarray:
    """Filter white noise so its energy concentrates around the formants."""
    n = noise.shape[0]
    spectrum = np.fft.rfft(noise)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    shaping = np.full_like(freqs, 0.05)
    for formant, amp in zip(formants, amplitudes):
        if formant <= 0:
            continue
        centre = formant * scale
        bandwidth = 250.0 + 0.15 * centre
        shaping += amp * np.exp(-0.5 * ((freqs - centre) / bandwidth) ** 2)
    shaped = np.fft.irfft(spectrum * shaping, n=n)
    peak = np.max(np.abs(shaped))
    return shaped / peak if peak > 0 else shaped
