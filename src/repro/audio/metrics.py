"""Perturbation size metrics.

The paper quantifies attack distortion as the similarity (in percent)
between an AE and its host audio — 99.9 % for white-box AEs, 94.6 % for
black-box AEs.  These helpers compute that similarity plus conventional SNR
in dB.
"""

from __future__ import annotations

import numpy as np

from repro.audio.waveform import Waveform


def _aligned_samples(a: Waveform, b: Waveform) -> tuple[np.ndarray, np.ndarray]:
    n = max(len(a), len(b))
    return a.padded_to(n).samples, b.padded_to(n).samples


def relative_perturbation(original: Waveform, modified: Waveform) -> float:
    """L2 norm of the perturbation relative to the L2 norm of the original."""
    orig, mod = _aligned_samples(original, modified)
    denom = np.linalg.norm(orig)
    if denom == 0:
        return 0.0 if np.linalg.norm(mod) == 0 else float("inf")
    return float(np.linalg.norm(mod - orig) / denom)


def similarity_percent(original: Waveform, modified: Waveform) -> float:
    """Percentage similarity between two waveforms.

    Defined as ``100 * (1 - relative L2 perturbation)``, floored at 0.  A
    white-box AE should score around 99+ %, a black-box AE in the low-to-mid
    90s, matching the figures quoted in the paper.
    """
    return float(max(0.0, 100.0 * (1.0 - relative_perturbation(original, modified))))


def signal_to_noise_ratio_db(original: Waveform, modified: Waveform) -> float:
    """SNR of the original signal against the perturbation, in dB."""
    orig, mod = _aligned_samples(original, modified)
    noise = mod - orig
    signal_power = np.mean(orig ** 2)
    noise_power = np.mean(noise ** 2)
    if noise_power == 0:
        return float("inf")
    if signal_power == 0:
        return float("-inf")
    return float(10.0 * np.log10(signal_power / noise_power))
