"""K-nearest-neighbour classifier (the paper uses 10 neighbours)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BinaryClassifier


class KNNClassifier(BinaryClassifier):
    """Majority-vote KNN over Euclidean distance."""

    def __init__(self, n_neighbors: int = 10):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self._train_features: np.ndarray | None = None
        self._train_labels: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        features, labels = self._validate(features, labels)
        self._train_features = features
        self._train_labels = labels
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Fraction of adversarial neighbours minus 0.5."""
        if self._train_features is None:
            raise RuntimeError("classifier has not been fitted")
        features, _ = self._validate(features)
        k = min(self.n_neighbors, self._train_features.shape[0])
        # (n_test, n_train) squared distances, computed blockwise to bound memory.
        scores = np.empty(features.shape[0])
        block = 512
        for start in range(0, features.shape[0], block):
            chunk = features[start:start + block]
            distances = ((chunk[:, None, :] - self._train_features[None, :, :]) ** 2).sum(axis=2)
            neighbour_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            votes = self._train_labels[neighbour_idx].mean(axis=1)
            scores[start:start + chunk.shape[0]] = votes - 0.5
        return scores
