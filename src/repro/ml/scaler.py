"""Feature standardisation."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaling fitted on training data."""

    def __init__(self):
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[:, None]
        self._mean = features.mean(axis=0)
        self._scale = np.maximum(features.std(axis=0), 1e-12)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self._mean is None:
            raise RuntimeError("scaler has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[:, None]
        return (features - self._mean) / self._scale

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
