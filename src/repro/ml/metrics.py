"""Classification metrics: accuracy, FPR, FNR, ROC and AUC.

The paper reports detection accuracy, false positive rate (benign flagged
as AE), false negative rate (AE missed) and, for the threshold detector,
ROC curves with AUC.  "Positive" throughout means "adversarial" (label 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# NumPy 2.0 renamed ``np.trapz`` to ``np.trapezoid``; support both majors.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def _validate_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(int).ravel()
    y_pred = np.asarray(y_pred).astype(int).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    return y_true, y_pred


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, int]:
    """True/false positive/negative counts."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return {
        "tp": int(np.sum((y_true == 1) & (y_pred == 1))),
        "tn": int(np.sum((y_true == 0) & (y_pred == 0))),
        "fp": int(np.sum((y_true == 0) & (y_pred == 1))),
        "fn": int(np.sum((y_true == 1) & (y_pred == 0))),
    }


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if y_true.shape[0] == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def false_positive_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """FP / (FP + TN); 0 when there are no negatives."""
    counts = confusion_counts(y_true, y_pred)
    negatives = counts["fp"] + counts["tn"]
    return counts["fp"] / negatives if negatives else 0.0


def false_negative_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """FN / (FN + TP); 0 when there are no positives."""
    counts = confusion_counts(y_true, y_pred)
    positives = counts["fn"] + counts["tp"]
    return counts["fn"] / positives if positives else 0.0


def defense_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of adversarial samples that are detected (paper Section V-G)."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    positives = y_true == 1
    if not positives.any():
        return 0.0
    return float(np.mean(y_pred[positives] == 1))


@dataclass(frozen=True)
class ClassificationReport:
    """Accuracy / FPR / FNR summary for one evaluation."""

    accuracy: float
    fpr: float
    fnr: float
    n_samples: int
    n_positive: int
    n_negative: int

    def as_dict(self) -> dict[str, float]:
        return {"accuracy": self.accuracy, "fpr": self.fpr, "fnr": self.fnr}

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return (f"accuracy={self.accuracy:.4f} fpr={self.fpr:.4f} "
                f"fnr={self.fnr:.4f} (n={self.n_samples})")


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationReport:
    """Bundle accuracy, FPR and FNR into a report."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return ClassificationReport(
        accuracy=accuracy_score(y_true, y_pred),
        fpr=false_positive_rate(y_true, y_pred),
        fnr=false_negative_rate(y_true, y_pred),
        n_samples=int(y_true.shape[0]),
        n_positive=int((y_true == 1).sum()),
        n_negative=int((y_true == 0).sum()),
    )


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve for a score where *larger* means *more adversarial*.

    Returns ``(fpr, tpr, thresholds)`` with thresholds sorted descending,
    matching the usual convention.
    """
    y_true = np.asarray(y_true).astype(int).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]

    n_positive = max(1, int((y_true == 1).sum()))
    n_negative = max(1, int((y_true == 0).sum()))
    tp_cum = np.cumsum(sorted_true == 1)
    fp_cum = np.cumsum(sorted_true == 0)

    # Keep the last index of every distinct score value.
    distinct = np.where(np.diff(sorted_scores, append=np.nan) != 0)[0]
    tpr = np.concatenate([[0.0], tp_cum[distinct] / n_positive])
    fpr = np.concatenate([[0.0], fp_cum[distinct] / n_negative])
    thresholds = np.concatenate([[np.inf], sorted_scores[distinct]])
    return fpr, tpr, thresholds


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under a curve given by ``(fpr, tpr)`` points (trapezoid rule)."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    if fpr.shape != tpr.shape or fpr.ndim != 1:
        raise ValueError("fpr and tpr must be 1-D arrays of equal length")
    order = np.argsort(fpr, kind="stable")
    return float(_trapezoid(tpr[order], fpr[order]))
