"""Logistic regression.

Used as the classifier of the Hidden-Voice-Command detection baseline
(Carlini et al., USENIX Security 2016), which the paper's related-work
section contrasts with MVP-EARS.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BinaryClassifier


class LogisticRegressionClassifier(BinaryClassifier):
    """L2-regularised logistic regression trained by gradient descent."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300,
                 regularization: float = 1e-4):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.regularization = regularization
        self._weights: np.ndarray | None = None
        self._bias = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionClassifier":
        features, labels = self._validate(features, labels)
        n_samples, n_features = features.shape
        weights = np.zeros(n_features)
        bias = 0.0
        targets = labels.astype(float)
        for epoch in range(1, self.epochs + 1):
            logits = features @ weights + bias
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -35, 35)))
            error = probs - targets
            grad_w = features.T @ error / n_samples + self.regularization * weights
            grad_b = float(error.mean())
            step = self.learning_rate / np.sqrt(epoch)
            weights -= step * grad_w
            bias -= step * grad_b
        self._weights = weights
        self._bias = bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of class 1 per sample."""
        logits = self.decision_function(features)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -35, 35)))

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("classifier has not been fitted")
        features, _ = self._validate(features)
        return features @ self._weights + self._bias
