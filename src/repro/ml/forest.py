"""Random forest classifier (the paper seeds it at 200)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BinaryClassifier
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BinaryClassifier):
    """Bagged ensemble of decision trees with feature subsampling."""

    def __init__(self, n_estimators: int = 60, max_depth: int = 8,
                 min_samples_split: int = 4, seed: int = 200):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.seed = seed
        self._trees: list[DecisionTreeClassifier] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        features, labels = self._validate(features, labels)
        rng = np.random.default_rng(self.seed)
        n_samples, n_features = features.shape
        max_features = max(1, int(np.ceil(np.sqrt(n_features))))
        self._trees = []
        for index in range(self.n_estimators):
            bootstrap = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                seed=int(rng.integers(0, 2 ** 31 - 1)),
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self._trees.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Mean class-1 probability across trees."""
        if not self._trees:
            raise RuntimeError("classifier has not been fitted")
        features, _ = self._validate(features)
        votes = np.stack([tree.predict_proba(features) for tree in self._trees])
        return votes.mean(axis=0)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features) - 0.5
