"""Classifier factory used by the experiments.

The paper evaluates three binary classifiers with fixed configurations:
SVM with a 3-degree polynomial kernel, KNN with 10 voting neighbours, and a
Random Forest seeded with 200.
"""

from __future__ import annotations

from repro.ml.base import BinaryClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.svm import KernelSVMClassifier, SVMClassifier

#: The classifier names used across the evaluation tables.
CLASSIFIER_NAMES: tuple[str, ...] = ("SVM", "KNN", "RandomForest")


def build_classifier(name: str) -> BinaryClassifier:
    """Build a fresh classifier configured as in the paper."""
    if name == "SVM":
        return SVMClassifier(degree=3)
    if name == "KernelSVM":
        return KernelSVMClassifier(degree=3)
    if name == "KNN":
        return KNNClassifier(n_neighbors=10)
    if name == "RandomForest":
        return RandomForestClassifier(seed=200)
    if name == "LogisticRegression":
        return LogisticRegressionClassifier()
    raise KeyError(f"unknown classifier {name!r}")
