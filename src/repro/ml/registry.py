"""Classifier factory used by the experiments.

The paper evaluates three binary classifiers with fixed configurations:
SVM with a 3-degree polynomial kernel, KNN with 10 voting neighbours, and a
Random Forest seeded with 200.  Further classifiers can be registered with
:func:`register_classifier` and then addressed by name everywhere a
classifier name is accepted (specs, ``default_detector``, the CLI).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import UnknownComponentError
from repro.ml.base import BinaryClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.svm import KernelSVMClassifier, SVMClassifier

#: The classifier names used across the evaluation tables.
CLASSIFIER_NAMES: tuple[str, ...] = ("SVM", "KNN", "RandomForest")

_FACTORIES: dict[str, Callable[[], BinaryClassifier]] = {
    "SVM": lambda: SVMClassifier(degree=3),
    "KernelSVM": lambda: KernelSVMClassifier(degree=3),
    "KNN": lambda: KNNClassifier(n_neighbors=10),
    "RandomForest": lambda: RandomForestClassifier(seed=200),
    "LogisticRegression": lambda: LogisticRegressionClassifier(),
}


def register_classifier(name: str,
                        factory: Callable[[], BinaryClassifier]) -> None:
    """Register a classifier factory under ``name`` (overwrites allowed)."""
    _FACTORIES[name] = factory


def available_classifier_names() -> tuple[str, ...]:
    """Sorted names of every registered classifier."""
    return tuple(sorted(_FACTORIES))


def build_classifier(name: str) -> BinaryClassifier:
    """Build a fresh classifier configured as in the paper."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownComponentError("classifier", name,
                                    available_classifier_names()) from None
    return factory()
