"""From-scratch machine-learning components.

The paper trains small binary classifiers (SVM with a 3-degree polynomial
kernel, KNN with 10 neighbours, Random Forest seeded at 200) on 1-3
dimensional similarity-score vectors.  scikit-learn is not available in
this offline environment, so the classifiers, metrics and model-selection
helpers are implemented here on top of numpy.
"""

from repro.ml.base import BinaryClassifier
from repro.ml.svm import SVMClassifier, KernelSVMClassifier
from repro.ml.knn import KNNClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.scaler import StandardScaler
from repro.ml.metrics import (
    ClassificationReport,
    accuracy_score,
    auc,
    classification_report,
    confusion_counts,
    false_negative_rate,
    false_positive_rate,
    roc_curve,
)
from repro.ml.model_selection import KFold, cross_validate, train_test_split
from repro.ml.registry import CLASSIFIER_NAMES, build_classifier

__all__ = [
    "BinaryClassifier",
    "SVMClassifier",
    "KernelSVMClassifier",
    "KNNClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LogisticRegressionClassifier",
    "StandardScaler",
    "ClassificationReport",
    "accuracy_score",
    "auc",
    "classification_report",
    "confusion_counts",
    "false_negative_rate",
    "false_positive_rate",
    "roc_curve",
    "KFold",
    "cross_validate",
    "train_test_split",
    "CLASSIFIER_NAMES",
    "build_classifier",
]
