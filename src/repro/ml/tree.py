"""CART-style decision tree used by the random forest."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BinaryClassifier


@dataclass
class _Node:
    """Internal tree node (leaf when ``feature`` is None)."""

    prediction: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None


def _gini(labels: np.ndarray) -> float:
    if labels.shape[0] == 0:
        return 0.0
    p = labels.mean()
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier(BinaryClassifier):
    """Binary classification tree minimising Gini impurity."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 4,
                 max_features: int | None = None, seed: int = 0):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None

    # ------------------------------------------------------------ training
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        features, labels = self._validate(features, labels)
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(features, labels.astype(float), 0, rng)
        return self

    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int,
              rng: np.random.Generator) -> _Node:
        prediction = float(labels.mean()) if labels.shape[0] else 0.0
        if (depth >= self.max_depth or labels.shape[0] < self.min_samples_split
                or prediction in (0.0, 1.0)):
            return _Node(prediction=prediction)

        n_features = features.shape[1]
        if self.max_features is None:
            candidates = np.arange(n_features)
        else:
            size = min(self.max_features, n_features)
            candidates = rng.choice(n_features, size=size, replace=False)

        best_gain = 0.0
        best_feature = None
        best_threshold = 0.0
        parent_impurity = _gini(labels)
        for feature in candidates:
            values = features[:, feature]
            thresholds = np.unique(values)
            if thresholds.shape[0] > 16:
                thresholds = np.quantile(values, np.linspace(0.05, 0.95, 16))
            for threshold in thresholds:
                mask = values <= threshold
                left, right = labels[mask], labels[~mask]
                if left.shape[0] == 0 or right.shape[0] == 0:
                    continue
                weighted = (left.shape[0] * _gini(left)
                            + right.shape[0] * _gini(right)) / labels.shape[0]
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(feature)
                    best_threshold = float(threshold)

        if best_feature is None or best_gain <= 1e-12:
            return _Node(prediction=prediction)
        mask = features[:, best_feature] <= best_threshold
        left = self._grow(features[mask], labels[mask], depth + 1, rng)
        right = self._grow(features[~mask], labels[~mask], depth + 1, rng)
        return _Node(prediction=prediction, feature=best_feature,
                     threshold=best_threshold, left=left, right=right)

    # ----------------------------------------------------------- inference
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of class 1 per sample."""
        if self._root is None:
            raise RuntimeError("classifier has not been fitted")
        features, _ = self._validate(features)
        return np.array([self._predict_one(row) for row in features])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features) - 0.5
