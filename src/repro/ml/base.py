"""Base class of the binary classifiers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class BinaryClassifier(ABC):
    """A binary classifier over real-valued feature vectors.

    Labels are 0 (benign) and 1 (adversarial) throughout the library.
    """

    def _validate(self, features: np.ndarray,
                  labels: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray | None]:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[:, None]
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if labels is None:
            return features, None
        labels = np.asarray(labels).astype(int).ravel()
        if labels.shape[0] != features.shape[0]:
            raise ValueError("features and labels have different lengths")
        if not np.isin(labels, (0, 1)).all():
            raise ValueError("labels must be 0 or 1")
        return features, labels

    @abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BinaryClassifier":
        """Train the classifier."""

    @abstractmethod
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Real-valued score per sample (larger means more likely class 1)."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels (0 or 1) per sample."""
        return (self.decision_function(features) > 0).astype(int)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        features, labels = self._validate(features, labels)
        return float(np.mean(self.predict(features) == labels))
