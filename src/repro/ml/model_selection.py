"""Train/test splitting and k-fold cross validation.

The paper evaluates classifiers with an 80/20 split (Table III) and with
5-fold cross validation reporting mean and standard deviation (Tables IV
and V); both protocols are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BinaryClassifier
from repro.ml.metrics import classification_report


def train_test_split(features: np.ndarray, labels: np.ndarray,
                     test_fraction: float = 0.2, seed: int = 0,
                     stratify: bool = True) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into train and test sets.

    Returns ``(train_x, test_x, train_y, test_y)``.  With ``stratify`` the
    class balance of the test set matches the full dataset.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels).astype(int).ravel()
    if features.shape[0] != labels.shape[0]:
        raise ValueError("features and labels have different lengths")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    test_mask = np.zeros(labels.shape[0], dtype=bool)
    if stratify:
        for value in np.unique(labels):
            idx = np.where(labels == value)[0]
            rng.shuffle(idx)
            n_test = max(1, int(round(test_fraction * idx.shape[0])))
            test_mask[idx[:n_test]] = True
    else:
        idx = rng.permutation(labels.shape[0])
        n_test = max(1, int(round(test_fraction * labels.shape[0])))
        test_mask[idx[:n_test]] = True
    return (features[~test_mask], features[test_mask],
            labels[~test_mask], labels[test_mask])


class KFold:
    """Stratified k-fold splitter."""

    def __init__(self, n_splits: int = 5, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, labels: np.ndarray):
        """Yield ``(train_indices, test_indices)`` pairs."""
        labels = np.asarray(labels).astype(int).ravel()
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(labels.shape[0], dtype=int)
        for value in np.unique(labels):
            idx = np.where(labels == value)[0]
            rng.shuffle(idx)
            fold_of[idx] = np.arange(idx.shape[0]) % self.n_splits
        for fold in range(self.n_splits):
            test_idx = np.where(fold_of == fold)[0]
            train_idx = np.where(fold_of != fold)[0]
            yield train_idx, test_idx


@dataclass
class CrossValidationResult:
    """Mean/std of accuracy, FPR and FNR across folds."""

    accuracies: list[float] = field(default_factory=list)
    fprs: list[float] = field(default_factory=list)
    fnrs: list[float] = field(default_factory=list)

    @property
    def accuracy_mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def accuracy_std(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def fpr_mean(self) -> float:
        return float(np.mean(self.fprs))

    @property
    def fpr_std(self) -> float:
        return float(np.std(self.fprs))

    @property
    def fnr_mean(self) -> float:
        return float(np.mean(self.fnrs))

    @property
    def fnr_std(self) -> float:
        return float(np.std(self.fnrs))

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the mean/std statistics."""
        return {
            "accuracy_mean": self.accuracy_mean, "accuracy_std": self.accuracy_std,
            "fpr_mean": self.fpr_mean, "fpr_std": self.fpr_std,
            "fnr_mean": self.fnr_mean, "fnr_std": self.fnr_std,
        }


def cross_validate(make_classifier, features: np.ndarray, labels: np.ndarray,
                   n_splits: int = 5, seed: int = 0) -> CrossValidationResult:
    """K-fold cross validation of a classifier factory.

    Args:
        make_classifier: zero-argument callable returning an unfitted
            :class:`~repro.ml.base.BinaryClassifier`.
        features: feature matrix.
        labels: binary labels.
        n_splits: number of folds (the paper uses 5).
        seed: fold assignment seed.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels).astype(int).ravel()
    result = CrossValidationResult()
    for train_idx, test_idx in KFold(n_splits=n_splits, seed=seed).split(labels):
        classifier: BinaryClassifier = make_classifier()
        classifier.fit(features[train_idx], labels[train_idx])
        report = classification_report(labels[test_idx],
                                       classifier.predict(features[test_idx]))
        result.accuracies.append(report.accuracy)
        result.fprs.append(report.fpr)
        result.fnrs.append(report.fnr)
    return result
