"""Support vector machine classifiers.

Two implementations are provided:

* :class:`SVMClassifier` — the library default.  It expands the (1-3
  dimensional) similarity-score features with an explicit degree-3
  polynomial map and trains a linear maximum-margin separator with
  sub-gradient descent on the hinge loss.  For low-dimensional inputs this
  is equivalent to a polynomial-kernel SVM (the paper's configuration) but
  scales to the tens of thousands of synthetic MAE-AE feature vectors used
  by the proactive-training experiments.
* :class:`KernelSVMClassifier` — a classic kernelised SVM trained with a
  simplified SMO loop, kept for small datasets and cross-checks.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

import numpy as np

from repro.ml.base import BinaryClassifier


def polynomial_feature_map(features: np.ndarray, degree: int) -> np.ndarray:
    """Explicit polynomial feature expansion (including lower orders)."""
    features = np.asarray(features, dtype=np.float64)
    n_samples, n_dims = features.shape
    columns = [np.ones(n_samples)]
    for order in range(1, degree + 1):
        for combo in combinations_with_replacement(range(n_dims), order):
            column = np.ones(n_samples)
            for index in combo:
                column = column * features[:, index]
            columns.append(column)
    return np.column_stack(columns)


class SVMClassifier(BinaryClassifier):
    """Hinge-loss SVM on an explicit polynomial feature expansion."""

    def __init__(self, degree: int = 3, regularization: float = 1e-3,
                 learning_rate: float = 0.1, epochs: int = 200, seed: int = 0):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.regularization = regularization
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None

    def _expand(self, features: np.ndarray) -> np.ndarray:
        expanded = polynomial_feature_map(features, self.degree)
        if self._feature_mean is None:
            self._feature_mean = expanded.mean(axis=0)
            self._feature_scale = np.maximum(expanded.std(axis=0), 1e-9)
            self._feature_mean[0] = 0.0       # keep the bias column intact
            self._feature_scale[0] = 1.0
        return (expanded - self._feature_mean) / self._feature_scale

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SVMClassifier":
        features, labels = self._validate(features, labels)
        self._feature_mean = None
        self._feature_scale = None
        expanded = self._expand(features)
        targets = np.where(labels == 1, 1.0, -1.0)
        n_samples, n_features = expanded.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features)
        for epoch in range(1, self.epochs + 1):
            order = rng.permutation(n_samples)
            step = self.learning_rate / np.sqrt(epoch)
            margins = targets * (expanded @ weights)
            # Full-batch sub-gradient: cheap at these dimensionalities and
            # far more stable than per-sample updates.
            violating = margins < 1.0
            gradient = (self.regularization * weights
                        - (targets[violating, None] * expanded[violating]).sum(axis=0)
                        / max(1, n_samples))
            weights = weights - step * gradient
            del order
        self._weights = weights
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("classifier has not been fitted")
        features, _ = self._validate(features)
        return self._expand_existing(features) @ self._weights

    def _expand_existing(self, features: np.ndarray) -> np.ndarray:
        expanded = polynomial_feature_map(features, self.degree)
        return (expanded - self._feature_mean) / self._feature_scale


class KernelSVMClassifier(BinaryClassifier):
    """Polynomial-kernel SVM trained with a simplified SMO loop."""

    def __init__(self, degree: int = 3, C: float = 1.0, coef0: float = 1.0,
                 max_passes: int = 5, tolerance: float = 1e-3, seed: int = 0):
        self.degree = degree
        self.C = C
        self.coef0 = coef0
        self.max_passes = max_passes
        self.tolerance = tolerance
        self.seed = seed
        self._support_vectors: np.ndarray | None = None
        self._alphas: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._bias = 0.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a @ b.T + self.coef0) ** self.degree

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KernelSVMClassifier":
        features, labels = self._validate(features, labels)
        targets = np.where(labels == 1, 1.0, -1.0)
        n_samples = features.shape[0]
        kernel = self._kernel(features, features)
        alphas = np.zeros(n_samples)
        bias = 0.0
        rng = np.random.default_rng(self.seed)
        passes = 0
        while passes < self.max_passes:
            changed = 0
            for i in range(n_samples):
                error_i = (alphas * targets) @ kernel[:, i] + bias - targets[i]
                if not ((targets[i] * error_i < -self.tolerance and alphas[i] < self.C)
                        or (targets[i] * error_i > self.tolerance and alphas[i] > 0)):
                    continue
                j = int(rng.integers(n_samples - 1))
                if j >= i:
                    j += 1
                error_j = (alphas * targets) @ kernel[:, j] + bias - targets[j]
                alpha_i_old, alpha_j_old = alphas[i], alphas[j]
                if targets[i] == targets[j]:
                    low = max(0.0, alpha_i_old + alpha_j_old - self.C)
                    high = min(self.C, alpha_i_old + alpha_j_old)
                else:
                    low = max(0.0, alpha_j_old - alpha_i_old)
                    high = min(self.C, self.C + alpha_j_old - alpha_i_old)
                if low == high:
                    continue
                eta = 2.0 * kernel[i, j] - kernel[i, i] - kernel[j, j]
                if eta >= 0:
                    continue
                alphas[j] = np.clip(alpha_j_old - targets[j] * (error_i - error_j) / eta,
                                    low, high)
                if abs(alphas[j] - alpha_j_old) < 1e-6:
                    continue
                alphas[i] = alpha_i_old + targets[i] * targets[j] * (alpha_j_old - alphas[j])
                bias_1 = (bias - error_i
                          - targets[i] * (alphas[i] - alpha_i_old) * kernel[i, i]
                          - targets[j] * (alphas[j] - alpha_j_old) * kernel[i, j])
                bias_2 = (bias - error_j
                          - targets[i] * (alphas[i] - alpha_i_old) * kernel[i, j]
                          - targets[j] * (alphas[j] - alpha_j_old) * kernel[j, j])
                if 0 < alphas[i] < self.C:
                    bias = bias_1
                elif 0 < alphas[j] < self.C:
                    bias = bias_2
                else:
                    bias = (bias_1 + bias_2) / 2.0
                changed += 1
            passes = passes + 1 if changed == 0 else 0
        support = alphas > 1e-8
        self._support_vectors = features[support]
        self._alphas = alphas[support]
        self._targets = targets[support]
        self._bias = float(bias)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self._support_vectors is None:
            raise RuntimeError("classifier has not been fitted")
        features, _ = self._validate(features)
        if self._support_vectors.shape[0] == 0:
            return np.full(features.shape[0], self._bias)
        kernel = self._kernel(features, self._support_vectors)
        return kernel @ (self._alphas * self._targets) + self._bias
