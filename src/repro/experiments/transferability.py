"""Section III: the transferability study.

Three empirical findings are reproduced:

1. White-box AEs crafted against DS0 essentially never transfer to the
   auxiliary ASRs (the success matrix is all-zero off the target column).
2. The two-iteration recursive attack (CommanderSong style) does not yield
   transferable AEs: the second iteration's success destroys the first's.
3. A slightly reconfigured Kaldi variant (``frame_subsampling_factor`` 1 →
   3) is already enough to break transfer of AEs crafted against the
   original Kaldi configuration.
"""

from __future__ import annotations

import numpy as np

from repro.asr.registry import build_asr, get_shared_lexicon
from repro.attacks.recursive import RecursiveTransferAttack
from repro.attacks.whitebox import WhiteBoxCarliniAttack
from repro.audio.synthesis import SpeechSynthesizer
from repro.datasets.builder import DatasetBundle
from repro.datasets.scores import AUXILIARY_ORDER
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.text.corpus import attack_command_corpus, librispeech_like_corpus
from repro.text.metrics import word_error_rate


def _transfer_row(bundle: DatasetBundle, name: str, max_aes: int) -> dict:
    """One ASR's transfer rate over the white-box AEs."""
    asr = build_asr(name)
    aes = bundle.whitebox[:max_aes]
    successes = 0
    for sample in aes:
        command = sample.waveform.metadata.get("target_text", "")
        transcription = asr.transcribe(sample.waveform).text
        if command and word_error_rate(command, transcription) == 0.0:
            successes += 1
    return {"asr": name,
            "transfer_rate": successes / max(1, len(aes)),
            "n_aes": len(aes),
            "role": "target" if name == "DS0" else "auxiliary"}


def run_transferability_study(bundle: DatasetBundle, max_aes: int = 16,
                              seed: int = 31) -> ExperimentTable:
    """AE transfer rates across the ASR suite (white-box AEs vs DS0)."""
    table = ExperimentTable(
        "Transferability", "Fraction of DS0-targeted AEs that fool each ASR")
    for name in ("DS0",) + tuple(AUXILIARY_ORDER):
        table.rows.append(_transfer_row(bundle, name, max_aes))
    return table


@register
class TransferabilityExperiment(Experiment):
    """Transfer-rate study sharded per ASR — 4 units."""

    name = "transferability"
    title = "Transferability"
    description = "Fraction of DS0-targeted AEs that fool each ASR"
    defaults = {"max_aes": 16}

    def prepare(self) -> None:
        self.bundle()

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key=name, params={"asr": name})
                for name in ("DS0",) + tuple(AUXILIARY_ORDER)]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return [_transfer_row(self.bundle(), str(unit.params["asr"]),
                              int(self.param("max_aes")))]


def run_recursive_attack_probe(seed: int = 37,
                               n_probes: int = 5) -> ExperimentTable:
    """Two-iteration recursive attacks: does chaining attacks give transfer?

    ``n_probes`` independent host/command draws are attacked; the detail
    rows illustrate the first probe, and the final ``transferable?`` row
    reports whether a *majority* of probes produced a doubly-effective
    AE.  A single draw occasionally transfers by chance (the second
    iteration does not always destroy the first's perturbation), which
    is exactly why the paper's claim is about the typical case.
    """
    if n_probes < 1:
        raise ValueError("n_probes must be >= 1")
    rng = np.random.default_rng(seed)
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=seed)
    ds0 = build_asr("DS0")
    ds1 = build_asr("DS1")
    attack = RecursiveTransferAttack(WhiteBoxCarliniAttack(ds1),
                                     WhiteBoxCarliniAttack(ds0))
    table = ExperimentTable(
        "Recursive attack", "Two-iteration recursive attack (CommanderSong style)")
    transfers = 0
    for probe in range(n_probes):
        host_text = librispeech_like_corpus().sample_one(rng)
        command = attack_command_corpus().sample_one(rng)
        host = synthesizer.synthesize(host_text)
        result = attack.run(host, command, probe_asrs={"DS0": ds0, "DS1": ds1})
        transfers += bool(result.transferable)
        if probe == 0:
            table.add_row(stage="first iteration (targets DS1)",
                          success=result.first.success,
                          transcription=result.first.transcription)
            table.add_row(stage="second iteration (targets DS0)",
                          success=result.second.success,
                          transcription=result.second.transcription)
            for name, fooled in result.fools.items():
                table.add_row(stage=f"final AE on {name}", success=fooled,
                              transcription=result.transcriptions[name])
    table.add_row(stage="transferable?", success=transfers > n_probes // 2,
                  transcription=f"{transfers}/{n_probes} probes transferred")
    return table


def run_kaldi_variant_probe(seed: int = 41) -> ExperimentTable:
    """AEs against Kaldi vs the frame-subsampling-factor-3 Kaldi variant."""
    rng = np.random.default_rng(seed)
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=seed)
    kaldi = build_asr("KAL")
    variant = build_asr("KAL-fs3")
    attack = WhiteBoxCarliniAttack(kaldi)
    host_text = librispeech_like_corpus().sample_one(rng)
    command = attack_command_corpus().sample_one(rng)
    host = synthesizer.synthesize(host_text)
    result = attack.run(host, command)
    variant_text = variant.transcribe(result.adversarial).text

    table = ExperimentTable(
        "Kaldi variant", "AE against Kaldi probed on the subsampling-factor variant")
    table.add_row(asr=kaldi.name, fooled=result.success,
                  transcription=result.transcription, command=command)
    table.add_row(asr=variant.name,
                  fooled=word_error_rate(command, variant_text) == 0.0,
                  transcription=variant_text, command=command)
    return table
