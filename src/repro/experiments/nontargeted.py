"""Section V-J: detecting non-targeted AEs.

Non-targeted AEs (benign audio plus −6 dB noise, word error rate above
80 %) are treated as unseen-attack AEs: a threshold detector is trained on
benign data with a 5 % FPR budget and its defense rate is measured; the
paper reports > 90 % regardless of the auxiliary ASR used.
"""

from __future__ import annotations

from repro.core.threshold import ThresholdDetector
from repro.datasets.scores import ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.experiments.single_aux import SINGLE_AUX_SYSTEMS


def _nontargeted_rows(dataset: ScoredDataset, auxiliaries: tuple[str, ...],
                      max_fpr: float) -> list[dict]:
    """One system's row — empty when it has no non-targeted samples."""
    benign = dataset.benign_features(auxiliaries)
    nontargeted, _ = dataset.features_for(auxiliaries, ("nontargeted-ae",))
    if nontargeted.shape[0] == 0:
        return []
    detector = ThresholdDetector().fit_benign(benign, max_fpr=max_fpr)
    return [{
        "system": "DS0+{" + ", ".join(auxiliaries) + "}",
        "threshold": float(detector.threshold),
        "fpr": detector.false_positive_rate(benign),
        "defense_rate": detector.defense_rate(nontargeted),
        "n_nontargeted": int(nontargeted.shape[0]),
    }]


def run_nontargeted_detection(dataset: ScoredDataset,
                              max_fpr: float = 0.05) -> ExperimentTable:
    """Defense rate of the threshold detector against non-targeted AEs."""
    table = ExperimentTable(
        "Non-targeted", "Detection of non-targeted (noise) AEs, Section V-J")
    for auxiliaries in SINGLE_AUX_SYSTEMS:
        table.rows.extend(_nontargeted_rows(dataset, auxiliaries, max_fpr))
    return table


@register
class NontargetedExperiment(Experiment):
    """Section V-J sharded per single-auxiliary system — 3 units."""

    name = "nontargeted"
    title = "Non-targeted"
    description = "Detection of non-targeted (noise) AEs, Section V-J"
    defaults = {"max_fpr": 0.05}

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="+".join(auxiliaries),
                         params={"auxiliaries": list(auxiliaries)})
                for auxiliaries in SINGLE_AUX_SYSTEMS]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return _nontargeted_rows(self.dataset(),
                                 tuple(unit.params["auxiliaries"]),
                                 float(self.param("max_fpr")))
