"""Resumable run directories for sharded experiments.

A :class:`RunStore` owns one run directory and journals experiment
progress on the :mod:`repro.store` primitives:

``spec.json``
    The :class:`~repro.specs.ExperimentSpec` the run was started with
    (atomic snapshot).  :meth:`begin` refuses to resume a directory
    whose recorded spec differs — a run directory binds one spec.
``shards.jsonl``
    Append-only :class:`~repro.store.Journal` of completed shards, one
    ``{"unit": key, "rows": [...]}`` record each.  A killed run leaves
    every *completed* shard on disk; restarting replays the journal and
    re-executes only the units that never committed.
``manifest.json``
    Atomic progress snapshot (``status``, unit counts) for humans and
    the sweep report.
``caches/``
    Shared-cache journals the forked shard workers bind to (see
    :func:`repro.experiments.runner.attach_worker_caches`).
``report.json`` / ``report.md``
    The reduced final table, written only when the run completes.
"""

from __future__ import annotations

import json
import os

from repro.store import Journal, atomic_write_text


class RunSpecMismatch(Exception):
    """A run directory already holds shards for a *different* spec."""


def _result_identity(payload):
    """Spec payload minus execution-only knobs (they never change rows)."""
    if isinstance(payload, dict):
        return {key: value for key, value in payload.items()
                if key != "workers"}
    return payload


class RunStore:
    """One experiment run directory: spec + shard journal + report."""

    def __init__(self, directory: str):
        self.directory = os.fspath(directory)
        self._journal = Journal(os.path.join(self.directory, "shards.jsonl"))
        self._completed: dict[str, list[dict]] = {}
        self._extra: dict = {}

    # ------------------------------------------------------------ locations
    @property
    def spec_path(self) -> str:
        return os.path.join(self.directory, "spec.json")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    @property
    def report_json_path(self) -> str:
        return os.path.join(self.directory, "report.json")

    @property
    def report_markdown_path(self) -> str:
        return os.path.join(self.directory, "report.md")

    @property
    def cache_dir(self) -> str:
        return os.path.join(self.directory, "caches")

    # ------------------------------------------------------------ lifecycle
    def begin(self, spec, experiment: str, total_units: int,
              extra: dict | None = None) -> None:
        """Open the run directory for ``spec``, creating or resuming it.

        ``extra`` is a JSON-serialisable mapping merged into every
        manifest snapshot of the run — the attribution record (suite
        composition, backend fingerprints) that makes result numbers
        traceable to the exact systems that produced them.

        Raises :class:`RunSpecMismatch` when the directory was started
        with a different spec — shard keys are only meaningful within
        one spec, so silently mixing them would corrupt the resume.
        """
        self._extra = dict(extra or {})
        os.makedirs(self.directory, exist_ok=True)
        spec_json = spec.to_json()
        try:
            with open(self.spec_path, "r", encoding="utf-8") as handle:
                existing = handle.read()
        except OSError:
            existing = None
        if existing is not None:
            try:
                same = _result_identity(json.loads(existing)) \
                    == _result_identity(json.loads(spec_json))
            except ValueError:
                same = False
            if not same:
                raise RunSpecMismatch(
                    f"run directory {self.directory!r} was started with a "
                    f"different spec; use a fresh --run-dir or delete it")
        else:
            atomic_write_text(self.spec_path, spec_json)
        self._replay()
        self._write_manifest(experiment=experiment, status="running",
                             total_units=total_units)

    def _replay(self) -> None:
        for record in self._journal.replay():
            unit = record.get("unit")
            rows = record.get("rows")
            if isinstance(unit, str) and isinstance(rows, list):
                self._completed[unit] = rows

    def completed_shards(self) -> dict[str, list[dict]]:
        """Journaled shard rows keyed by unit key (replays new appends)."""
        self._replay()
        return dict(self._completed)

    def record(self, unit_key: str, rows: list[dict]) -> None:
        """Journal one completed shard (append-only, crash-safe)."""
        self._journal.append({"unit": unit_key, "rows": rows})
        self._completed[unit_key] = rows

    # -------------------------------------------------------------- results
    def _write_manifest(self, experiment: str, status: str,
                        total_units: int) -> None:
        manifest = {
            "experiment": experiment,
            "status": status,
            "total_units": total_units,
            "completed_units": len(self._completed),
        }
        manifest.update(self._extra)
        atomic_write_text(self.manifest_path,
                          json.dumps(manifest, indent=2) + "\n")

    def manifest(self) -> dict:
        """The last manifest snapshot (empty dict when none exists)."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            return {}
        return loaded if isinstance(loaded, dict) else {}

    def mark_incomplete(self) -> None:
        """Snapshot progress for a run stopping before all units ran."""
        manifest = self.manifest()
        self._write_manifest(
            experiment=str(manifest.get("experiment", "")),
            status="incomplete",
            total_units=int(manifest.get("total_units", 0)))

    def write_report(self, table, experiment: str) -> None:
        """Persist the reduced table and mark the run complete."""
        payload = {
            "experiment": experiment,
            "title": table.name,
            "description": table.description,
            "rows": table.rows,
        }
        atomic_write_text(self.report_json_path,
                          json.dumps(payload, indent=2) + "\n")
        atomic_write_text(self.report_markdown_path, table.to_markdown())
        self._write_manifest(experiment=experiment, status="complete",
                             total_units=len(self._completed))

    def report(self) -> dict | None:
        """The completed run's report payload, or ``None``."""
        try:
            with open(self.report_json_path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            return None
        return loaded if isinstance(loaded, dict) else None
