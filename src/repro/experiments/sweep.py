"""Sweep execution: a grid of spec overlays, one merged report.

:func:`run_sweep` expands a :class:`~repro.specs.SweepSpec` into its
grid points and runs each as a sharded, resumable experiment in its own
run directory under ``<run_dir>/points/<label>``.  Point labels are
stable across invocations, so a killed sweep resumes exactly where it
stopped — completed points are recognised by their finished reports and
never re-executed, partially-run points resume from their shard
journals.

The merged report (``report.json`` + ``report.md`` at the sweep root)
carries one section per point, each row annotated with the point's
overlay values — the one-command attack×defense / suite-diversity
matrix the ROADMAP asks for.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.experiments.registry import build_experiment
from repro.experiments.runner import RunResult, execute_experiment, format_table
from repro.experiments.store import RunStore
from repro.store import atomic_write_text


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` invocation."""

    complete: bool
    total_points: int
    completed_points: int
    executed_units: int
    resumed_units: int
    run_dir: str
    report: dict | None = None


def _point_dir(run_dir: str, label: str) -> str:
    return os.path.join(run_dir, "points", label)


def run_sweep(sweep, run_dir: str, workers: int | None = None,
              max_shards: int | None = None) -> SweepResult:
    """Run every grid point of a sweep, sharded and resumable.

    Args:
        sweep: a validated :class:`~repro.specs.SweepSpec`.
        run_dir: the sweep root; per-point runs live under ``points/``.
        workers: shard worker processes per point (``None`` = each
            point's spec decides).
        max_shards: total fresh-shard budget across the *whole* sweep;
            when it runs out the sweep stops (``complete=False``) and a
            later invocation picks up from the journals.

    Returns a :class:`SweepResult`; ``report`` is the merged payload
    once every point completed.
    """
    points = sweep.points()
    os.makedirs(run_dir, exist_ok=True)
    atomic_write_text(os.path.join(run_dir, "sweep.json"), sweep.to_json())

    budget = max_shards
    executed = resumed = completed = 0
    sections = []
    for point in points:
        store = RunStore(_point_dir(run_dir, point.label))
        if budget is not None and budget <= 0:
            existing = store.report()
            if existing is not None:
                completed += 1
                sections.append((point, existing))
            continue
        experiment = build_experiment(point.spec)
        result: RunResult = execute_experiment(
            experiment, store=store, workers=workers, max_shards=budget)
        executed += result.executed_units
        resumed += result.resumed_units
        if budget is not None:
            budget -= result.executed_units
        if result.complete:
            completed += 1
            sections.append((point, store.report()))

    complete = completed == len(points)
    manifest = {
        "name": sweep.name or sweep.base.experiment,
        "status": "complete" if complete else "incomplete",
        "total_points": len(points),
        "completed_points": completed,
    }
    atomic_write_text(os.path.join(run_dir, "manifest.json"),
                      json.dumps(manifest, indent=2) + "\n")
    report = None
    if complete:
        report = _write_merged_report(sweep, run_dir, sections)
    return SweepResult(complete=complete, total_points=len(points),
                       completed_points=completed, executed_units=executed,
                       resumed_units=resumed, run_dir=run_dir, report=report)


def _write_merged_report(sweep, run_dir: str, sections) -> dict:
    """Merge per-point reports into one JSON payload + markdown table."""
    name = sweep.name or sweep.base.experiment
    payload = {
        "sweep": name,
        "experiment": sweep.base.experiment,
        "grid": {dotted: list(values) for dotted, values in sweep.grid},
        "points": [{
            "label": point.label,
            "overlays": dict(point.overlays),
            "title": report.get("title", ""),
            "rows": report.get("rows", []),
        } for point, report in sections],
    }
    atomic_write_text(os.path.join(run_dir, "report.json"),
                      json.dumps(payload, indent=2) + "\n")

    # One flat markdown table: overlay leaves become leading columns, so
    # grid points are directly comparable row by row.
    merged_rows = []
    for point, report in sections:
        leaves = {dotted.rsplit(".", 1)[-1]: value
                  for dotted, value in point.overlays.items()}
        for row in report.get("rows", []):
            merged_rows.append({**leaves, **row})
    title = f"Sweep: {name}" if name else "Sweep"
    markdown = format_table(merged_rows, title=title)
    atomic_write_text(os.path.join(run_dir, "report.md"), markdown)
    return payload
