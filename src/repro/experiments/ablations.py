"""Ablations called out in the paper's text.

* Kaldi as a weak auxiliary: Section V-E notes that using an inaccurate
  auxiliary ASR (Kaldi) drops detection accuracy below 80 %.
* Baseline comparison: the related-work detectors (temporal dependency,
  pre-processing, hidden-voice-command classifier) are run on the same
  dataset so their behaviour can be contrasted with MVP-EARS.
"""

from __future__ import annotations

import numpy as np

from repro.asr.registry import build_asr
from repro.baselines.hvc_logistic import HiddenVoiceCommandDetector
from repro.baselines.preprocessing import PreprocessingDetector
from repro.baselines.temporal_dependency import TemporalDependencyDetector
from repro.core.features import score_vectors
from repro.datasets.builder import DatasetBundle
from repro.datasets.scores import ScoredDataset
from repro.experiments.runner import ExperimentTable
from repro.ml.metrics import classification_report
from repro.ml.model_selection import cross_validate
from repro.ml.registry import build_classifier


def run_kaldi_auxiliary_ablation(bundle: DatasetBundle, dataset: ScoredDataset,
                                 max_samples: int = 64, n_splits: int = 5,
                                 seed: int = 43,
                                 classifier_name: str = "SVM",
                                 workers: int | None = None,
                                 scoring=None) -> ExperimentTable:
    """Compare DS0+{Kaldi} against DS0+{DS1} on the same samples.

    Feature extraction routes through the transcription engine, so the
    DS0 transcriptions of these clips come from the shared cache when the
    scored dataset was computed in the same process; only the Kaldi
    column pays decode time.  Scoring routes through a batch
    :class:`~repro.similarity.engine.SimilarityEngine` (pass ``scoring=``
    to inject a configured one).
    """
    target_asr = build_asr("DS0")
    kaldi = build_asr("KAL")
    samples = (bundle.benign + bundle.adversarial)[:max_samples]
    labels = np.array([sample.label for sample in samples])
    waveforms = [sample.waveform for sample in samples]
    kaldi_features = score_vectors(waveforms, target_asr, [kaldi],
                                   workers=workers, scoring=scoring)

    table = ExperimentTable(
        "Kaldi ablation", "Detection accuracy with an inaccurate auxiliary ASR")
    result = cross_validate(lambda: build_classifier(classifier_name),
                            kaldi_features, labels, n_splits=n_splits, seed=seed)
    table.add_row(system="DS0+{KAL}", accuracy=result.accuracy_mean,
                  fpr=result.fpr_mean, fnr=result.fnr_mean)

    ds1_features, ds1_labels = dataset.features_for(("DS1",))
    ds1_result = cross_validate(lambda: build_classifier(classifier_name),
                                ds1_features, ds1_labels, n_splits=n_splits, seed=seed)
    table.add_row(system="DS0+{DS1}", accuracy=ds1_result.accuracy_mean,
                  fpr=ds1_result.fpr_mean, fnr=ds1_result.fnr_mean)
    return table


def run_baseline_comparison(bundle: DatasetBundle, max_samples: int = 48,
                            seed: int = 47) -> ExperimentTable:
    """Run the three related-work baselines on the same benign/AE samples."""
    rng = np.random.default_rng(seed)
    samples = list(bundle.benign) + list(bundle.adversarial)
    rng.shuffle(samples)
    samples = samples[:max_samples]
    labels = np.array([sample.label for sample in samples])
    waveforms = [sample.waveform for sample in samples]
    ds0 = build_asr("DS0")

    table = ExperimentTable("Baselines", "Related-work detectors on the same dataset")

    temporal = TemporalDependencyDetector(ds0)
    temporal_preds = np.array([int(temporal.is_adversarial(w)) for w in waveforms])
    report = classification_report(labels, temporal_preds)
    table.add_row(method="Temporal dependency (Yang et al.)",
                  accuracy=report.accuracy, fpr=report.fpr, fnr=report.fnr)

    preprocessing = PreprocessingDetector(ds0)
    preprocessing_preds = np.array([int(preprocessing.is_adversarial(w)) for w in waveforms])
    report = classification_report(labels, preprocessing_preds)
    table.add_row(method="Pre-processing (Rajaratnam et al.)",
                  accuracy=report.accuracy, fpr=report.fpr, fnr=report.fnr)

    hvc = HiddenVoiceCommandDetector()
    half = len(waveforms) // 2
    hvc.fit(waveforms[:half], labels[:half])
    hvc_preds = hvc.predict(waveforms[half:])
    report = classification_report(labels[half:], hvc_preds)
    table.add_row(method="HVC logistic regression (Carlini et al.)",
                  accuracy=report.accuracy, fpr=report.fpr, fnr=report.fnr)
    return table
