"""Ablations called out in the paper's text.

* Kaldi as a weak auxiliary: Section V-E notes that using an inaccurate
  auxiliary ASR (Kaldi) drops detection accuracy below 80 %.
* Baseline comparison: the related-work detectors (temporal dependency,
  pre-processing, hidden-voice-command classifier) are run on the same
  dataset so their behaviour can be contrasted with MVP-EARS.
"""

from __future__ import annotations

import numpy as np

from repro.asr.registry import build_asr
from repro.baselines.hvc_logistic import HiddenVoiceCommandDetector
from repro.baselines.preprocessing import PreprocessingDetector
from repro.baselines.temporal_dependency import TemporalDependencyDetector
from repro.core.features import score_vectors
from repro.datasets.builder import DatasetBundle
from repro.datasets.scores import ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.ml.metrics import classification_report
from repro.ml.model_selection import cross_validate
from repro.ml.registry import build_classifier


def _kaldi_row(bundle: DatasetBundle, max_samples: int, n_splits: int,
               seed: int, classifier_name: str,
               workers: int | None = None, scoring=None) -> dict:
    """The DS0+{KAL} row: score the samples against Kaldi, cross-validate."""
    target_asr = build_asr("DS0")
    kaldi = build_asr("KAL")
    samples = (bundle.benign + bundle.adversarial)[:max_samples]
    labels = np.array([sample.label for sample in samples])
    waveforms = [sample.waveform for sample in samples]
    kaldi_features = score_vectors(waveforms, target_asr, [kaldi],
                                   workers=workers, scoring=scoring)
    result = cross_validate(lambda: build_classifier(classifier_name),
                            kaldi_features, labels, n_splits=n_splits, seed=seed)
    return {"system": "DS0+{KAL}", "accuracy": result.accuracy_mean,
            "fpr": result.fpr_mean, "fnr": result.fnr_mean}


def _ds1_row(dataset: ScoredDataset, n_splits: int, seed: int,
             classifier_name: str) -> dict:
    """The DS0+{DS1} comparison row, from the pre-computed scores."""
    ds1_features, ds1_labels = dataset.features_for(("DS1",))
    ds1_result = cross_validate(lambda: build_classifier(classifier_name),
                                ds1_features, ds1_labels, n_splits=n_splits, seed=seed)
    return {"system": "DS0+{DS1}", "accuracy": ds1_result.accuracy_mean,
            "fpr": ds1_result.fpr_mean, "fnr": ds1_result.fnr_mean}


def run_kaldi_auxiliary_ablation(bundle: DatasetBundle, dataset: ScoredDataset,
                                 max_samples: int = 64, n_splits: int = 5,
                                 seed: int = 43,
                                 classifier_name: str = "SVM",
                                 workers: int | None = None,
                                 scoring=None) -> ExperimentTable:
    """Compare DS0+{Kaldi} against DS0+{DS1} on the same samples.

    Feature extraction routes through the transcription engine, so the
    DS0 transcriptions of these clips come from the shared cache when the
    scored dataset was computed in the same process; only the Kaldi
    column pays decode time.  Scoring routes through a batch
    :class:`~repro.similarity.engine.SimilarityEngine` (pass ``scoring=``
    to inject a configured one).
    """
    table = ExperimentTable(
        "Kaldi ablation", "Detection accuracy with an inaccurate auxiliary ASR")
    table.rows.append(_kaldi_row(bundle, max_samples, n_splits, seed,
                                 classifier_name, workers, scoring))
    table.rows.append(_ds1_row(dataset, n_splits, seed, classifier_name))
    return table


def _baseline_samples(bundle: DatasetBundle, max_samples: int, seed: int):
    """The deterministic shuffled sample subset every baseline shares."""
    rng = np.random.default_rng(seed)
    samples = list(bundle.benign) + list(bundle.adversarial)
    rng.shuffle(samples)
    samples = samples[:max_samples]
    labels = np.array([sample.label for sample in samples])
    waveforms = [sample.waveform for sample in samples]
    return waveforms, labels


def _baseline_row(method: str, waveforms, labels) -> dict:
    """One related-work baseline evaluated on the shared subset."""
    if method == "temporal":
        temporal = TemporalDependencyDetector(build_asr("DS0"))
        preds = np.array([int(temporal.is_adversarial(w)) for w in waveforms])
        report = classification_report(labels, preds)
        label = "Temporal dependency (Yang et al.)"
    elif method == "preprocessing":
        preprocessing = PreprocessingDetector(build_asr("DS0"))
        preds = np.array([int(preprocessing.is_adversarial(w)) for w in waveforms])
        report = classification_report(labels, preds)
        label = "Pre-processing (Rajaratnam et al.)"
    elif method == "hvc":
        hvc = HiddenVoiceCommandDetector()
        half = len(waveforms) // 2
        hvc.fit(waveforms[:half], labels[:half])
        report = classification_report(labels[half:], hvc.predict(waveforms[half:]))
        label = "HVC logistic regression (Carlini et al.)"
    else:
        raise ValueError(f"unknown baseline {method!r}")
    return {"method": label, "accuracy": report.accuracy,
            "fpr": report.fpr, "fnr": report.fnr}


_BASELINE_METHODS = ("temporal", "preprocessing", "hvc")


def run_baseline_comparison(bundle: DatasetBundle, max_samples: int = 48,
                            seed: int = 47) -> ExperimentTable:
    """Run the three related-work baselines on the same benign/AE samples."""
    waveforms, labels = _baseline_samples(bundle, max_samples, seed)
    table = ExperimentTable("Baselines", "Related-work detectors on the same dataset")
    for method in _BASELINE_METHODS:
        table.rows.append(_baseline_row(method, waveforms, labels))
    return table


@register
class KaldiAblationExperiment(Experiment):
    """Kaldi-auxiliary ablation sharded per system row — 2 units."""

    name = "kaldi_ablation"
    title = "Kaldi ablation"
    description = "Detection accuracy with an inaccurate auxiliary ASR"
    defaults = {"max_samples": 64, "n_splits": 5, "cv_seed": 43}

    def prepare(self) -> None:
        self.bundle()
        self.dataset()

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="KAL"), WorkUnit(key="DS1")]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        if unit.key == "KAL":
            return [_kaldi_row(self.bundle(), int(self.param("max_samples")),
                               int(self.param("n_splits")),
                               int(self.param("cv_seed")),
                               self.classifier_name)]
        return [_ds1_row(self.dataset(), int(self.param("n_splits")),
                         int(self.param("cv_seed")), self.classifier_name)]


@register
class BaselineComparisonExperiment(Experiment):
    """Baseline comparison sharded per related-work method — 3 units.

    Each unit re-derives the shared shuffled subset (a cheap,
    deterministic ``default_rng(seed)`` shuffle), so the per-method rows
    match the wrapper's exactly.
    """

    name = "baseline_comparison"
    title = "Baselines"
    description = "Related-work detectors on the same dataset"
    defaults = {"max_samples": 48, "shuffle_seed": 47}

    def prepare(self) -> None:
        self.bundle()

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key=method, params={"method": method})
                for method in _BASELINE_METHODS]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        waveforms, labels = _baseline_samples(
            self.bundle(), int(self.param("max_samples")),
            int(self.param("shuffle_seed")))
        return [_baseline_row(str(unit.params["method"]), waveforms, labels)]
