"""Table III: choosing the similarity calculation method.

Six combinations of {Cosine, Jaccard, JaroWinkler} × {raw, phonetic
encoding} are evaluated on four example systems with an 80/20 split and an
SVM classifier; phonetic encoding + Jaro-Winkler wins.

Score recomputation under each method routes through the batch
:class:`~repro.similarity.engine.SimilarityEngine` (inside
:meth:`ScoredDataset.features_for`): the four example systems share
auxiliary columns, so with the shared pair-score cache every distinct
(target, auxiliary) transcription pair is scored once per method instead
of once per system.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.scores import ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.ml.metrics import classification_report
from repro.ml.model_selection import train_test_split
from repro.ml.registry import build_classifier
from repro.similarity.scorer import SIMILARITY_METHODS

#: The four example systems of Table III (auxiliary combinations).
TABLE3_SYSTEMS: tuple[tuple[str, ...], ...] = (
    ("DS1", "GCS"),
    ("DS1", "AT"),
    ("GCS", "AT"),
    ("DS1", "GCS", "AT"),
)


def _table3_row(dataset: ScoredDataset, method: str,
                auxiliaries: tuple[str, ...], classifier_name: str,
                test_fraction: float, seed: int) -> dict:
    """One Table III cell: one method on one example system."""
    features, labels = dataset.features_for(auxiliaries, method=method)
    train_x, test_x, train_y, test_y = train_test_split(
        features, labels, test_fraction=test_fraction, seed=seed)
    classifier = build_classifier(classifier_name)
    classifier.fit(train_x, train_y)
    report = classification_report(test_y, classifier.predict(test_x))
    return {
        "method": method,
        "system": "DS0+{" + ", ".join(auxiliaries) + "}",
        "accuracy": report.accuracy,
        "fpr": report.fpr,
        "fnr": report.fnr,
        "n_test": int(test_y.shape[0]),
    }


def run_table3_similarity_methods(dataset: ScoredDataset,
                                  classifier_name: str = "SVM",
                                  test_fraction: float = 0.2,
                                  seed: int = 7) -> ExperimentTable:
    """Evaluate every similarity method on every example system."""
    table = ExperimentTable(
        "Table III", "Accuracies with different similarity calculation methods")
    for method in SIMILARITY_METHODS:
        for auxiliaries in TABLE3_SYSTEMS:
            table.rows.append(_table3_row(dataset, method, auxiliaries,
                                          classifier_name, test_fraction, seed))
    return table


@register
class SimilarityMethodsExperiment(Experiment):
    """Table III sharded per (method, system) cell — 24 units."""

    name = "similarity_methods"
    title = "Table III"
    description = "Accuracies with different similarity calculation methods"
    defaults = {"test_fraction": 0.2, "split_seed": 7}

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key=f"{method}|{'+'.join(auxiliaries)}",
                         params={"method": method,
                                 "auxiliaries": list(auxiliaries)})
                for method in SIMILARITY_METHODS
                for auxiliaries in TABLE3_SYSTEMS]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return [_table3_row(self.dataset(), unit.params["method"],
                            tuple(unit.params["auxiliaries"]),
                            self.classifier_name,
                            float(self.param("test_fraction")),
                            int(self.param("split_seed")))]


def best_method(table: ExperimentTable) -> str:
    """The method with the highest mean accuracy across systems."""
    methods: dict[str, list[float]] = {}
    for row in table.rows:
        methods.setdefault(row["method"], []).append(row["accuracy"])
    return max(methods, key=lambda m: float(np.mean(methods[m])))
