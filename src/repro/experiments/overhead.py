"""Section V-I: time overhead of the detection system.

The paper measures the overhead of DS0+{DS1} (the cheapest deployable
configuration, both models local): the extra recognition time caused by
running the auxiliary model in parallel, the similarity-calculation time
and the classification time — all negligible compared with the target
model's own recognition time.

The measurement routes through :class:`~repro.pipeline.detection
.DetectionPipeline`, so recognition genuinely fans out across the engine
worker pool and per-stage wall-clock timing comes straight from the
pipeline.  Private, empty transcription *and* pair-score caches are used
so every number reflects real decode and scoring work; pass ``workers=0``
to reproduce the original sequential timing path and
``scoring_backend="reference"`` to time the original scalar scoring path.
"""

from __future__ import annotations

import numpy as np

from repro.build import build
from repro.datasets.builder import DatasetBundle
from repro.datasets.scores import ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import (
    Experiment,
    ExperimentTable,
    WorkUnit,
    add_timing_rows,
)
from repro.pipeline.detection import DetectionPipeline
from repro.specs import (
    ASRSpec,
    ClassifierSpec,
    DetectorSpec,
    PipelineSpec,
    ScoringSpec,
    SuiteSpec,
)


def run_overhead_measurement(bundle: DatasetBundle, dataset: ScoredDataset,
                             max_samples: int = 24,
                             classifier_name: str = "SVM",
                             workers: int | None = None,
                             scoring_backend: str = "fast") -> ExperimentTable:
    """Measure per-component detection overhead on DS0+{DS1}.

    Args:
        bundle: audio samples to screen.
        dataset: pre-computed scores used to train the classifier.
        max_samples: number of clips to time.
        classifier_name: classifier registry name.
        workers: engine pool size (``0`` = sequential path, ``None`` =
            default parallel fan-out).
        scoring_backend: similarity backend to time (``"fast"`` — the
            default everywhere — or ``"reference"``, the paper-faithful
            scalar path).
    """
    # Private caches: overhead numbers must reflect real decoding and
    # scoring, not hits left behind by earlier experiments in the same
    # process.  The system under measurement, as a declarative spec:
    spec = DetectorSpec(
        suite=SuiteSpec(target=ASRSpec("DS0"), auxiliaries=(ASRSpec("DS1"),)),
        scoring=ScoringSpec(backend=scoring_backend, cache="private"),
        classifier=ClassifierSpec(classifier_name),
        pipeline=PipelineSpec(workers=workers, cache="private"))
    detector = build(spec, fit=False)
    target_asr = detector.target_asr
    features, labels = dataset.features_for(("DS1",))
    detector.fit_features(features, labels)

    samples = (bundle.benign + bundle.adversarial)[:max_samples]
    pipeline = DetectionPipeline(detector)
    batch = pipeline.detect_batch([sample.waveform for sample in samples])

    # The baseline is the target model's own decode time — what the system
    # pays with no detector at all.  It is measured in a dedicated
    # sequential pass so pool contention inside the batch cannot inflate
    # it (aux-vs-target overheads inside the batch are contended equally,
    # so their difference stays meaningful).
    target_only = float(np.mean([target_asr.transcribe(s.waveform).elapsed_seconds
                                 for s in samples]))
    stage_means = batch.mean_stage_seconds()
    table = ExperimentTable("Overhead", "Detection time overhead on DS0+{DS1}")
    add_timing_rows(table, target_only, [
        ("parallel recognition overhead",
         float(np.mean(batch.recognition_overheads))),
        ("similarity calculation", stage_means["similarity"]),
        ("classification", stage_means["classification"]),
    ])
    # The batch total is reported for context, not as an overhead: it
    # contains the baseline decode itself, so a ratio would mislead.
    table.add_row(component="pipeline total (per clip)",
                  mean_seconds=stage_means["total"])
    return table


@register
class OverheadExperiment(Experiment):
    """Section V-I timing: single unit (wall-clock must not be contended).

    Sharding a timing measurement across sibling workers would make the
    pool contention part of the number; the whole measurement is one
    unit so its internal fan-out is the only parallelism.
    """

    name = "overhead"
    title = "Overhead"
    description = "Detection time overhead on DS0+{DS1}"
    defaults = {"max_samples": 24}

    def prepare(self) -> None:
        self.bundle()
        self.dataset()

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="timing")]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return run_overhead_measurement(
            self.bundle(), self.dataset(),
            max_samples=int(self.param("max_samples")),
            classifier_name=self.classifier_name,
            scoring_backend=self.spec.detector.scoring.backend).rows
