"""Section V-I: time overhead of the detection system.

The paper measures the overhead of DS0+{DS1} (the cheapest deployable
configuration, both models local): the extra recognition time caused by
running the auxiliary model in parallel, the similarity-calculation time
and the classification time — all negligible compared with the target
model's own recognition time.
"""

from __future__ import annotations

import numpy as np

from repro.asr.registry import build_asr
from repro.core.detector import MVPEarsDetector
from repro.datasets.builder import DatasetBundle
from repro.datasets.scores import ScoredDataset
from repro.experiments.runner import ExperimentTable


def run_overhead_measurement(bundle: DatasetBundle, dataset: ScoredDataset,
                             max_samples: int = 24,
                             classifier_name: str = "SVM") -> ExperimentTable:
    """Measure per-component detection overhead on DS0+{DS1}."""
    target_asr = build_asr("DS0")
    auxiliary = build_asr("DS1")
    detector = MVPEarsDetector(target_asr, [auxiliary], classifier=classifier_name)
    features, labels = dataset.features_for(("DS1",))
    detector.fit_features(features, labels)

    samples = (bundle.benign + bundle.adversarial)[:max_samples]
    recognition_times = []
    overhead_times = []
    similarity_times = []
    classification_times = []
    for sample in samples:
        result = detector.detect(sample.waveform)
        recognition_times.append(result.timing["recognition"])
        overhead_times.append(result.timing["recognition_overhead"])
        similarity_times.append(result.timing["similarity"])
        classification_times.append(result.timing["classification"])

    target_only = float(np.mean([target_asr.transcribe(s.waveform).elapsed_seconds
                                 for s in samples]))
    table = ExperimentTable("Overhead", "Detection time overhead on DS0+{DS1}")
    table.add_row(component="target recognition (baseline)",
                  mean_seconds=target_only, relative_overhead=0.0)
    table.add_row(component="parallel recognition overhead",
                  mean_seconds=float(np.mean(overhead_times)),
                  relative_overhead=float(np.mean(overhead_times) / max(target_only, 1e-9)))
    table.add_row(component="similarity calculation",
                  mean_seconds=float(np.mean(similarity_times)),
                  relative_overhead=float(np.mean(similarity_times) / max(target_only, 1e-9)))
    table.add_row(component="classification",
                  mean_seconds=float(np.mean(classification_times)),
                  relative_overhead=float(np.mean(classification_times) / max(target_only, 1e-9)))
    return table
