"""Tables VII, VIII and Figure 5: robustness against unseen attack methods.

* Table VII / Figure 5: the single-auxiliary systems are equipped with a
  threshold detector trained on benign data only (threshold chosen so the
  FPR stays below 5 %) and tested against all AEs; varying the threshold
  yields ROC curves with AUC close to 1.
* Table VIII: multi-auxiliary systems are trained on AEs from one attack
  family (white-box or black-box) and tested on the other, measuring the
  defense rate against the unseen family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.threshold import ThresholdDetector
from repro.datasets.scores import ScoredDataset
from repro.experiments.multi_aux import MULTI_AUX_SYSTEMS
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.experiments.single_aux import SINGLE_AUX_SYSTEMS
from repro.ml.metrics import auc as compute_auc
from repro.ml.metrics import defense_rate, roc_curve
from repro.ml.registry import build_classifier


def _table7_row(dataset: ScoredDataset, auxiliaries: tuple[str, ...],
                max_fpr: float) -> dict:
    """One Table VII row: one system's threshold detector."""
    benign = dataset.benign_features(auxiliaries)
    adversarial = dataset.adversarial_features(auxiliaries)
    detector = ThresholdDetector().fit_benign(benign, max_fpr=max_fpr)
    return {
        "system": "DS0+{" + ", ".join(auxiliaries) + "}",
        "threshold": float(detector.threshold),
        "fpr": detector.false_positive_rate(benign),
        "false_negatives": int(np.sum(detector.predict(adversarial) == 0)),
        "fnr": float(np.mean(detector.predict(adversarial) == 0)),
        "defense_rate": detector.defense_rate(adversarial),
    }


def run_table7_threshold_detector(dataset: ScoredDataset,
                                  max_fpr: float = 0.05) -> ExperimentTable:
    """Threshold detector trained on benign data, tested on all AEs."""
    table = ExperimentTable(
        "Table VII", "Detection of unseen-attack AEs by single-auxiliary systems")
    for auxiliaries in SINGLE_AUX_SYSTEMS:
        table.rows.append(_table7_row(dataset, auxiliaries, max_fpr))
    return table


@dataclass
class RocResult:
    """ROC curve of one single-auxiliary system (Figure 5)."""

    system: str
    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray
    auc: float


def _figure5_roc(dataset: ScoredDataset,
                 auxiliaries: tuple[str, ...]) -> RocResult:
    """One system's ROC curve."""
    benign = dataset.benign_features(auxiliaries)
    adversarial = dataset.adversarial_features(auxiliaries)
    detector = ThresholdDetector(threshold=0.5)
    scores = np.concatenate([detector.decision_scores(benign),
                             detector.decision_scores(adversarial)])
    labels = np.concatenate([np.zeros(benign.shape[0], dtype=int),
                             np.ones(adversarial.shape[0], dtype=int)])
    fpr, tpr, thresholds = roc_curve(labels, scores)
    return RocResult(
        system="DS0+{" + ", ".join(auxiliaries) + "}",
        fpr=fpr, tpr=tpr, thresholds=thresholds,
        auc=compute_auc(fpr, tpr))


def run_figure5_roc(dataset: ScoredDataset) -> list[RocResult]:
    """ROC curves of the three single-auxiliary threshold detectors."""
    return [_figure5_roc(dataset, auxiliaries)
            for auxiliaries in SINGLE_AUX_SYSTEMS]


def run_table8_cross_attack(dataset: ScoredDataset, seed: int = 19,
                            classifier_name: str = "SVM") -> ExperimentTable:
    """Train on one attack family, test the defense rate on the other."""
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        "Table VIII", "Defense rates of multi-auxiliary systems against unseen attacks")
    for auxiliaries in MULTI_AUX_SYSTEMS:
        benign = dataset.benign_features(auxiliaries)
        whitebox, _ = dataset.features_for(auxiliaries, ("whitebox-ae",))
        blackbox, _ = dataset.features_for(auxiliaries, ("blackbox-ae",))
        row = {"system": "DS0+{" + ", ".join(auxiliaries) + "}"}
        for train_kind, train_set, test_set, column in (
                ("white-box", whitebox, blackbox, "defense_rate_blackbox"),
                ("black-box", blackbox, whitebox, "defense_rate_whitebox")):
            n_benign = min(benign.shape[0], max(1, train_set.shape[0]))
            benign_idx = rng.choice(benign.shape[0], size=n_benign, replace=False)
            train_features = np.vstack([benign[benign_idx], train_set])
            train_labels = np.concatenate([np.zeros(n_benign, dtype=int),
                                           np.ones(train_set.shape[0], dtype=int)])
            classifier = build_classifier(classifier_name)
            classifier.fit(train_features, train_labels)
            predictions = classifier.predict(test_set)
            row[column] = defense_rate(np.ones(test_set.shape[0], dtype=int), predictions)
            del train_kind
        table.add_row(**row)
    return table


@register
class Table7Experiment(Experiment):
    """Table VII sharded per single-auxiliary system — 3 units."""

    name = "unseen_threshold"
    title = "Table VII"
    description = "Detection of unseen-attack AEs by single-auxiliary systems"
    defaults = {"max_fpr": 0.05}

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="+".join(auxiliaries),
                         params={"auxiliaries": list(auxiliaries)})
                for auxiliaries in SINGLE_AUX_SYSTEMS]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return [_table7_row(self.dataset(),
                            tuple(unit.params["auxiliaries"]),
                            float(self.param("max_fpr")))]


@register
class Figure5Experiment(Experiment):
    """Figure 5 sharded per system; rows summarise each ROC curve."""

    name = "figure5_roc"
    title = "Figure 5"
    description = "ROC of the single-auxiliary threshold detectors"

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="+".join(auxiliaries),
                         params={"auxiliaries": list(auxiliaries)})
                for auxiliaries in SINGLE_AUX_SYSTEMS]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        result = _figure5_roc(self.dataset(),
                              tuple(unit.params["auxiliaries"]))
        return [{
            "system": result.system,
            "auc": float(result.auc),
            "n_points": int(result.fpr.size),
        }]


@register
class Table8Experiment(Experiment):
    """Table VIII: single unit — one RNG stream spans the system loop.

    The wrapper consumes one ``default_rng(seed)`` across all four
    systems, so splitting systems into shards would change the draws;
    bit-identity wins over parallelism here.
    """

    name = "cross_attack"
    title = "Table VIII"
    description = "Defense rates of multi-auxiliary systems against unseen attacks"
    defaults = {"train_seed": 19}

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="all-systems")]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return run_table8_cross_attack(self.dataset(),
                                       seed=int(self.param("train_seed")),
                                       classifier_name=self.classifier_name).rows
