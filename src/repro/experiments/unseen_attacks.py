"""Tables VII, VIII and Figure 5: robustness against unseen attack methods.

* Table VII / Figure 5: the single-auxiliary systems are equipped with a
  threshold detector trained on benign data only (threshold chosen so the
  FPR stays below 5 %) and tested against all AEs; varying the threshold
  yields ROC curves with AUC close to 1.
* Table VIII: multi-auxiliary systems are trained on AEs from one attack
  family (white-box or black-box) and tested on the other, measuring the
  defense rate against the unseen family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.threshold import ThresholdDetector
from repro.datasets.scores import ScoredDataset
from repro.experiments.multi_aux import MULTI_AUX_SYSTEMS
from repro.experiments.runner import ExperimentTable
from repro.experiments.single_aux import SINGLE_AUX_SYSTEMS
from repro.ml.metrics import auc as compute_auc
from repro.ml.metrics import defense_rate, roc_curve
from repro.ml.registry import build_classifier


def run_table7_threshold_detector(dataset: ScoredDataset,
                                  max_fpr: float = 0.05) -> ExperimentTable:
    """Threshold detector trained on benign data, tested on all AEs."""
    table = ExperimentTable(
        "Table VII", "Detection of unseen-attack AEs by single-auxiliary systems")
    for auxiliaries in SINGLE_AUX_SYSTEMS:
        benign = dataset.benign_features(auxiliaries)
        adversarial = dataset.adversarial_features(auxiliaries)
        detector = ThresholdDetector().fit_benign(benign, max_fpr=max_fpr)
        table.add_row(
            system="DS0+{" + ", ".join(auxiliaries) + "}",
            threshold=float(detector.threshold),
            fpr=detector.false_positive_rate(benign),
            false_negatives=int(np.sum(detector.predict(adversarial) == 0)),
            fnr=float(np.mean(detector.predict(adversarial) == 0)),
            defense_rate=detector.defense_rate(adversarial),
        )
    return table


@dataclass
class RocResult:
    """ROC curve of one single-auxiliary system (Figure 5)."""

    system: str
    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray
    auc: float


def run_figure5_roc(dataset: ScoredDataset) -> list[RocResult]:
    """ROC curves of the three single-auxiliary threshold detectors."""
    results = []
    for auxiliaries in SINGLE_AUX_SYSTEMS:
        benign = dataset.benign_features(auxiliaries)
        adversarial = dataset.adversarial_features(auxiliaries)
        detector = ThresholdDetector(threshold=0.5)
        scores = np.concatenate([detector.decision_scores(benign),
                                 detector.decision_scores(adversarial)])
        labels = np.concatenate([np.zeros(benign.shape[0], dtype=int),
                                 np.ones(adversarial.shape[0], dtype=int)])
        fpr, tpr, thresholds = roc_curve(labels, scores)
        results.append(RocResult(
            system="DS0+{" + ", ".join(auxiliaries) + "}",
            fpr=fpr, tpr=tpr, thresholds=thresholds,
            auc=compute_auc(fpr, tpr)))
    return results


def run_table8_cross_attack(dataset: ScoredDataset, seed: int = 19,
                            classifier_name: str = "SVM") -> ExperimentTable:
    """Train on one attack family, test the defense rate on the other."""
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        "Table VIII", "Defense rates of multi-auxiliary systems against unseen attacks")
    for auxiliaries in MULTI_AUX_SYSTEMS:
        benign = dataset.benign_features(auxiliaries)
        whitebox, _ = dataset.features_for(auxiliaries, ("whitebox-ae",))
        blackbox, _ = dataset.features_for(auxiliaries, ("blackbox-ae",))
        row = {"system": "DS0+{" + ", ".join(auxiliaries) + "}"}
        for train_kind, train_set, test_set, column in (
                ("white-box", whitebox, blackbox, "defense_rate_blackbox"),
                ("black-box", blackbox, whitebox, "defense_rate_whitebox")):
            n_benign = min(benign.shape[0], max(1, train_set.shape[0]))
            benign_idx = rng.choice(benign.shape[0], size=n_benign, replace=False)
            train_features = np.vstack([benign[benign_idx], train_set])
            train_labels = np.concatenate([np.zeros(n_benign, dtype=int),
                                           np.ones(train_set.shape[0], dtype=int)])
            classifier = build_classifier(classifier_name)
            classifier.fit(train_features, train_labels)
            predictions = classifier.predict(test_set)
            row[column] = defense_rate(np.ones(test_set.shape[0], dtype=int), predictions)
            del train_kind
        table.add_row(**row)
    return table
