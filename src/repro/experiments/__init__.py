"""Experiment harness: one module per table / figure of the paper.

Two complementary surfaces:

* The classic ``run_*`` functions — each takes its inputs (usually a
  :class:`~repro.datasets.scores.ScoredDataset`) and returns the table
  the paper reports.  They are thin, bit-identical wrappers over the
  unified runner's shard helpers.
* The :class:`~repro.experiments.runner.Experiment` registry — every
  module registers its experiments by name
  (:func:`~repro.experiments.registry.experiment_names`), which is what
  ``repro run`` / ``repro sweep`` execute sharded and resumable (see
  docs/EXPERIMENTS.md).

Importing this package loads every experiment module, which populates
the registry as a side effect.
"""

from repro.experiments.registry import (
    build_experiment,
    experiment_defaults,
    experiment_names,
)
from repro.experiments.runner import (
    Experiment,
    ExperimentTable,
    RunResult,
    WorkUnit,
    execute_experiment,
    format_table,
)
from repro.experiments.store import RunSpecMismatch, RunStore
from repro.experiments.feasibility import (
    run_table1_example,
    run_table2_dataset_summary,
    run_figure4_histograms,
)
from repro.experiments.similarity_methods import run_table3_similarity_methods
from repro.experiments.single_aux import run_table4_single_auxiliary
from repro.experiments.multi_aux import (
    run_table5_multi_auxiliary,
    run_table6_asr_count_impact,
)
from repro.experiments.unseen_attacks import (
    run_table7_threshold_detector,
    run_figure5_roc,
    run_table8_cross_attack,
)
from repro.experiments.mae_aes import (
    run_table10_mae_accuracy,
    run_table11_cross_type_defense,
    run_table12_comprehensive,
)
from repro.experiments.overhead import run_overhead_measurement
from repro.experiments.nontargeted import run_nontargeted_detection
from repro.experiments.transferability import run_transferability_study
from repro.experiments.transform_ensemble import run_transform_ensemble_comparison
from repro.experiments.suite_scaling import run_suite_scaling
from repro.experiments.ablations import (
    run_kaldi_auxiliary_ablation,
    run_baseline_comparison,
)
from repro.experiments import scored_dataset as _scored_dataset  # noqa: F401
from repro.experiments.sweep import SweepResult, run_sweep

__all__ = [
    "Experiment",
    "ExperimentTable",
    "RunResult",
    "RunSpecMismatch",
    "RunStore",
    "SweepResult",
    "WorkUnit",
    "build_experiment",
    "execute_experiment",
    "experiment_defaults",
    "experiment_names",
    "format_table",
    "run_sweep",
    "run_table1_example",
    "run_table2_dataset_summary",
    "run_figure4_histograms",
    "run_table3_similarity_methods",
    "run_table4_single_auxiliary",
    "run_table5_multi_auxiliary",
    "run_table6_asr_count_impact",
    "run_table7_threshold_detector",
    "run_figure5_roc",
    "run_table8_cross_attack",
    "run_table10_mae_accuracy",
    "run_table11_cross_type_defense",
    "run_table12_comprehensive",
    "run_overhead_measurement",
    "run_nontargeted_detection",
    "run_transferability_study",
    "run_transform_ensemble_comparison",
    "run_suite_scaling",
    "run_kaldi_auxiliary_ablation",
    "run_baseline_comparison",
]
