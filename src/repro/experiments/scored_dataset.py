"""Sharded scored-dataset computation.

:func:`repro.datasets.scores.compute_scored_dataset` transcribes every
sample with the full ASR suite in one process — the single biggest
restart-from-zero cost in the repo.  This experiment splits the sample
list into index chunks, transcribes/scores each chunk in a shard
worker (the content-hash transcription and pair-score caches make
chunks idempotent), and reassembles the full
:class:`~repro.datasets.scores.ScoredDataset` in index order at reduce
time — bit-identical to the single-process path, because every
per-sample transcription and score is a pure function of the audio.

The reduce step installs the reassembled dataset into the scored-
dataset disk cache (:func:`~repro.datasets.scores.store_scored_dataset`),
so every later experiment at the same scale/seed starts warm.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.scores import store_scored_dataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit


def _suite_samples(bundle) -> list:
    """The sample list the scored dataset covers, in dataset order."""
    return list(bundle.all_samples) + list(bundle.nontargeted)


def _chunk_rows(samples: list, start: int, method: str) -> list[dict]:
    """Transcribe and score one chunk of samples; one row per sample."""
    from repro.build import build_suite
    from repro.pipeline.engine import TranscriptionEngine
    from repro.similarity.engine import SimilarityEngine
    from repro.specs import SuiteSpec

    target_asr, auxiliaries = build_suite(SuiteSpec())
    aux_names = [asr.short_name for asr in auxiliaries]
    scoring = SimilarityEngine(scorer=method)
    with TranscriptionEngine(target_asr, auxiliaries) as engine:
        suites = engine.transcribe_batch(
            [sample.waveform for sample in samples])
    scores = (scoring.score_suites(suites, auxiliaries)
              if samples else np.empty((0, len(aux_names))))
    return [{
        "index": start + offset,
        "label": int(sample.label),
        "kind": sample.kind,
        "target_text": suites[offset].target.text,
        "auxiliary_texts": {name: suites[offset].auxiliaries[name].text
                            for name in aux_names},
        "scores": [float(value) for value in scores[offset]],
    } for offset, sample in enumerate(samples)]


@register
class ScoredDatasetExperiment(Experiment):
    """Compute the scored dataset in index chunks and reassemble it."""

    name = "scored_dataset"
    title = "Scored dataset"
    description = "Sharded suite transcription + similarity scoring"
    defaults = {"chunk_size": 16, "method": "PE_JaroWinkler"}

    def prepare(self) -> None:
        self.bundle()

    def shards(self, spec) -> list[WorkUnit]:
        total = len(_suite_samples(self.bundle()))
        chunk = max(1, int(self.param("chunk_size")))
        return [WorkUnit(key=f"{start}-{min(start + chunk, total)}",
                         params={"start": start,
                                 "stop": min(start + chunk, total)})
                for start in range(0, max(total, 1), chunk)]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        samples = _suite_samples(self.bundle())
        start = int(unit.params["start"])
        stop = int(unit.params["stop"])
        return _chunk_rows(samples[start:stop], start,
                           str(self.param("method")))

    def reduce(self, rows: list[dict]) -> ExperimentTable:
        from repro.datasets.scores import ScoredDataset

        ordered = sorted(rows, key=lambda row: int(row["index"]))
        aux_names = (tuple(ordered[0]["auxiliary_texts"]) if ordered
                     else ())
        dataset = ScoredDataset(
            labels=np.array([row["label"] for row in ordered], dtype=int),
            kinds=[row["kind"] for row in ordered],
            target_texts=[row["target_text"] for row in ordered],
            auxiliary_texts={name: [row["auxiliary_texts"][name]
                                    for row in ordered]
                             for name in aux_names},
            method=str(self.param("method")),
            scores=(np.array([row["scores"] for row in ordered],
                             dtype=np.float64) if ordered
                    else np.empty((0, len(aux_names)))),
            auxiliary_order=aux_names,
        )
        path = store_scored_dataset(dataset, self.spec.scale, self.spec.seed)
        kinds = np.array(dataset.kinds) if ordered else np.empty(0, dtype=str)
        table = ExperimentTable(self.title, self.description)
        table.add_row(metric="samples", value=len(dataset))
        for kind in ("benign", "whitebox-ae", "blackbox-ae", "nontargeted-ae"):
            table.add_row(metric=kind, value=int((kinds == kind).sum()))
        table.add_row(metric="method", value=dataset.method)
        table.add_row(metric="cache_path", value=path)
        return table
