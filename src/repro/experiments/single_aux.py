"""Table IV: single-auxiliary-model systems.

The three systems DS0+{DS1}, DS0+{GCS}, DS0+{AT} are evaluated with SVM,
KNN and Random Forest under 5-fold cross validation; every system exceeds
98 % accuracy in the paper and SVM is slightly ahead of the other
classifiers.
"""

from __future__ import annotations

from repro.datasets.scores import AUXILIARY_ORDER, ScoredDataset
from repro.experiments.runner import ExperimentTable
from repro.ml.model_selection import cross_validate
from repro.ml.registry import CLASSIFIER_NAMES, build_classifier

#: The single-auxiliary systems of Table IV.
SINGLE_AUX_SYSTEMS: tuple[tuple[str, ...], ...] = tuple(
    (name,) for name in AUXILIARY_ORDER)


def run_table4_single_auxiliary(dataset: ScoredDataset, n_splits: int = 5,
                                seed: int = 13) -> ExperimentTable:
    """5-fold cross validation of the three single-auxiliary systems."""
    table = ExperimentTable(
        "Table IV", "Testing results of single-auxiliary-model systems (mean/std)")
    for classifier_name in CLASSIFIER_NAMES:
        for auxiliaries in SINGLE_AUX_SYSTEMS:
            features, labels = dataset.features_for(auxiliaries)
            result = cross_validate(lambda: build_classifier(classifier_name),
                                    features, labels, n_splits=n_splits, seed=seed)
            table.add_row(
                classifier=classifier_name,
                system="DS0+{" + ", ".join(auxiliaries) + "}",
                accuracy_mean=result.accuracy_mean,
                accuracy_std=result.accuracy_std,
                fpr_mean=result.fpr_mean,
                fpr_std=result.fpr_std,
                fnr_mean=result.fnr_mean,
                fnr_std=result.fnr_std,
            )
    return table
