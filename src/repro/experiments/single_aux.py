"""Table IV: single-auxiliary-model systems.

The three systems DS0+{DS1}, DS0+{GCS}, DS0+{AT} are evaluated with SVM,
KNN and Random Forest under 5-fold cross validation; every system exceeds
98 % accuracy in the paper and SVM is slightly ahead of the other
classifiers.
"""

from __future__ import annotations

from repro.datasets.scores import AUXILIARY_ORDER, ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.ml.model_selection import cross_validate
from repro.ml.registry import CLASSIFIER_NAMES, build_classifier

#: The single-auxiliary systems of Table IV.
SINGLE_AUX_SYSTEMS: tuple[tuple[str, ...], ...] = tuple(
    (name,) for name in AUXILIARY_ORDER)


def crossval_row(dataset: ScoredDataset, classifier_name: str,
                 auxiliaries: tuple[str, ...], n_splits: int,
                 seed: int) -> dict:
    """One cross-validated (classifier, system) cell of Tables IV/V."""
    features, labels = dataset.features_for(auxiliaries)
    result = cross_validate(lambda: build_classifier(classifier_name),
                            features, labels, n_splits=n_splits, seed=seed)
    return {
        "classifier": classifier_name,
        "system": "DS0+{" + ", ".join(auxiliaries) + "}",
        "accuracy_mean": result.accuracy_mean,
        "accuracy_std": result.accuracy_std,
        "fpr_mean": result.fpr_mean,
        "fpr_std": result.fpr_std,
        "fnr_mean": result.fnr_mean,
        "fnr_std": result.fnr_std,
    }


def run_table4_single_auxiliary(dataset: ScoredDataset, n_splits: int = 5,
                                seed: int = 13) -> ExperimentTable:
    """5-fold cross validation of the three single-auxiliary systems."""
    table = ExperimentTable(
        "Table IV", "Testing results of single-auxiliary-model systems (mean/std)")
    for classifier_name in CLASSIFIER_NAMES:
        for auxiliaries in SINGLE_AUX_SYSTEMS:
            table.rows.append(crossval_row(dataset, classifier_name,
                                           auxiliaries, n_splits, seed))
    return table


@register
class SingleAuxExperiment(Experiment):
    """Table IV sharded per (classifier, system) cell — 9 units."""

    name = "single_aux"
    title = "Table IV"
    description = "Testing results of single-auxiliary-model systems (mean/std)"
    defaults = {"n_splits": 5, "cv_seed": 13, "method": "PE_JaroWinkler"}

    systems: tuple[tuple[str, ...], ...] = SINGLE_AUX_SYSTEMS

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key=f"{classifier_name}|{'+'.join(auxiliaries)}",
                         params={"classifier": classifier_name,
                                 "auxiliaries": list(auxiliaries)})
                for classifier_name in CLASSIFIER_NAMES
                for auxiliaries in self.systems]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return [crossval_row(self.dataset(), unit.params["classifier"],
                             tuple(unit.params["auxiliaries"]),
                             int(self.param("n_splits")),
                             int(self.param("cv_seed")))]
