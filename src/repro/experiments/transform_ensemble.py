"""Transform-ensemble vs multi-ASR vs combined detection.

The study behind ``docs/DEFENSES.md``: build the three default defense
systems — transformation ensemble only, the paper's multi-ASR suite, and
both kinds of auxiliary versions combined — extract similarity-score
features for the same benign + AE audio, and report held-out detection
accuracy / FPR / FNR per system in the paper's table format.

All three systems share one target model and one process-wide
transcription cache, so the target's transcriptions (and the real
auxiliaries' transcriptions, reused from the scored-dataset build) are
decoded once across the whole comparison.
"""

from __future__ import annotations

import numpy as np

from repro.build import build, default_spec_with_transforms
from repro.config import DEFAULT_SEED, ReproScale
from repro.core.detector import MVPEarsDetector
from repro.datasets.builder import load_standard_bundle
from repro.defenses.transforms import Transform
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.ml.model_selection import train_test_split

#: The three defense modes of the comparison, in table order.
DEFENSE_MODES = ("transform", "multi-asr", "combined")


def _build_defense(mode: str, classifier: str,
                   transforms: list[Transform] | None,
                   workers: int | None) -> MVPEarsDetector:
    # One system as a declarative spec over the shared target (fitting
    # happens on the experiment's own split, so fit=False).
    spec, overrides = default_spec_with_transforms(
        transforms if mode != "multi-asr" else None,
        defense=mode, classifier=classifier, workers=workers)
    return build(spec, fit=False, overrides=overrides)


def _mode_row(mode: str, bundle, classifier: str,
              transforms: list[Transform] | None, test_fraction: float,
              seed: int, workers: int | None) -> dict:
    """One defense mode's held-out accuracy on the shared split."""
    detector = _build_defense(mode, classifier, transforms, workers)
    samples = bundle.all_samples
    audios = [sample.waveform for sample in samples]
    labels = np.array([sample.label for sample in samples], dtype=int)
    features = detector.extract_features(audios)
    train_x, test_x, train_y, test_y = train_test_split(
        features, labels, test_fraction=test_fraction, seed=seed)
    detector.fit_features(train_x, train_y)
    report = detector.evaluate_features(test_x, test_y)
    return {
        "system": mode,
        "auxiliaries": detector.system_name,
        "n_versions": detector.n_features,
        "accuracy": report.accuracy,
        "fpr": report.fpr,
        "fnr": report.fnr,
    }


def run_transform_ensemble_comparison(
        scale: ReproScale | str | None = None,
        classifier: str = "SVM",
        transforms: list[Transform] | None = None,
        test_fraction: float = 0.25,
        seed: int = DEFAULT_SEED,
        workers: int | None = None) -> ExperimentTable:
    """Accuracy / FPR / FNR of the three defense modes on one dataset.

    Args:
        scale: dataset scale preset (``None`` reads ``REPRO_SCALE``).
        classifier: classifier registry name used by every system.
        transforms: transformation ensemble (default: the standard
            suite) for the transform and combined systems.
        test_fraction: held-out fraction for the evaluation split.
        seed: split seed (the same split is used for every system, so
            the three rows are directly comparable).
        workers: transcription worker-pool size.
    """
    bundle = load_standard_bundle(scale)
    table = ExperimentTable(
        "Transform ensemble",
        "Detection accuracy of transform vs multi-ASR vs combined auxiliaries")
    for mode in DEFENSE_MODES:
        table.rows.append(_mode_row(mode, bundle, classifier, transforms,
                                    test_fraction, seed, workers))
    return table


@register
class TransformEnsembleExperiment(Experiment):
    """Defense-mode comparison sharded per mode — 3 units."""

    name = "transform_ensemble"
    title = "Transform ensemble"
    description = ("Detection accuracy of transform vs multi-ASR vs "
                   "combined auxiliaries")
    defaults = {"test_fraction": 0.25}

    def prepare(self) -> None:
        self.bundle()

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key=mode, params={"mode": mode})
                for mode in DEFENSE_MODES]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return [_mode_row(str(unit.params["mode"]), self.bundle(),
                          self.classifier_name, None,
                          float(self.param("test_fraction")),
                          self.spec.seed, None)]


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI shim
    import argparse

    parser = argparse.ArgumentParser(
        description="Transform-ensemble vs multi-ASR vs combined detection")
    parser.add_argument("--scale", default=None,
                        choices=("tiny", "small", "medium", "paper"))
    parser.add_argument("--classifier", default="SVM")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)
    table = run_transform_ensemble_comparison(
        scale=args.scale, classifier=args.classifier, seed=args.seed)
    print(table.to_markdown())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
