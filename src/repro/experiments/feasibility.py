"""Feasibility experiments: Table I, Table II and Figure 4.

* Table I: one white-box AE transcribed by all four ASRs — the target model
  outputs the attacker's command, the auxiliaries output (approximately)
  the host text.
* Table II: dataset sizes used by the evaluation.
* Figure 4: histograms of similarity scores for benign samples and AEs
  under each single-auxiliary system; the two populations form (almost)
  disjoint clusters, which is what makes the detection idea feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asr.registry import build_asr, get_shared_lexicon
from repro.attacks.whitebox import WhiteBoxCarliniAttack
from repro.audio.synthesis import SpeechSynthesizer
from repro.datasets.scores import AUXILIARY_ORDER, ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit


def run_table1_example(host_text: str = "i wish you would not say that",
                       command: str = "a sight for sore eyes",
                       seed: int = 11) -> ExperimentTable:
    """Reproduce Table I: one AE, four transcriptions."""
    synthesizer = SpeechSynthesizer(lexicon=get_shared_lexicon(), seed=seed)
    host = synthesizer.synthesize(host_text)
    target_asr = build_asr("DS0")
    attack = WhiteBoxCarliniAttack(target_asr)
    result = attack.run(host, command)

    table = ExperimentTable("Table I", "Recognition results of an AE by multiple ASRs")
    table.add_row(asr=target_asr.name, transcription=result.transcription,
                  role="target", attack_success=result.success)
    for name in AUXILIARY_ORDER:
        asr = build_asr(name)
        table.add_row(asr=asr.name, transcription=asr.transcribe(result.adversarial).text,
                      role="auxiliary", attack_success=False)
    table.rows[0]["host_text"] = host_text
    table.rows[0]["command"] = command
    return table


def run_table2_dataset_summary(dataset: ScoredDataset) -> ExperimentTable:
    """Reproduce Table II: dataset sizes."""
    kinds = np.array(dataset.kinds)
    table = ExperimentTable("Table II", "Datasets used in the evaluation")
    table.add_row(dataset="Benign", samples=int((kinds == "benign").sum()))
    table.add_row(dataset="White-box AEs", samples=int((kinds == "whitebox-ae").sum()))
    table.add_row(dataset="Black-box AEs", samples=int((kinds == "blackbox-ae").sum()))
    table.add_row(dataset="Non-targeted AEs", samples=int((kinds == "nontargeted-ae").sum()))
    return table


@dataclass
class HistogramResult:
    """Similarity-score histograms of one single-auxiliary system."""

    system: str
    bin_edges: np.ndarray
    benign_counts: np.ndarray
    adversarial_counts: np.ndarray
    overlap_fraction: float = 0.0
    benign_scores: np.ndarray = field(default_factory=lambda: np.zeros(0))
    adversarial_scores: np.ndarray = field(default_factory=lambda: np.zeros(0))


def _figure4_histogram(dataset: ScoredDataset, name: str,
                       n_bins: int) -> HistogramResult:
    """One auxiliary's benign/adversarial score histogram."""
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    benign, _ = dataset.features_for((name,), ("benign",))
    adversarial, _ = dataset.features_for((name,), ("whitebox-ae", "blackbox-ae"))
    benign_scores = benign.ravel()
    adversarial_scores = adversarial.ravel()
    benign_counts, _ = np.histogram(benign_scores, bins=edges)
    adversarial_counts, _ = np.histogram(adversarial_scores, bins=edges)
    # Overlap: how much probability mass the two (normalised) histograms
    # share.  Small overlap = the clusters are (almost) disjoint.
    benign_density = benign_counts / max(1, benign_counts.sum())
    adversarial_density = adversarial_counts / max(1, adversarial_counts.sum())
    overlap = float(np.minimum(benign_density, adversarial_density).sum())
    return HistogramResult(
        system=f"DS0+{{{name}}}", bin_edges=edges,
        benign_counts=benign_counts, adversarial_counts=adversarial_counts,
        overlap_fraction=overlap,
        benign_scores=benign_scores, adversarial_scores=adversarial_scores)


def run_figure4_histograms(dataset: ScoredDataset, n_bins: int = 20) -> list[HistogramResult]:
    """Reproduce Figure 4: per-auxiliary score histograms."""
    return [_figure4_histogram(dataset, name, n_bins)
            for name in AUXILIARY_ORDER]


@register
class Table1Experiment(Experiment):
    """Table I: one AE, four transcriptions (single attack — one unit)."""

    name = "table1_example"
    title = "Table I"
    description = "Recognition results of an AE by multiple ASRs"
    defaults = {
        "host_text": "i wish you would not say that",
        "command": "a sight for sore eyes",
        "attack_seed": 11,
    }

    def prepare(self) -> None:
        pass  # no dataset needed: the unit synthesises its own host clip

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="example")]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return run_table1_example(str(self.param("host_text")),
                                  str(self.param("command")),
                                  int(self.param("attack_seed"))).rows


@register
class Table2Experiment(Experiment):
    """Table II: dataset sizes (pure counting — one unit)."""

    name = "table2_dataset_summary"
    title = "Table II"
    description = "Datasets used in the evaluation"

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="summary")]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return run_table2_dataset_summary(self.dataset()).rows


@register
class Figure4Experiment(Experiment):
    """Figure 4 sharded per auxiliary; rows summarise each histogram."""

    name = "figure4_histograms"
    title = "Figure 4"
    description = "Similarity-score histogram overlap per single-auxiliary system"
    defaults = {"n_bins": 20}

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key=name, params={"auxiliary": name})
                for name in AUXILIARY_ORDER]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        result = _figure4_histogram(self.dataset(),
                                    str(unit.params["auxiliary"]),
                                    int(self.param("n_bins")))
        return [{
            "system": result.system,
            "overlap_fraction": result.overlap_fraction,
            "n_benign": int(result.benign_scores.size),
            "n_adversarial": int(result.adversarial_scores.size),
            "n_bins": int(result.bin_edges.size - 1),
        }]
