"""Tables V and VI: multi-auxiliary-model systems.

Table V evaluates the four multi-auxiliary systems with 5-fold cross
validation; accuracy improves over the single-auxiliary systems and the
three-auxiliary system is the best.  Table VI extracts the SVM FPR/FNR
columns as a function of the number of auxiliaries, showing both decline as
auxiliaries are added.
"""

from __future__ import annotations

from repro.datasets.scores import ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.experiments.single_aux import (
    SINGLE_AUX_SYSTEMS,
    SingleAuxExperiment,
    crossval_row,
)
from repro.ml.model_selection import cross_validate
from repro.ml.registry import CLASSIFIER_NAMES, build_classifier

#: The multi-auxiliary systems of Table V.
MULTI_AUX_SYSTEMS: tuple[tuple[str, ...], ...] = (
    ("DS1", "GCS"),
    ("DS1", "AT"),
    ("GCS", "AT"),
    ("DS1", "GCS", "AT"),
)


def run_table5_multi_auxiliary(dataset: ScoredDataset, n_splits: int = 5,
                               seed: int = 13) -> ExperimentTable:
    """5-fold cross validation of the four multi-auxiliary systems."""
    table = ExperimentTable(
        "Table V", "Testing results of multi-auxiliary-model systems (mean/std)")
    for classifier_name in CLASSIFIER_NAMES:
        for auxiliaries in MULTI_AUX_SYSTEMS:
            table.rows.append(crossval_row(dataset, classifier_name,
                                           auxiliaries, n_splits, seed))
    return table


def _table6_row(dataset: ScoredDataset, auxiliaries: tuple[str, ...],
                n_splits: int, seed: int, classifier_name: str) -> dict:
    """One Table VI row: one system's cross-validated FPR/FNR."""
    features, labels = dataset.features_for(auxiliaries)
    result = cross_validate(lambda: build_classifier(classifier_name),
                            features, labels, n_splits=n_splits, seed=seed)
    return {
        "n_auxiliaries": len(auxiliaries),
        "system": "DS0+{" + ", ".join(auxiliaries) + "}",
        "fpr": result.fpr_mean,
        "fnr": result.fnr_mean,
        "accuracy": result.accuracy_mean,
    }


def run_table6_asr_count_impact(dataset: ScoredDataset, n_splits: int = 5,
                                seed: int = 13,
                                classifier_name: str = "SVM") -> ExperimentTable:
    """FPR/FNR versus the number of auxiliary ASRs (SVM rows)."""
    table = ExperimentTable(
        "Table VI", "Impact of the number of auxiliary ASRs on FPR and FNR")
    for auxiliaries in SINGLE_AUX_SYSTEMS + MULTI_AUX_SYSTEMS:
        table.rows.append(_table6_row(dataset, auxiliaries, n_splits, seed,
                                      classifier_name))
    return table


@register
class MultiAuxExperiment(SingleAuxExperiment):
    """Table V sharded per (classifier, system) cell — 12 units."""

    name = "multi_aux"
    title = "Table V"
    description = "Testing results of multi-auxiliary-model systems (mean/std)"

    systems = MULTI_AUX_SYSTEMS


@register
class AsrCountExperiment(Experiment):
    """Table VI sharded per system — 7 units."""

    name = "asr_count"
    title = "Table VI"
    description = "Impact of the number of auxiliary ASRs on FPR and FNR"
    defaults = {"n_splits": 5, "cv_seed": 13}

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="+".join(auxiliaries),
                         params={"auxiliaries": list(auxiliaries)})
                for auxiliaries in SINGLE_AUX_SYSTEMS + MULTI_AUX_SYSTEMS]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return [_table6_row(self.dataset(),
                            tuple(unit.params["auxiliaries"]),
                            int(self.param("n_splits")),
                            int(self.param("cv_seed")),
                            self.classifier_name)]
