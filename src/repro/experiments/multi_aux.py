"""Tables V and VI: multi-auxiliary-model systems.

Table V evaluates the four multi-auxiliary systems with 5-fold cross
validation; accuracy improves over the single-auxiliary systems and the
three-auxiliary system is the best.  Table VI extracts the SVM FPR/FNR
columns as a function of the number of auxiliaries, showing both decline as
auxiliaries are added.
"""

from __future__ import annotations

from repro.datasets.scores import ScoredDataset
from repro.experiments.runner import ExperimentTable
from repro.experiments.single_aux import SINGLE_AUX_SYSTEMS
from repro.ml.model_selection import cross_validate
from repro.ml.registry import CLASSIFIER_NAMES, build_classifier

#: The multi-auxiliary systems of Table V.
MULTI_AUX_SYSTEMS: tuple[tuple[str, ...], ...] = (
    ("DS1", "GCS"),
    ("DS1", "AT"),
    ("GCS", "AT"),
    ("DS1", "GCS", "AT"),
)


def run_table5_multi_auxiliary(dataset: ScoredDataset, n_splits: int = 5,
                               seed: int = 13) -> ExperimentTable:
    """5-fold cross validation of the four multi-auxiliary systems."""
    table = ExperimentTable(
        "Table V", "Testing results of multi-auxiliary-model systems (mean/std)")
    for classifier_name in CLASSIFIER_NAMES:
        for auxiliaries in MULTI_AUX_SYSTEMS:
            features, labels = dataset.features_for(auxiliaries)
            result = cross_validate(lambda: build_classifier(classifier_name),
                                    features, labels, n_splits=n_splits, seed=seed)
            table.add_row(
                classifier=classifier_name,
                system="DS0+{" + ", ".join(auxiliaries) + "}",
                accuracy_mean=result.accuracy_mean,
                accuracy_std=result.accuracy_std,
                fpr_mean=result.fpr_mean,
                fpr_std=result.fpr_std,
                fnr_mean=result.fnr_mean,
                fnr_std=result.fnr_std,
            )
    return table


def run_table6_asr_count_impact(dataset: ScoredDataset, n_splits: int = 5,
                                seed: int = 13,
                                classifier_name: str = "SVM") -> ExperimentTable:
    """FPR/FNR versus the number of auxiliary ASRs (SVM rows)."""
    table = ExperimentTable(
        "Table VI", "Impact of the number of auxiliary ASRs on FPR and FNR")
    for auxiliaries in SINGLE_AUX_SYSTEMS + MULTI_AUX_SYSTEMS:
        features, labels = dataset.features_for(auxiliaries)
        result = cross_validate(lambda: build_classifier(classifier_name),
                                features, labels, n_splits=n_splits, seed=seed)
        table.add_row(
            n_auxiliaries=len(auxiliaries),
            system="DS0+{" + ", ".join(auxiliaries) + "}",
            fpr=result.fpr_mean,
            fnr=result.fnr_mean,
            accuracy=result.accuracy_mean,
        )
    return table
