"""Registry of runnable experiments, keyed by name.

Experiment classes self-register at import time via :func:`register`;
:func:`build_experiment` instantiates one from an
:class:`~repro.specs.ExperimentSpec`.  Loading is lazy — the registry
imports :mod:`repro.experiments` (which imports every experiment
module) on first lookup, so ``repro.specs`` can validate experiment
names without a circular import at module load.
"""

from __future__ import annotations

from repro.errors import UnknownComponentError

_EXPERIMENTS: dict[str, type] = {}
_LOADED = False


def register(cls):
    """Class decorator: add an Experiment subclass to the registry."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"{cls.__name__} has no experiment name")
    if name in _EXPERIMENTS and _EXPERIMENTS[name] is not cls:
        raise ValueError(f"experiment {name!r} is already registered")
    _EXPERIMENTS[name] = cls
    return cls


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Importing the package pulls in every experiment module, each of
    # which registers its Experiment subclasses on import.
    import repro.experiments  # noqa: F401


def experiment_names() -> list[str]:
    """Registered experiment names, sorted."""
    _ensure_loaded()
    return sorted(_EXPERIMENTS)


def experiment_defaults(name: str):
    """The named experiment's parameter defaults mapping."""
    _ensure_loaded()
    if name not in _EXPERIMENTS:
        raise UnknownComponentError("experiment", name, experiment_names())
    return dict(_EXPERIMENTS[name].defaults)


def build_experiment(spec):
    """Instantiate the experiment the spec names."""
    _ensure_loaded()
    name = spec.experiment
    if name not in _EXPERIMENTS:
        raise UnknownComponentError("experiment", name, experiment_names())
    return _EXPERIMENTS[name](spec)
