"""Shared experiment result containers and table formatting.

Besides the generic :class:`ExperimentTable`, this module hosts the
timing-table helper used by the overhead experiment: per-component
wall-clock rows expressed relative to a baseline (the target model's own
recognition time), matching how the paper reports Section V-I.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """A named table of result rows (list of dicts with common keys)."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append a result row."""
        self.rows.append(values)

    def column(self, key: str) -> list:
        """Values of one column across all rows."""
        return [row.get(key) for row in self.rows]

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        return format_table(self.rows, title=f"{self.name} — {self.description}")

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return self.to_markdown()


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def add_timing_rows(table: ExperimentTable, baseline_seconds: float,
                    components: list[tuple[str, float]],
                    baseline_name: str = "target recognition (baseline)") -> None:
    """Append per-component timing rows relative to a baseline time.

    The baseline row (the cost the system pays with no detector at all)
    is reported with a relative overhead of zero; every other component
    is expressed as a fraction of it.
    """
    floor = max(baseline_seconds, 1e-9)
    table.add_row(component=baseline_name, mean_seconds=float(baseline_seconds),
                  relative_overhead=0.0)
    for name, seconds in components:
        table.add_row(component=name, mean_seconds=float(seconds),
                      relative_overhead=float(seconds) / floor)


def format_table(rows: list[dict], title: str | None = None) -> str:
    """Render a list of dict rows as a markdown table."""
    if not rows:
        return f"## {title}\n(no rows)\n" if title else "(no rows)\n"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = []
    if title:
        lines.append(f"## {title}")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_value(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines) + "\n"
