"""The unified experiment runner: work units, sharding, execution.

Besides the generic :class:`ExperimentTable` and the timing-table helper
used by the overhead experiment, this module hosts the experiment
abstraction every paper table runs on:

* :class:`Experiment` — the protocol: an experiment names itself, holds
  an :class:`~repro.specs.ExperimentSpec`, splits its work into
  idempotent :class:`WorkUnit`\\ s (``shards``), computes each unit's
  rows (``run_shard``) and assembles the final table (``reduce``).
* :func:`execute_experiment` — the executor: runs the pending units
  inline or fanned out across forked worker processes, journals each
  completed shard into a :class:`~repro.experiments.store.RunStore`
  (append-only JSONL + atomic manifest), and resumes a killed run from
  the last completed unit.

Rows cross the process boundary and the journal as JSON, so every shard
result is canonicalised through one JSON round trip *before* reduction —
a resumed run reduces exactly the same row values as an uninterrupted
one (Python floats round-trip ``repr``-exactly through JSON).
"""

from __future__ import annotations

import json
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np


@dataclass
class ExperimentTable:
    """A named table of result rows (list of dicts with common keys)."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append a result row."""
        self.rows.append(values)

    def column(self, key: str) -> list:
        """Values of one column across all rows."""
        return [row.get(key) for row in self.rows]

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        return format_table(self.rows, title=f"{self.name} — {self.description}")

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return self.to_markdown()


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def add_timing_rows(table: ExperimentTable, baseline_seconds: float,
                    components: list[tuple[str, float]],
                    baseline_name: str = "target recognition (baseline)") -> None:
    """Append per-component timing rows relative to a baseline time.

    The baseline row (the cost the system pays with no detector at all)
    is reported with a relative overhead of zero; every other component
    is expressed as a fraction of it.
    """
    floor = max(baseline_seconds, 1e-9)
    table.add_row(component=baseline_name, mean_seconds=float(baseline_seconds),
                  relative_overhead=0.0)
    for name, seconds in components:
        table.add_row(component=name, mean_seconds=float(seconds),
                      relative_overhead=float(seconds) / floor)


def format_table(rows: list[dict], title: str | None = None) -> str:
    """Render a list of dict rows as a markdown table."""
    if not rows:
        return f"## {title}\n(no rows)\n" if title else "(no rows)\n"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = []
    if title:
        lines.append(f"## {title}")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_value(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ protocol
class ExperimentError(Exception):
    """An experiment could not run (bad shards, a worker died, ...)."""


@dataclass(frozen=True)
class WorkUnit:
    """One idempotent shard of an experiment.

    ``key`` is the unit's identity: unique within the experiment, stable
    across runs of the same spec (it is what the shard journal matches
    on when resuming), and safe as a JSON string.  ``params`` carries
    the JSON-serialisable inputs ``run_shard`` needs beyond the spec.
    """

    key: str
    params: Mapping[str, Any] = field(default_factory=dict)


class Experiment:
    """Base class of every registered experiment.

    Subclasses set :attr:`name` (the registry name), :attr:`title` /
    :attr:`description` (the table header) and :attr:`defaults` (the
    experiment parameters :class:`~repro.specs.ExperimentSpec.params`
    may override), and implement the protocol:

    * ``shards(spec) -> [WorkUnit]`` — split the work into idempotent
      units, in the row order of the final table;
    * ``run_shard(unit) -> rows`` — compute one unit's rows (runs in a
      worker process under sharded execution, so it must load what it
      needs from the spec — the loaders below are process-memoised);
    * ``reduce(rows) -> ExperimentTable`` — assemble the table from the
      concatenated rows of every unit, in ``shards`` order.
    """

    name: str = ""
    title: str = ""
    description: str = ""
    #: Parameter defaults; ``spec.params`` may override any of these.
    defaults: Mapping[str, Any] = {}

    def __init__(self, spec):
        self.spec = spec

    # ----------------------------------------------------------- spec access
    def param(self, key: str):
        """One parameter: the spec's override or the declared default."""
        if key in self.spec.params:
            return self.spec.params[key]
        return self.defaults[key]

    @property
    def classifier_name(self) -> str:
        """The classifier the spec's detector overlay selects."""
        return self.spec.detector.classifier.name

    def dataset(self):
        """The scored dataset for the spec's scale/seed (memoised).

        Experiments that declare a ``"method"`` default score the suite
        with that similarity method — the hook ``repro sweep`` grids use
        to compare scoring methods end to end.
        """
        from repro.datasets.scores import load_scored_dataset
        kwargs = {}
        if "method" in self.defaults or "method" in self.spec.params:
            kwargs["method"] = str(self.param("method"))
        return load_scored_dataset(self.spec.scale, seed=self.spec.seed,
                                   **kwargs)

    def bundle(self):
        """The audio dataset bundle for the spec's scale/seed (memoised)."""
        from repro.datasets.builder import load_standard_bundle
        return load_standard_bundle(self.spec.scale, seed=self.spec.seed)

    def manifest_extra(self) -> dict:
        """Attribution record merged into the run-dir ``manifest.json``.

        The default records the spec's suite composition and per-system
        version fingerprints (see
        :func:`repro.backends.registry.describe_suite`), so every run
        directory states exactly which systems produced its numbers.
        Experiments that build other suites per shard extend this.
        """
        from repro.backends.registry import describe_suite
        suite = getattr(getattr(self.spec, "detector", None), "suite", None)
        if suite is None:
            return {}
        return {"suite": describe_suite(suite)}

    def prepare(self) -> None:
        """Warm shared context in the parent before workers fork.

        Forked workers inherit the process-level dataset/bundle memos,
        so the expensive attack generation and decoding happen once.
        The default warms whatever :meth:`shards` ultimately needs by
        loading the scored dataset; experiments that only need the raw
        bundle (or nothing) override this.
        """
        self.dataset()

    # ------------------------------------------------------------- protocol
    def shards(self, spec) -> list[WorkUnit]:
        raise NotImplementedError

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        raise NotImplementedError

    def reduce(self, rows: list[dict]) -> ExperimentTable:
        table = ExperimentTable(self.title or self.name, self.description)
        table.rows = list(rows)
        return table


# ----------------------------------------------------------------- execution
@dataclass
class RunResult:
    """Outcome of one :func:`execute_experiment` invocation."""

    table: ExperimentTable | None
    total_units: int
    executed_units: int
    resumed_units: int
    complete: bool
    run_dir: str | None = None


def _json_default(value):
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"shard rows must be JSON-serialisable, "
                    f"got {type(value).__name__}: {value!r}")


def canonical_rows(rows: list[dict]) -> list[dict]:
    """Rows after one JSON round trip (what the journal stores/replays).

    Numpy scalars/arrays collapse to builtins; floats survive exactly
    (``json`` emits ``repr``-round-trippable values, NaN included).
    Reduction always consumes canonical rows, so fresh and resumed
    shards are indistinguishable.
    """
    return json.loads(json.dumps(rows, default=_json_default))


def _fork_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def attach_worker_caches(directory: str) -> None:
    """Bind the process-wide shared caches to journals under ``directory``.

    Called in a freshly forked shard worker (mirroring the serving
    layer's ``attach_shared_caches``): the shared transcription and
    pair-score caches are rebuilt on ``.jsonl`` journals in the run
    directory, so every decode/score a worker pays is write-through
    journaled and eagerly reloaded by sibling workers and resumed runs.
    """
    import repro.pipeline.engine as pipeline_engine
    import repro.similarity.engine as similarity_engine

    os.makedirs(directory, exist_ok=True)
    os.environ["REPRO_TRANSCRIPTION_CACHE"] = os.path.join(
        directory, "transcriptions.jsonl")
    os.environ[similarity_engine.SCORE_CACHE_ENV] = os.path.join(
        directory, "scores.jsonl")
    pipeline_engine.get_shared_cache.cache_clear()
    similarity_engine.get_shared_score_cache.cache_clear()
    # Instantiate now: the constructors eagerly load existing journal
    # entries, so a resumed worker starts warm.
    pipeline_engine.get_shared_cache()
    similarity_engine.get_shared_score_cache()


def _intern_shared_samples(experiment) -> None:
    """Re-home the bundle's waveforms onto the shared sample arena.

    Runs in the parent immediately before the shard workers fork, so
    when ``REPRO_SAMPLE_ARENA`` opts a run in (see
    :func:`repro.pipeline.engine.get_shared_sample_arena`), every child
    inherits one content-interned resident copy of each clip through
    shared pages instead of duplicating the memoised bundle
    copy-on-write.  Strictly best effort: no arena, a full arena, or an
    experiment without a bundle all leave the inputs untouched.
    """
    from repro.pipeline.engine import get_shared_sample_arena

    arena = get_shared_sample_arena()
    if arena is None or not arena.is_owner:
        return
    from dataclasses import replace

    from repro.pipeline.cache import waveform_fingerprint
    try:
        bundle = experiment.bundle()
    except Exception:
        return
    for collection in (bundle.benign, bundle.whitebox,
                       bundle.blackbox, bundle.nontargeted):
        for index, sample in enumerate(collection):
            audio = sample.waveform
            if arena.owns(audio.samples):
                continue
            view = arena.intern(waveform_fingerprint(audio), audio.samples)
            if view is not None:
                collection[index] = replace(
                    sample, waveform=replace(audio, samples=view))


def _shard_worker(experiment, units: list[tuple[int, WorkUnit]],
                  result_queue, cache_dir: str | None) -> None:
    """Run one worker's statically assigned units (forked child body)."""
    if cache_dir is not None:
        attach_worker_caches(cache_dir)
    for index, unit in units:
        try:
            rows = canonical_rows(experiment.run_shard(unit))
        except BaseException:
            result_queue.put((index, unit.key, None, traceback.format_exc()))
            raise SystemExit(1)
        result_queue.put((index, unit.key, rows, None))


def _run_sharded(experiment, pending: list[tuple[int, WorkUnit]],
                 workers: int, cache_dir: str | None,
                 on_rows: Callable[[str, list[dict]], None]) -> None:
    """Fan pending units out across forked worker processes.

    Units are statically partitioned round-robin (no task queue, so no
    feeder threads exist in the parent before the fork); results come
    back over one queue and are journaled by the parent as they arrive.
    A dead worker fails the run — resuming re-executes only the units
    that never reported.
    """
    import queue as queue_module

    context = _fork_context()
    n_workers = min(workers, len(pending))
    result_queue = context.Queue()
    processes = []
    for worker_index in range(n_workers):
        assigned = pending[worker_index::n_workers]
        process = context.Process(
            target=_shard_worker,
            args=(experiment, assigned, result_queue, cache_dir),
            daemon=True)
        process.start()
        processes.append(process)
    outstanding = len(pending)
    failures: list[str] = []
    try:
        while outstanding and not failures:
            try:
                _, key, rows, error = result_queue.get(timeout=1.0)
            except queue_module.Empty:
                if all(not process.is_alive() for process in processes):
                    raise ExperimentError(
                        f"{outstanding} shard(s) never reported: a worker "
                        f"process died (see stderr)") from None
                continue
            outstanding -= 1
            if error is not None:
                failures.append(f"shard {key!r} failed:\n{error}")
            else:
                on_rows(key, rows)
    finally:
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
    if failures:
        raise ExperimentError("\n".join(failures))


def execute_experiment(experiment, store=None, workers: int | None = None,
                       max_shards: int | None = None) -> RunResult:
    """Run an experiment's shards (resumable) and reduce the final table.

    Args:
        experiment: an :class:`Experiment` instance.
        store: optional :class:`~repro.experiments.store.RunStore`; when
            given, completed shards found in its journal are *not*
            re-executed and every fresh shard is journaled on completion.
        workers: shard worker processes (default: the spec's ``workers``;
            ``0`` or a single pending unit runs inline).
        max_shards: execute at most this many fresh shards, then stop
            (``complete=False`` unless everything finished) — the
            incremental-budget knob the CI smoke uses.

    Returns a :class:`RunResult`; ``table`` is ``None`` while the run is
    incomplete.
    """
    spec = experiment.spec
    units = experiment.shards(spec)
    keys = [unit.key for unit in units]
    if len(set(keys)) != len(keys):
        raise ExperimentError(f"{experiment.name}: duplicate shard keys")
    completed: dict[str, list[dict]] = {}
    if store is not None:
        try:
            extra = experiment.manifest_extra()
        except Exception:  # attribution must never fail a run
            extra = {}
        store.begin(spec, experiment=experiment.name, total_units=len(units),
                    extra=extra)
        journaled = store.completed_shards()
        completed = {key: journaled[key] for key in keys if key in journaled}
    pending = [(index, unit) for index, unit in enumerate(units)
               if unit.key not in completed]
    resumed = len(units) - len(pending)
    budget = len(pending) if max_shards is None else max(0, max_shards)
    to_run = pending[:budget]

    results = dict(completed)

    def on_rows(key: str, rows: list[dict]) -> None:
        if store is not None:
            store.record(key, rows)
        results[key] = rows

    if to_run:
        experiment.prepare()
    if workers is None:
        workers = spec.workers
    cache_dir = store.cache_dir if store is not None else None
    if workers and len(to_run) > 1 and _fork_context() is not None:
        _intern_shared_samples(experiment)
        _run_sharded(experiment, to_run, workers, cache_dir, on_rows)
    else:
        for _, unit in to_run:
            on_rows(unit.key, canonical_rows(experiment.run_shard(unit)))

    complete = all(unit.key in results for unit in units)
    run_dir = store.directory if store is not None else None
    if not complete:
        if store is not None:
            store.mark_incomplete()
        return RunResult(table=None, total_units=len(units),
                         executed_units=len(to_run), resumed_units=resumed,
                         complete=False, run_dir=run_dir)
    rows = [row for unit in units for row in results[unit.key]]
    table = experiment.reduce(rows)
    if store is not None:
        store.write_report(table, experiment=experiment.name)
    return RunResult(table=table, total_units=len(units),
                     executed_units=len(to_run), resumed_units=resumed,
                     complete=True, run_dir=run_dir)
