"""Detection accuracy and overhead vs. suite size and composition.

The paper's evaluation (Table VI) stops at four ASR versions; ROADMAP
open item 2 asks what happens past that.  With the generated simulated
family (:mod:`repro.backends.family`) suites of 8–16 versions are cheap,
so this experiment sweeps the suite size and reports, per size: held-out
detection accuracy, FPR/FNR, and the per-clip feature-extraction
overhead — the cost axis that grows with every added version.

Two compositions are studied: ``family`` (generated members only, the
homogeneous scaling curve) and ``paper+family`` (the paper's three real
auxiliaries first, topped up with generated members — how the published
suite extends).  Suites are built purely as config
(:class:`~repro.specs.SuiteSpec` over registry names), one shard per
size through the PR 8 runner, so runs shard, journal and resume like
every other experiment.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.family import family_suite_names
from repro.build import build
from repro.config import DEFAULT_SEED, ReproScale
from repro.datasets.builder import load_standard_bundle
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.ml.model_selection import train_test_split
from repro.specs import ASRSpec, DetectorSpec, SuiteSpec

#: Suite compositions the experiment understands, in table order.
COMPOSITIONS = ("family", "paper+family")

#: The paper's real auxiliaries, used first by ``paper+family``.
_PAPER_AUXILIARIES = ("DS1", "GCS", "AT")

#: Default suite sizes (auxiliary version counts), 2 -> 16.
DEFAULT_SIZES = (2, 4, 8, 12, 16)


def suite_for(composition: str, size: int,
              target: str = "DS0") -> SuiteSpec:
    """The :class:`SuiteSpec` of one (composition, size) grid point.

    ``size`` counts auxiliary versions (the target is on top).  The
    ``family`` composition uses generated members only; ``paper+family``
    starts from the paper's real auxiliaries and tops up with generated
    members.  Either way the suite is pure config: registry names that
    :func:`repro.build` resolves like any hand-written spec.
    """
    if size < 1:
        raise ValueError("suite size must be at least 1 auxiliary")
    if composition == "family":
        names = family_suite_names(size)
    elif composition == "paper+family":
        names = _PAPER_AUXILIARIES[:size]
        names += family_suite_names(max(0, size - len(names)))
    else:
        raise ValueError(f"unknown composition {composition!r}; "
                         f"expected one of {COMPOSITIONS}")
    return SuiteSpec(target=ASRSpec(target),
                     auxiliaries=tuple(ASRSpec(name) for name in names))


def _size_row(detector_spec: DetectorSpec, composition: str, size: int,
              bundle, test_fraction: float, seed: int) -> dict:
    """Accuracy + per-clip overhead of one suite size on the shared split."""
    from dataclasses import replace

    suite = suite_for(composition, size)
    spec = replace(detector_spec, suite=suite)
    detector = build(spec, fit=False)
    samples = bundle.all_samples
    audios = [sample.waveform for sample in samples]
    labels = np.array([sample.label for sample in samples], dtype=int)
    start = time.perf_counter()
    features = detector.extract_features(audios)
    elapsed = time.perf_counter() - start
    train_x, test_x, train_y, test_y = train_test_split(
        features, labels, test_fraction=test_fraction, seed=seed)
    detector.fit_features(train_x, train_y)
    report = detector.evaluate_features(test_x, test_y)
    return {
        "composition": composition,
        "suite_size": size,
        "n_versions": detector.n_features,
        "auxiliaries": " ".join(aux.name for aux in suite.auxiliaries),
        "accuracy": report.accuracy,
        "fpr": report.fpr,
        "fnr": report.fnr,
        "per_clip_seconds": elapsed / max(1, len(audios)),
    }


def run_suite_scaling(scale: ReproScale | str | None = None,
                      sizes=DEFAULT_SIZES,
                      composition: str = "family",
                      classifier: str = "SVM",
                      test_fraction: float = 0.25,
                      seed: int = DEFAULT_SEED) -> ExperimentTable:
    """Accuracy / FPR / FNR / per-clip overhead vs. suite size.

    The classic in-process entry point; ``repro run suite_scaling`` and
    ``repro sweep`` run the same rows sharded and resumable.
    """
    spec = DetectorSpec.default().with_value("classifier.name", classifier)
    bundle = load_standard_bundle(scale, seed=seed)
    table = ExperimentTable(
        "Suite scaling",
        "Detection accuracy and per-clip overhead vs. suite size")
    for size in sizes:
        table.rows.append(_size_row(spec, composition, int(size), bundle,
                                    test_fraction, seed))
    return table


@register
class SuiteScalingExperiment(Experiment):
    """Suite-size scaling study sharded per size — one unit per size."""

    name = "suite_scaling"
    title = "Suite scaling"
    description = ("Detection accuracy and per-clip overhead vs. "
                   "suite size")
    defaults = {"sizes": list(DEFAULT_SIZES), "composition": "family",
                "test_fraction": 0.25}

    def prepare(self) -> None:
        self.bundle()

    def _sizes(self) -> list[int]:
        return [int(size) for size in self.param("sizes")]

    def shards(self, spec) -> list[WorkUnit]:
        composition = str(self.param("composition"))
        return [WorkUnit(key=f"{composition}-n{size:02d}",
                         params={"composition": composition, "size": size})
                for size in self._sizes()]

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return [_size_row(self.spec.detector,
                          str(unit.params["composition"]),
                          int(unit.params["size"]), self.bundle(),
                          float(self.param("test_fraction")),
                          self.spec.seed)]

    def manifest_extra(self) -> dict:
        """Record every grid point's exact suite, not just the spec's."""
        from repro.backends.registry import describe_suite
        composition = str(self.param("composition"))
        extra = super().manifest_extra()
        extra["suites"] = {
            f"{composition}-n{size:02d}":
                describe_suite(suite_for(composition, size))
            for size in self._sizes()}
        return extra


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI shim
    import argparse

    parser = argparse.ArgumentParser(
        description="Detection accuracy and overhead vs. ASR suite size")
    parser.add_argument("--scale", default=None,
                        choices=("tiny", "small", "medium", "paper"))
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES))
    parser.add_argument("--composition", default="family",
                        choices=COMPOSITIONS)
    parser.add_argument("--classifier", default="SVM")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)
    table = run_suite_scaling(scale=args.scale, sizes=args.sizes,
                              composition=args.composition,
                              classifier=args.classifier, seed=args.seed)
    print(table.to_markdown())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
