"""Tables IX-XII: hypothetical multiple-ASR-effective (MAE) AEs.

The six MAE AE types (Table IX) are synthesised in score space from the
observed benign / adversarial score pools.  Table X trains and tests a
detector per type; Table XI trains on one type and tests on every other
(the defense-rate matrix); Table XII trains the comprehensive system on
Types 4-6 and shows it defends the original AEs and Types 1-3.
"""

from __future__ import annotations

import numpy as np

from repro.core.mae import (
    MAE_TYPES,
    ScorePools,
    collect_score_pools,
    synthesize_mae_features,
)
from repro.core.proactive import ComprehensiveDetector
from repro.datasets.scores import ScoredDataset
from repro.experiments.registry import register
from repro.experiments.runner import Experiment, ExperimentTable, WorkUnit
from repro.ml.metrics import classification_report, defense_rate
from repro.ml.model_selection import train_test_split
from repro.ml.registry import build_classifier


def build_score_pools(dataset: ScoredDataset) -> ScorePools:
    """λBe / λAk pools from the measured benign and AE score vectors."""
    return collect_score_pools(dataset.benign_features(),
                               dataset.adversarial_features())


def run_table9_mae_types(dataset: ScoredDataset, n_per_type: int,
                         seed: int = 23) -> dict[str, np.ndarray]:
    """Synthesise every MAE AE type (Table IX) and return the feature sets."""
    pools = build_score_pools(dataset)
    rng = np.random.default_rng(seed)
    return {name: synthesize_mae_features(mae_type, pools, n_per_type, rng=rng)
            for name, mae_type in MAE_TYPES.items()}


def run_table10_mae_accuracy(dataset: ScoredDataset, n_per_type: int = 400,
                             seed: int = 23,
                             classifier_name: str = "SVM") -> ExperimentTable:
    """Per-type detection accuracy with an 80/20 split (Table X)."""
    benign = dataset.benign_features()
    mae_sets = run_table9_mae_types(dataset, n_per_type, seed)
    rng = np.random.default_rng(seed)
    table = ExperimentTable("Table X", "Detection of each MAE AE type")
    for name, adversarial in mae_sets.items():
        benign_idx = rng.choice(benign.shape[0], size=adversarial.shape[0], replace=True)
        features = np.vstack([benign[benign_idx], adversarial])
        labels = np.concatenate([np.zeros(adversarial.shape[0], dtype=int),
                                 np.ones(adversarial.shape[0], dtype=int)])
        train_x, test_x, train_y, test_y = train_test_split(features, labels,
                                                            test_fraction=0.2, seed=seed)
        classifier = build_classifier(classifier_name)
        classifier.fit(train_x, train_y)
        report = classification_report(test_y, classifier.predict(test_x))
        table.add_row(mae_type=name, label=MAE_TYPES[name].label(),
                      accuracy=report.accuracy, fpr=report.fpr, fnr=report.fnr)
    return table


def run_table11_cross_type_defense(dataset: ScoredDataset, n_per_type: int = 400,
                                   seed: int = 23,
                                   classifier_name: str = "SVM") -> ExperimentTable:
    """Train on one AE type, test the defense rate on every other (Table XI)."""
    benign = dataset.benign_features()
    original = dataset.adversarial_features()
    mae_sets = run_table9_mae_types(dataset, n_per_type, seed)
    all_sets: dict[str, np.ndarray] = {"Original": original, **mae_sets}
    rng = np.random.default_rng(seed)

    table = ExperimentTable(
        "Table XI", "Defense rates against unseen-attack MAE AEs (train rows, test columns)")
    for train_name, train_set in all_sets.items():
        benign_idx = rng.choice(benign.shape[0], size=train_set.shape[0], replace=True)
        features = np.vstack([benign[benign_idx], train_set])
        labels = np.concatenate([np.zeros(train_set.shape[0], dtype=int),
                                 np.ones(train_set.shape[0], dtype=int)])
        classifier = build_classifier(classifier_name)
        classifier.fit(features, labels)
        row = {"trained_on": train_name}
        for test_name, test_set in all_sets.items():
            if test_name == train_name:
                row[test_name] = float("nan")
                continue
            predictions = classifier.predict(test_set)
            row[test_name] = defense_rate(np.ones(test_set.shape[0], dtype=int), predictions)
        table.add_row(**row)
    return table


def run_table12_comprehensive(dataset: ScoredDataset, n_per_type: int = 400,
                              seed: int = 23,
                              classifier_name: str = "SVM") -> ExperimentTable:
    """The comprehensive proactive system (Table XII plus its test metrics)."""
    pools = build_score_pools(dataset)
    benign = dataset.benign_features()
    detector = ComprehensiveDetector(classifier=classifier_name, seed=seed)
    detector.fit(pools, benign, n_per_type=n_per_type)

    mae_sets = run_table9_mae_types(dataset, n_per_type, seed + 1)
    table = ExperimentTable(
        "Table XII", "Defense rates of the comprehensive system")
    table.add_row(unseen_attack="Original AEs",
                  defense_rate=detector.defense_rate(dataset.adversarial_features()))
    for name in ("Type-1", "Type-2", "Type-3"):
        table.add_row(unseen_attack=MAE_TYPES[name].label(),
                      defense_rate=detector.defense_rate(mae_sets[name]))

    # Held-out accuracy on the training distribution (benign + Types 4-6).
    rng = np.random.default_rng(seed + 2)
    eval_adversarial = np.vstack([mae_sets[name] for name in ("Type-4", "Type-5", "Type-6")])
    benign_idx = rng.choice(benign.shape[0], size=eval_adversarial.shape[0], replace=True)
    eval_features = np.vstack([benign[benign_idx], eval_adversarial])
    eval_labels = np.concatenate([np.zeros(eval_adversarial.shape[0], dtype=int),
                                  np.ones(eval_adversarial.shape[0], dtype=int)])
    report = detector.evaluate(eval_features, eval_labels)
    table.add_row(unseen_attack="(test set: benign + Types 4-6)",
                  defense_rate=float("nan"), accuracy=report.accuracy,
                  fpr=report.fpr, fnr=report.fnr)
    return table


class _MaeExperiment(Experiment):
    """Base of the MAE experiments: single unit each.

    Every MAE table draws benign indices from one RNG stream that spans
    its whole type loop, so sharding would change the synthesis; each
    table is one idempotent unit instead (the expensive part — the
    scored dataset — is cached/fork-inherited anyway).
    """

    defaults = {"n_per_type": 400, "mae_seed": 23}

    def shards(self, spec) -> list[WorkUnit]:
        return [WorkUnit(key="all-types")]

    def _table(self, runner) -> list[dict]:
        return runner(self.dataset(),
                      n_per_type=int(self.param("n_per_type")),
                      seed=int(self.param("mae_seed")),
                      classifier_name=self.classifier_name).rows


@register
class Table10Experiment(_MaeExperiment):
    name = "mae_accuracy"
    title = "Table X"
    description = "Detection of each MAE AE type"

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return self._table(run_table10_mae_accuracy)


@register
class Table11Experiment(_MaeExperiment):
    name = "mae_cross_type"
    title = "Table XI"
    description = ("Defense rates against unseen-attack MAE AEs "
                   "(train rows, test columns)")

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return self._table(run_table11_cross_type_defense)


@register
class Table12Experiment(_MaeExperiment):
    name = "mae_comprehensive"
    title = "Table XII"
    description = "Defense rates of the comprehensive system"

    def run_shard(self, unit: WorkUnit) -> list[dict]:
        return self._table(run_table12_comprehensive)
