"""Concurrency-safe on-disk store primitives for the cache layer.

The original on-disk caches wrote their whole payload with
``open(path, "w")`` — a crash mid-write truncated the store, and two
processes saving concurrently silently kept only the last writer.  The
serving layer (:mod:`repro.serving.service`) runs a *pool* of worker
processes against one cache directory, so both failure modes became
load-bearing.  This module holds the three primitives every cache now
builds on:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` — snapshot
  writes through a temp file in the destination directory followed by
  :func:`os.replace`, so readers only ever see the old complete file or
  the new complete file, never a torn one.
* :class:`Journal` — an append-only JSONL log shared by concurrent
  writer processes.  Each record is one ``json.dumps`` line appended
  with a single ``O_APPEND`` write, so records from different processes
  never interleave on a local filesystem; replay skips torn or corrupt
  lines instead of failing, and an in-progress tail (no trailing
  newline yet) is left for the next replay.
* :class:`ContentDirectoryStore` — a content-addressed directory of
  one-``.npz``-file-per-entry, each written atomically, for large array
  payloads (the feature cache).  Concurrent writers of the same key
  race benignly: entries are pure functions of their key, so whichever
  ``os.replace`` lands last installs identical bytes.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
from typing import Iterator

import numpy as np


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final
    rename never crosses filesystems.  A crash before the replace
    leaves the destination untouched; a crash after it leaves the new
    complete content.  Returns ``path``.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str, text: str) -> str:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"))


class Journal:
    """An append-only JSONL log safe for concurrent writer processes.

    Records are dicts, one ``json.dumps`` line each.  :meth:`append`
    opens the file with ``O_APPEND`` and writes the whole line in a
    single ``os.write`` call, so concurrent appenders never interleave
    within a line.  :meth:`replay` returns only records appended since
    the previous replay (an internal byte offset tracks progress), so a
    long-lived cache can cheaply pick up other processes' entries.

    Robustness rules, in order:

    * a trailing line without a newline is an append *in progress* (or
      the stump of a crashed writer) — it is not consumed, and the
      offset stays before it so a later replay re-reads it;
    * a complete line that fails to parse as a JSON object is counted
      in :attr:`corrupt_lines` and skipped permanently — a torn write
      can never corrupt the entries around it.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self.corrupt_lines = 0
        self._offset = 0

    def append(self, record: dict) -> None:
        """Append one record; atomic with respect to other appenders."""
        line = json.dumps(record, separators=(",", ":")) + "\n"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def replay(self) -> list[dict]:
        """Complete records appended since the last replay (maybe empty)."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:
            # The journal shrank: another process compacted it.  Start
            # over — re-reading entries is harmless (merges are
            # idempotent: same key, same committed value).
            self._offset = 0
        records: list[dict] = []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            while True:
                line = handle.readline()
                if not line or not line.endswith(b"\n"):
                    break  # EOF or an in-progress tail: try again later
                self._offset += len(line)
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except ValueError:
                    self.corrupt_lines += 1
                    continue
                if isinstance(record, dict):
                    records.append(record)
                else:
                    self.corrupt_lines += 1
        return records

    def rewrite(self, records: Iterator[dict]) -> None:
        """Atomically replace the journal with a compacted snapshot.

        Compaction is a *single-writer* operation: appends other
        processes make between the snapshot and the replace are lost.
        The serving workers only ever append; run compaction from an
        administrative process (``save()`` on a quiesced cache).
        """
        payload = "".join(json.dumps(record, separators=(",", ":")) + "\n"
                          for record in records)
        atomic_write_text(self.path, payload)
        self._offset = len(payload.encode("utf-8"))


class ContentDirectoryStore:
    """A content-addressed directory of atomically-written array entries.

    Each entry is one ``.npz`` file named by the SHA-1 of its cache key,
    holding the key string and the float64 value matrix.  Lookups are
    pure filesystem reads, writes are :func:`atomic_write_bytes`, so any
    number of processes can share the directory with no coordination:
    an entry either exists completely or not at all.
    """

    def __init__(self, directory: str):
        self.directory = os.fspath(directory)

    def _entry_path(self, key: str) -> str:
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()
        return os.path.join(self.directory, f"{digest}.npz")

    def write(self, key: str, value: np.ndarray) -> None:
        buffer = io.BytesIO()
        np.savez(buffer, __key__=np.array(key, dtype=str),
                 value=np.asarray(value, dtype=np.float64))
        atomic_write_bytes(self._entry_path(key), buffer.getvalue())

    def read(self, key: str) -> np.ndarray | None:
        path = self._entry_path(key)
        try:
            with np.load(path, allow_pickle=False) as payload:
                return np.asarray(payload["value"], dtype=np.float64)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Missing entry, or an entry written by a different/broken
            # format: treat as a miss rather than failing the lookup.
            return None

    def items(self) -> list[tuple[str, np.ndarray]]:
        """Every readable entry as ``(key, value)`` pairs."""
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        out = []
        for name in names:
            if not name.endswith(".npz"):
                continue
            path = os.path.join(self.directory, name)
            try:
                with np.load(path, allow_pickle=False) as payload:
                    out.append((str(payload["__key__"]),
                                np.asarray(payload["value"],
                                           dtype=np.float64)))
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                continue
        return out

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".npz"))
        except OSError:
            return 0
