"""A multi-tenant detection service over a pool of worker processes.

This is the serving front door the paper's deployment story implies
(Section V-I: the detector guards the ASR on the request path of a
voice assistant).  A :class:`DetectionService` owns

* one detection pipeline per *tenant* — a named
  :class:`~repro.specs.DetectorSpec` manifest, so different products
  can run different suites behind one service;
* a pool of ``workers`` forked worker processes, each holding every
  tenant's pipeline (built once in the parent, inherited by fork — the
  detectors are deliberately never pickled);
* an admission-controlled request queue: once ``queue_depth`` requests
  are in the house, new submissions are *shed* with a typed
  ``rejected``/429 result instead of queuing without bound;
* a per-request deadline: requests that expire in the queue or inside
  a worker resolve to a typed ``timeout``/504 result, and a worker
  stuck past a deadline is terminated and respawned;
* crash recovery: a worker that dies mid-batch is respawned and its
  in-flight requests are retried **once** on another worker — a second
  death resolves them to typed ``error``/500 results.

Every submission resolves — to a verdict or to a typed failure; the
service never hangs a caller and never lets a worker exception
propagate.  :meth:`DetectionService.submit` returns a
:class:`concurrent.futures.Future`; :meth:`DetectionService.asubmit`
awaits the same future on an asyncio loop, which is what ``repro
serve`` and the benchmark drive.

Workers share on-disk caches through the concurrency-safe stores in
:mod:`repro.store` (append-only journals for transcriptions and pair
scores, a content-addressed directory for feature matrices) when the
service is given a ``cache_dir`` — every worker write-throughs its
entries and merges the others' before each batch, so a clip
transcribed by worker 1 is a cache hit on worker 2.

Fork, not spawn, is a hard requirement: detectors hold thread locks
and unpicklable component graphs.  The pool is forked from
:meth:`start` before the service's own threads exist; respawned
workers get a *fresh* task queue and a *fresh* result pipe.  Results
travel over one :func:`multiprocessing.Pipe` per worker, never a
shared queue: a shared queue's write lock is a cross-process
semaphore, and a worker SIGKILL'd inside it would wedge every other
worker's result path forever.  With per-worker pipes a dead worker
can only poison its own channel, which the collector observes as a
clean EOF and retires.

The audio data plane between the dispatcher and the pool is selected
by ``transport``: ``"shm"`` (the default) writes each clip's samples
once into a :class:`~repro.serving.arena.ShmArena` created before the
fork and ships only ``(slot, offset, shape, dtype, generation)``
descriptors through the task queues — a retry re-dispatches the same
descriptor with zero extra copies, slots are reclaimed exactly when
their request resolves (crashed or not), and the arena segment is
always unlinked on :meth:`stop`; ``"pickle"`` ships the full sample
arrays through the queues (the pre-arena behaviour, kept as the
fallback for platforms without POSIX shared memory and as the
benchmark baseline).  Both transports are bit-identical — the
``bench-serve`` parity gate covers each.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import multiprocessing.connection
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.audio.waveform import Waveform
from repro.serving.arena import (
    DESCRIPTOR_NBYTES,
    ArenaError,
    ShmArena,
    ShmClip,
    restore_waveform,
    share_waveform,
)

#: Typed outcome statuses, with their HTTP-flavoured codes.
STATUS_CODES = {"ok": 200, "rejected": 429, "timeout": 504, "error": 500}

#: Valid ``transport`` values (mirrors ``repro.specs.SERVE_TRANSPORTS``).
TRANSPORTS = ("shm", "pickle")


@dataclass(frozen=True)
class ServeResult:
    """The typed outcome of one served detection request.

    Attributes:
        status: ``"ok"`` (verdict inside), ``"rejected"`` (shed at
            admission — the queue was full), ``"timeout"`` (deadline
            expired in the queue or inside a worker) or ``"error"``
            (unknown tenant, worker exception, or a request whose
            worker died twice).
        code: HTTP-flavoured numeric code — 200, 429, 504, 500 (404
            for an unknown tenant).
        tenant: the tenant the request addressed.
        request_id: caller-supplied or generated label.
        is_adversarial: the verdict (``None`` unless ``status == "ok"``).
        scores: per-auxiliary similarity scores as a tuple of floats
            (``None`` unless ``status == "ok"``).
        target_transcription: what the tenant's target ASR heard.
        detail: human-readable failure detail (empty when ok).
        queue_seconds: time from submission to worker dispatch.
        total_seconds: time from submission to resolution.
        worker_id: the worker that answered (``-1`` when none did).
        retried: whether the request was retried after a worker crash.
    """

    status: str
    code: int
    tenant: str
    request_id: str
    is_adversarial: bool | None = None
    scores: tuple[float, ...] | None = None
    target_transcription: str | None = None
    detail: str = ""
    queue_seconds: float = 0.0
    total_seconds: float = 0.0
    worker_id: int = -1
    retried: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ServiceStats:
    """Counters of one :class:`DetectionService`'s lifetime.

    ``ipc_bytes_out`` approximates the audio payload bytes shipped
    through the task queues (full sample arrays under the pickle
    transport, constant-size descriptors under shm, counted per
    dispatch including retries); ``ipc_bytes_in`` approximates the
    result payload bytes shipped back.  ``requests_retried`` counts the
    distinct requests that were ever retried after a worker crash
    (``retries`` counts retry *events*; they coincide under the
    retry-once policy).
    """

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    timeouts: int = 0
    errors: int = 0
    retries: int = 0
    requests_retried: int = 0
    respawns: int = 0
    ipc_bytes_out: int = 0
    ipc_bytes_in: int = 0

    def snapshot(self) -> "ServiceStats":
        return replace(self)


@dataclass
class _Request:
    """Parent-side state of one in-house request (internal)."""

    key: int
    tenant: str
    request_id: str
    audio: Waveform
    future: Future
    submitted_at: float
    deadline: float | None
    dispatched_at: float | None = None
    worker_id: int = -1
    retried: bool = False
    #: Arena-resident samples (shm transport): written at first
    #: dispatch, reused verbatim on a crash retry, freed at resolution.
    shm_clip: ShmClip | None = None


def _refresh_shared_caches(pipelines: Mapping[str, Any]) -> None:
    """Merge journal entries other workers appended since the last look."""
    seen: set[int] = set()
    for pipeline in pipelines.values():
        detector = pipeline.detector
        for cache in (detector.engine.cache, detector.scoring.cache):
            if cache is not None and id(cache) not in seen:
                seen.add(id(cache))
                refresh = getattr(cache, "refresh", None)
                if refresh is not None:
                    refresh()


def _detect_one(pipeline, audio: Waveform) -> dict:
    result = pipeline.detect(audio)
    return {
        "ok": True,
        "is_adversarial": bool(result.is_adversarial),
        "scores": [float(s) for s in result.scores],
        "target_transcription": result.target_transcription,
    }


def _materialise(arena: ShmArena | None, payload) -> Waveform:
    """Turn a task payload back into a waveform.

    A :class:`ShmClip` becomes a zero-copy read-only view over the
    fork-inherited arena pages; anything else travelled by value.
    Raises :class:`~repro.serving.arena.ArenaError` (``StaleSlot``) when
    the descriptor's slot was reclaimed — the caller converts that into
    a typed error rather than reading reused bytes.
    """
    if isinstance(payload, ShmClip):
        if arena is None:
            raise ArenaError("shm payload but worker has no arena")
        return restore_waveform(arena, payload)
    return payload


def _post_result(result_conn, item) -> None:
    """Send one result over the worker's pipe; drop it if the parent
    has already closed its end (the service is stopping — nobody will
    read the answer, and dying on EPIPE would look like a crash)."""
    try:
        result_conn.send(item)
    except (BrokenPipeError, OSError):
        pass


def _worker_main(worker_id: int, pipelines: Mapping[str, Any],
                 task_q, result_conn, max_batch_size: int,
                 shared_caches: bool, arena: ShmArena | None = None) -> None:
    """Worker loop: drain a micro-batch, detect per tenant, post results.

    Tasks are ``(key, tenant, payload)`` tuples — the payload is a
    :class:`~repro.audio.waveform.Waveform` (pickle transport) or a
    :class:`~repro.serving.arena.ShmClip` descriptor (shm transport);
    ``None`` is the shutdown sentinel.  Results go back over this
    worker's private ``result_conn`` pipe end.  Requests of the same
    tenant within one drain are detected with one ``detect_batch``
    call (amortised classifier overhead); an exception during the
    batch falls back to per-request detection so one poisoned clip
    cannot fail its batchmates.
    """
    # A parent that already served requests forked live thread pools
    # into this child; their threads do not exist here, so any engine
    # still holding one would queue work nothing will ever run.
    for pipeline in pipelines.values():
        engine = getattr(getattr(pipeline, "detector", None), "engine", None)
        if engine is not None and hasattr(engine, "reset_after_fork"):
            engine.reset_after_fork()
    while True:
        task = task_q.get()
        if task is None:
            return
        batch = [task]
        while len(batch) < max_batch_size:
            try:
                extra = task_q.get_nowait()
            except queue.Empty:
                break
            if extra is None:
                _run_batch(worker_id, pipelines, batch, result_conn,
                           shared_caches, arena)
                return
            batch.append(extra)
        _run_batch(worker_id, pipelines, batch, result_conn, shared_caches,
                   arena)


def _run_batch(worker_id: int, pipelines, batch, result_conn,
               shared_caches: bool, arena: ShmArena | None = None) -> None:
    if shared_caches:
        try:
            _refresh_shared_caches(pipelines)
        except Exception:
            pass  # a torn refresh must never take down the batch
    by_tenant: dict[str, list] = {}
    for key, tenant, payload in batch:
        try:
            audio = _materialise(arena, payload)
        except ArenaError as exc:
            # A stale/unreadable descriptor must not poison the batch:
            # answer this request with a typed error and keep going.
            _post_result(result_conn, (worker_id, key, {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }))
            continue
        by_tenant.setdefault(tenant, []).append((key, audio))
    for tenant, items in by_tenant.items():
        pipeline = pipelines[tenant]
        payloads: list[tuple[int, dict]] = []
        try:
            outcome = pipeline.detect_batch([audio for _, audio in items])
            for (key, _), result in zip(items, outcome.results):
                payloads.append((key, {
                    "ok": True,
                    "is_adversarial": bool(result.is_adversarial),
                    "scores": [float(s) for s in result.scores],
                    "target_transcription": result.target_transcription,
                }))
        except Exception:
            # Isolate the failure: re-run the batch one request at a
            # time so only the offending clip reports an error.
            payloads = []
            for key, audio in items:
                try:
                    payloads.append((key, _detect_one(pipeline, audio)))
                except Exception as exc:
                    payloads.append((key, {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }))
        for key, payload in payloads:
            _post_result(result_conn, (worker_id, key, payload))


class DetectionService:
    """Admission-controlled multi-process front door over tenant detectors.

    Args:
        pipelines: mapping of tenant name to a built
            :class:`~repro.pipeline.detection.DetectionPipeline` (or a
            detector, which is wrapped).  Built **before** the pool is
            forked, so every worker inherits every tenant.
        workers: worker process count; ``0`` runs every request inline
            in the submitting thread (no pool, no deadline enforcement
            — the parity baseline and the test default).
        queue_depth: admission bound — the maximum number of requests
            pending + in flight before new submissions are shed.
        request_timeout_seconds: per-request deadline from submission,
            ``None`` to disable.
        max_batch_size: micro-batch drain bound per worker, and the
            per-worker in-flight cap the dispatcher respects.
        cache_dir: optional directory of concurrency-safe shared cache
            stores rewired onto every tenant's engines (see
            :func:`attach_shared_caches`).
        transport: audio data plane — ``"shm"`` (default) ships samples
            through a shared-memory arena, ``"pickle"`` through the
            task queues; see the module docstring.  When shared memory
            is unavailable the service silently degrades to pickle
            (``active_transport`` reports what actually runs).
        arena_bytes: shm arena capacity.  The default budgets one
            megabyte (~8 s of 16 kHz float64 audio) per admissible
            request; clips that do not fit fall back to pickle per
            dispatch.
    """

    _TICK_SECONDS = 0.005

    #: Default per-admissible-request arena budget (see ``arena_bytes``).
    _ARENA_BYTES_PER_REQUEST = 1 << 20

    def __init__(self, pipelines: Mapping[str, Any], *, workers: int = 2,
                 queue_depth: int = 64,
                 request_timeout_seconds: float | None = 30.0,
                 max_batch_size: int = 8,
                 cache_dir: str | None = None,
                 transport: str = "shm",
                 arena_bytes: int | None = None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if request_timeout_seconds is not None and request_timeout_seconds <= 0:
            raise ValueError("request_timeout_seconds must be > 0 or None")
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, "
                             f"got {transport!r}")
        from repro.pipeline.detection import DetectionPipeline
        self.pipelines: dict[str, Any] = {}
        for tenant, obj in pipelines.items():
            if not isinstance(obj, DetectionPipeline):
                obj = DetectionPipeline(obj)
            self.pipelines[tenant] = obj
        self.workers = workers
        self.queue_depth = queue_depth
        self.request_timeout_seconds = request_timeout_seconds
        self.max_batch_size = max(1, max_batch_size)
        self.cache_dir = cache_dir
        self.transport = transport
        #: What actually runs — ``"pickle"`` when shm was requested but
        #: unavailable (set by :meth:`start`), and always for workers=0.
        self.active_transport = transport if workers > 0 else "pickle"
        self.arena_bytes = (int(arena_bytes) if arena_bytes is not None
                            else self._ARENA_BYTES_PER_REQUEST
                            * max(1, queue_depth))
        self._arena: ShmArena | None = None
        if cache_dir is not None:
            attach_shared_caches(self.pipelines, cache_dir)
        self.stats = ServiceStats()
        self._ctx = multiprocessing.get_context("fork")
        self._procs: dict[int, Any] = {}
        self._task_qs: dict[int, Any] = {}
        # One result pipe (recv end) per live worker, plus dead workers'
        # ends the collector has not yet drained to EOF.  Mutated with
        # GIL-atomic list ops only: _spawn runs under self._lock while
        # the collector reads without it.
        self._result_conns: list[Any] = []
        self._wake_r = None
        self._wake_w = None
        self._lock = threading.Lock()
        self._pending: deque[_Request] = deque()
        self._inflight: dict[int, dict[int, _Request]] = {}
        self._requests: dict[int, _Request] = {}
        self._keys = itertools.count(1)
        self._started = False
        self._stopping = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._collector: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "DetectionService":
        """Fork the worker pool and start the dispatcher/collector.

        The shm arena is created *before* the first fork so every
        worker — including later respawns, which fork from this same
        parent — inherits the mapping; if creation fails (no POSIX
        shared memory, /dev/shm full) the service degrades to the
        pickle transport instead of refusing to start.
        """
        if self._started:
            return self
        self._started = True
        if self.workers > 0:
            if self.transport == "shm":
                try:
                    self._arena = ShmArena(
                        self.arena_bytes,
                        slots=max(64, self.queue_depth + 16))
                    self.active_transport = "shm"
                except (ImportError, OSError, ValueError):
                    self._arena = None
                    self.active_transport = "pickle"
            else:
                self.active_transport = "pickle"
            self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
            for worker_id in range(self.workers):
                self._spawn(worker_id)
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatch", daemon=True)
            self._collector = threading.Thread(
                target=self._collect_loop, name="serve-collect", daemon=True)
            self._dispatcher.start()
            self._collector.start()
        return self

    def _spawn(self, worker_id: int) -> None:
        """Fork one worker with a fresh task queue and result pipe
        (also used on respawn)."""
        old_q = self._task_qs.get(worker_id)
        if old_q is not None:
            # Retire the dead worker's queue.  Its feeder thread may be
            # blocked on a full pipe nobody will ever read again; without
            # cancel_join_thread, interpreter exit would join that feeder
            # forever.  The queued tasks are not lost — the dispatcher
            # retries the dead worker's in-flight requests explicitly.
            old_q.close()
            old_q.cancel_join_thread()
        task_q = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.pipelines, task_q, send_conn,
                  self.max_batch_size, self.cache_dir is not None,
                  self._arena),
            name=f"serve-worker-{worker_id}", daemon=True)
        proc.start()
        # Close the parent's copy of the send end *before* any later
        # fork: the worker now holds the only write end, so its death
        # — even SIGKILL mid-send — surfaces as EOF on recv_conn, and
        # no sibling inherits a write end that would mask it.
        send_conn.close()
        self._procs[worker_id] = proc
        self._task_qs[worker_id] = task_q
        self._result_conns.append(recv_conn)
        if self._wake_w is not None:
            try:
                # Re-arm the collector: its current wait() predates
                # recv_conn and would not watch it until timeout.
                self._wake_w.send_bytes(b"r")
            except (OSError, ValueError):
                pass
        self._inflight.setdefault(worker_id, {})

    def stop(self) -> None:
        """Stop the pool; outstanding requests resolve as errors.

        The arena is destroyed unconditionally (``finally``), so no
        ``/dev/shm`` segment survives the service — even when workers
        were SIGKILL'd or a join above raised.
        """
        if not self._started:
            return
        try:
            self._stopping.set()
            if self._dispatcher is not None:
                self._dispatcher.join(timeout=5.0)
            for worker_id, task_q in list(self._task_qs.items()):
                try:
                    task_q.put(None)
                except (OSError, ValueError):
                    pass
            for worker_id, proc in list(self._procs.items()):
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            if self._wake_w is not None:
                try:
                    self._wake_w.send_bytes(b"q")
                except (OSError, ValueError):
                    pass
            if self._collector is not None:
                self._collector.join(timeout=5.0)
            for task_q in self._task_qs.values():
                task_q.close()
                task_q.cancel_join_thread()
            for conn in self._result_conns:
                try:
                    conn.close()
                except OSError:
                    pass
            self._result_conns.clear()
            for conn in (self._wake_r, self._wake_w):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            self._wake_r = self._wake_w = None
            self._task_qs.clear()
            self._procs.clear()
            with self._lock:
                leftovers = list(self._requests.values())
                self._requests.clear()
                self._pending.clear()
                for inflight in self._inflight.values():
                    inflight.clear()
            for request in leftovers:
                self._resolve(request, status="error",
                              detail="service stopped", code=500)
        finally:
            if self._arena is not None:
                self._arena.destroy()
                self._arena = None
            self._started = False

    def __enter__(self) -> "DetectionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ submission
    def submit(self, tenant: str, audio: Waveform,
               request_id: str | None = None) -> Future:
        """Submit one clip; returns a Future resolving to a ServeResult.

        The future always resolves — with a verdict, or with a typed
        rejection/timeout/error result.  It never raises.
        """
        key = next(self._keys)
        request_id = request_id if request_id is not None else f"r{key}"
        future: Future = Future()
        # One clock read for both stamps: the deadline is defined
        # relative to submitted_at, not to a second, slightly later now.
        now = time.monotonic()
        request = _Request(
            key=key, tenant=tenant, request_id=request_id, audio=audio,
            future=future, submitted_at=now,
            deadline=(now + self.request_timeout_seconds
                      if self.request_timeout_seconds is not None
                      else None))
        with self._lock:
            self.stats.submitted += 1
        if tenant not in self.pipelines:
            self._resolve(request, status="error", code=404,
                          detail=f"unknown tenant {tenant!r}")
            return future
        if self.workers == 0:
            return self._submit_inline(request)
        with self._lock:
            if not self._started:
                queued = False
            else:
                in_house = len(self._pending) + sum(
                    len(flight) for flight in self._inflight.values())
                queued = in_house < self.queue_depth
                if queued:
                    self._requests[key] = request
                    self._pending.append(request)
        if not queued:
            if self._started:
                self._resolve(request, status="rejected", code=429,
                              detail="queue full")
            else:
                self._resolve(request, status="error", code=500,
                              detail="service not started")
        return future

    async def asubmit(self, tenant: str, audio: Waveform,
                      request_id: str | None = None) -> ServeResult:
        """Asyncio front door: awaitable :meth:`submit`."""
        import asyncio
        return await asyncio.wrap_future(self.submit(
            tenant, audio, request_id=request_id))

    def _submit_inline(self, request: _Request) -> Future:
        """workers=0 path: run in the caller's thread, same typed surface."""
        pipeline = self.pipelines[request.tenant]
        request.dispatched_at = time.monotonic()
        try:
            payload = _detect_one(pipeline, request.audio)
        except Exception as exc:
            self._resolve(request, status="error", code=500,
                          detail=f"{type(exc).__name__}: {exc}")
            return request.future
        self._resolve(request, status="ok", code=200, payload=payload,
                      worker_id=0)
        return request.future

    # ------------------------------------------------------------ scheduling
    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            self._tick()
            time.sleep(self._TICK_SECONDS)

    def _tick(self) -> None:
        now = time.monotonic()
        expired: list[_Request] = []
        crash_victims: list[_Request] = []
        hang_victims: list[_Request] = []
        with self._lock:
            # 1. Shed requests whose deadline expired while queued.
            keep: deque[_Request] = deque()
            for request in self._pending:
                if request.deadline is not None and now >= request.deadline:
                    self._requests.pop(request.key, None)
                    expired.append(request)
                else:
                    keep.append(request)
            self._pending = keep
            # 2. Dead workers: respawn, retry their in-flight once.
            for worker_id, proc in list(self._procs.items()):
                if proc.is_alive():
                    continue
                victims = list(self._inflight[worker_id].values())
                self._inflight[worker_id].clear()
                self.stats.respawns += 1
                self._spawn(worker_id)
                for request in victims:
                    if request.retried:
                        self._requests.pop(request.key, None)
                        crash_victims.append(request)
                    else:
                        request.retried = True
                        request.worker_id = -1
                        self.stats.retries += 1
                        self.stats.requests_retried += 1
                        self._pending.appendleft(request)
            # 3. Hung workers: any in-flight deadline expired means the
            #    worker is stuck past a deadline — kill it, time out the
            #    expired requests, retry the innocent bystanders once.
            for worker_id, inflight in list(self._inflight.items()):
                overdue = [request for request in inflight.values()
                           if request.deadline is not None
                           and now >= request.deadline]
                if not overdue:
                    continue
                proc = self._procs[worker_id]
                proc.terminate()
                proc.join(timeout=2.0)
                victims = list(inflight.values())
                inflight.clear()
                self.stats.respawns += 1
                self._spawn(worker_id)
                for request in victims:
                    if (request.deadline is not None
                            and now >= request.deadline):
                        self._requests.pop(request.key, None)
                        hang_victims.append(request)
                    elif request.retried:
                        self._requests.pop(request.key, None)
                        crash_victims.append(request)
                    else:
                        request.retried = True
                        request.worker_id = -1
                        self.stats.retries += 1
                        self.stats.requests_retried += 1
                        self._pending.appendleft(request)
            # 4. Assign pending requests to the least-loaded workers.
            #    A retried request is dispatched *solo* to an idle
            #    worker — never batched — so a poison clip cannot take
            #    its innocent batchmates down a second time (and a
            #    worker holding a retried request takes nothing else).
            while self._pending:
                head = self._pending[0]
                eligible = [
                    wid for wid, flight in self._inflight.items()
                    if not any(r.retried for r in flight.values())
                    and len(flight) < self.max_batch_size
                    and (not head.retried or not flight)]
                if not eligible:
                    break
                worker_id = min(
                    eligible, key=lambda wid: len(self._inflight[wid]))
                request = self._pending.popleft()
                request.dispatched_at = now
                request.worker_id = worker_id
                self._inflight[worker_id][request.key] = request
                payload = self._dispatch_payload(request)
                self._task_qs[worker_id].put(
                    (request.key, request.tenant, payload))
        for request in expired:
            self._resolve(request, status="timeout", code=504,
                          detail="deadline expired in queue")
        for request in hang_victims:
            self._resolve(request, status="timeout", code=504,
                          detail="deadline expired in worker")
        for request in crash_victims:
            self._resolve(request, status="error", code=500,
                          detail="worker died twice processing this request")

    def _dispatch_payload(self, request: _Request):
        """Build the task payload for one dispatch (caller holds the lock).

        Under the shm transport the samples are written into the arena
        once — a crash retry reuses the existing descriptor verbatim
        (the parent wrote the bytes; workers never mutate them), so the
        retry costs zero extra copies.  When the arena is absent or
        full, this dispatch falls back to shipping the waveform by
        value; ``ipc_bytes_out`` accounts whichever payload was sent.
        """
        if self._arena is not None:
            clip = request.shm_clip
            if clip is None:
                clip = share_waveform(self._arena, request.audio)
            if clip is not None:
                request.shm_clip = clip
                self.stats.ipc_bytes_out += DESCRIPTOR_NBYTES
                return clip
        self.stats.ipc_bytes_out += int(request.audio.samples.nbytes)
        return request.audio

    @staticmethod
    def _result_nbytes(payload: dict) -> int:
        """Approximate wire size of one result payload (fixed overhead
        plus the variable-length fields)."""
        nbytes = 96
        scores = payload.get("scores")
        if scores is not None:
            nbytes += 8 * len(scores)
        for field in ("target_transcription", "error"):
            value = payload.get(field)
            if isinstance(value, str):
                nbytes += len(value)
        return nbytes

    def _collect_loop(self) -> None:
        """Drain every worker's result pipe until stop() signals.

        ``wait()`` watches all current pipes plus the wake pipe, which
        ``_spawn`` pings when a respawn adds a pipe mid-wait and
        ``stop()`` pings to shut the loop down.  A dead worker's pipe
        reads EOF once drained (the worker held the only write end)
        and is retired here — its in-flight requests are the
        dispatcher's business, not ours.
        """
        while not self._stopping.is_set():
            conns = list(self._result_conns)
            try:
                ready = multiprocessing.connection.wait(
                    conns + [self._wake_r], timeout=1.0)
            except OSError:
                return
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        conn.recv_bytes()
                    except (EOFError, OSError):
                        return
                    continue
                try:
                    item = conn.recv()
                except (EOFError, OSError):
                    try:
                        self._result_conns.remove(conn)
                    except ValueError:
                        pass
                    conn.close()
                    continue
                self._handle_result(*item)

    def _handle_result(self, worker_id: int, key: int, payload: dict) -> None:
        with self._lock:
            self.stats.ipc_bytes_in += self._result_nbytes(payload)
            request = self._requests.pop(key, None)
            for inflight in self._inflight.values():
                inflight.pop(key, None)
        if request is None:
            return  # already timed out / stopped: drop the late answer
        if (request.deadline is not None
                and time.monotonic() >= request.deadline):
            # The answer arrived after the deadline but before the
            # dispatcher's next expiry sweep.  The deadline governs:
            # the caller was promised a resolution by then and may
            # already have given up — a late verdict is a timeout,
            # not a success that depends on which thread won a race.
            self._resolve(request, status="timeout", code=504,
                          detail="deadline expired in worker",
                          worker_id=worker_id)
        elif payload.get("ok"):
            self._resolve(request, status="ok", code=200,
                          payload=payload, worker_id=worker_id)
        else:
            self._resolve(request, status="error", code=500,
                          detail=payload.get("error", "worker error"),
                          worker_id=worker_id)

    # ------------------------------------------------------------ resolution
    def _resolve(self, request: _Request, *, status: str, code: int,
                 detail: str = "", payload: dict | None = None,
                 worker_id: int = -1) -> None:
        now = time.monotonic()
        payload = payload or {}
        # Resolution is the single reclamation point of the request's
        # arena slot — ok, timeout, crash-retry exhaustion and stop()
        # all funnel through here, so dead-worker slots are reclaimed
        # exactly once and never leak.
        if request.shm_clip is not None:
            if self._arena is not None:
                self._arena.free(request.shm_clip.ref)
            request.shm_clip = None
        result = ServeResult(
            status=status, code=code, tenant=request.tenant,
            request_id=request.request_id,
            is_adversarial=payload.get("is_adversarial"),
            scores=(tuple(payload["scores"]) if "scores" in payload
                    else None),
            target_transcription=payload.get("target_transcription"),
            detail=detail,
            queue_seconds=((request.dispatched_at or now)
                           - request.submitted_at),
            total_seconds=now - request.submitted_at,
            worker_id=worker_id if worker_id >= 0 else request.worker_id,
            retried=request.retried)
        with self._lock:
            if status == "ok":
                self.stats.completed += 1
            elif status == "rejected":
                self.stats.rejected += 1
            elif status == "timeout":
                self.stats.timeouts += 1
            else:
                self.stats.errors += 1
        if not request.future.done():
            request.future.set_result(result)

    # ------------------------------------------------------------- manifests
    @classmethod
    def from_manifest(cls, manifest: Mapping | str | None = None, *,
                      fit: bool = True) -> "DetectionService":
        """Build a service from a tenant manifest (dict or JSON path).

        The manifest maps tenant names to detector specs::

            {"tenants": {"voice": "configs/voice.json",
                         "iot": {"suite": {...}}},
             "serving": {"workers": 2, "queue_depth": 64},
             "cache_dir": "cache/serve"}

        Each tenant value is a spec path, an inline spec dict, or
        ``null`` for the paper's default system.  The optional
        ``serving`` section overrides the pool configuration (fields of
        :class:`~repro.specs.ServingSpec`); otherwise the first
        tenant's ``serving`` section governs.  Anything that is *not* a
        manifest (no ``"tenants"`` key) is treated as a single-tenant
        spec under the name ``"default"``.
        """
        from repro.build import build, build_pipeline, resolve_spec
        from repro.specs import ServingSpec
        manifest = load_manifest(manifest)
        serving_over = manifest.get("serving") or {}
        pipelines: dict[str, Any] = {}
        first_serving: ServingSpec | None = None
        for tenant, entry in manifest["tenants"].items():
            spec = resolve_spec(entry)
            if first_serving is None:
                first_serving = spec.serving
            pipelines[tenant] = build_pipeline(detector=build(spec, fit=fit))
        serving = first_serving if first_serving is not None else ServingSpec()
        if serving_over:
            serving = ServingSpec.from_dict(
                {**serving.to_dict(), **serving_over})
        return cls(pipelines,
                   workers=serving.workers,
                   queue_depth=serving.queue_depth,
                   request_timeout_seconds=serving.request_timeout_seconds,
                   max_batch_size=serving.max_batch_size,
                   cache_dir=manifest.get("cache_dir"),
                   transport=serving.transport)


def load_manifest(manifest: Mapping | str | None) -> dict:
    """Normalise a manifest argument into ``{"tenants": {...}, ...}``.

    Accepts a manifest dict, a path to a manifest JSON file, a spec (in
    any form :func:`repro.build.resolve_spec` takes) or ``None``; specs
    become single-tenant manifests under the name ``"default"``.
    """
    if manifest is None:
        return {"tenants": {"default": None}}
    if isinstance(manifest, str):
        with open(manifest, encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, Mapping) and "tenants" in data:
            data = dict(data)
            # Tenant spec paths are relative to the manifest file.
            base = os.path.dirname(os.path.abspath(manifest))
            data["tenants"] = {
                tenant: (os.path.normpath(os.path.join(base, entry))
                         if isinstance(entry, str)
                         and not os.path.isabs(entry) else entry)
                for tenant, entry in data["tenants"].items()}
            if isinstance(data.get("cache_dir"), str) \
                    and not os.path.isabs(data["cache_dir"]):
                data["cache_dir"] = os.path.normpath(
                    os.path.join(base, data["cache_dir"]))
            return data
        return {"tenants": {"default": manifest}}
    if isinstance(manifest, Mapping) and "tenants" in manifest:
        return dict(manifest)
    return {"tenants": {"default": manifest}}


def attach_shared_caches(pipelines: Mapping[str, Any],
                         cache_dir: str) -> None:
    """Rewire every tenant's engines onto concurrency-safe shared stores.

    One journal/directory per cache kind, shared by every tenant and —
    after the fork — every worker process:

    * ``transcriptions.jsonl`` — :class:`~repro.store.Journal`-backed
      :class:`~repro.pipeline.cache.TranscriptionCache`;
    * ``scores.jsonl`` — journal-backed
      :class:`~repro.similarity.score_cache.PairScoreCache`;
    * ``features/`` — :class:`~repro.store.ContentDirectoryStore`-backed
      :class:`~repro.dsp.feature_cache.FeatureCache`.
    """
    from repro.dsp.feature_cache import FeatureCache
    from repro.pipeline.cache import TranscriptionCache
    from repro.similarity.score_cache import PairScoreCache
    os.makedirs(cache_dir, exist_ok=True)
    transcription_cache = TranscriptionCache(
        path=os.path.join(cache_dir, "transcriptions.jsonl"))
    score_cache = PairScoreCache(path=os.path.join(cache_dir, "scores.jsonl"))
    feature_cache = FeatureCache(path=os.path.join(cache_dir, "features"))
    for pipeline in pipelines.values():
        detector = pipeline.detector
        detector.engine.cache = transcription_cache
        detector.scoring.cache = score_cache
        if detector.engine.feature_engine is not None:
            detector.engine.feature_engine.cache = feature_cache
