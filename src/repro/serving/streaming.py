"""Streaming detection: chunker → pipeline → hysteresis aggregate.

:class:`StreamingDetector` screens long or continuous audio with a
fitted :class:`~repro.core.detector.MVPEarsDetector`: the stream is cut
into overlapping windows (:mod:`repro.serving.chunker`), every window is
scored through the batched
:class:`~repro.pipeline.detection.DetectionPipeline` (so recognition of
consecutive windows overlaps in the engine's worker pool, and similarity
scoring of repeated transcription pairs — overlapping windows re-hear the
same audio — is served from the detector's shared pair-score cache), and
the per-window verdicts fold into a stream-level verdict with hysteresis
(:mod:`repro.serving.aggregator`).

Two entry points:

* :meth:`StreamingDetector.detect_stream` — screen one complete
  recording in a single call.
* :meth:`StreamingDetector.session` — an incremental
  :class:`StreamSession` for audio that arrives in pieces: ``push()``
  chunks of any size as they arrive (complete windows are scored
  immediately, in one pipeline batch per push) and ``flush()`` at end of
  stream for the tail window and the flagged spans.

With ``hop == window`` (non-overlapping tiling) the windows partition
the stream exactly, so a stream built by concatenating equal-length
clips yields precisely those clips as windows — and therefore the same
per-clip verdicts as calling the detector on each clip (the equivalence
``tests/test_serving.py`` pins down).
"""

from __future__ import annotations

import numpy as np

from repro.audio.waveform import Waveform
from repro.pipeline.detection import DetectionPipeline
from repro.serving.aggregator import (
    StreamAggregator,
    StreamDetectionResult,
    WindowVerdict,
)
from repro.serving.chunker import StreamConfig, StreamWindow, tail_window_span

#: Stage keys accumulated into ``StreamDetectionResult.stage_seconds``.
_STAGES = ("recognition", "similarity", "classification", "total")


class StreamSession:
    """Incremental screening state for one audio stream.

    Create via :meth:`StreamingDetector.session`.  Not thread-safe; one
    session serves one stream.
    """

    def __init__(self, pipeline: DetectionPipeline, config: StreamConfig):
        self.pipeline = pipeline
        self.config = config
        self.aggregator = StreamAggregator(
            trigger_windows=config.trigger_windows,
            release_windows=config.release_windows)
        self.windows: list[WindowVerdict] = []
        self._sample_rate: int | None = None
        self._buffer = np.zeros(0)
        self._base = 0          # absolute sample index of _buffer[0]
        self._next_start = 0    # absolute start of the next window
        self._covered_end = 0   # absolute end of the last full window cut
        self._finished = False
        self._n_cut = 0
        self._stage_seconds = dict.fromkeys(_STAGES, 0.0)
        self._cache_hits = 0
        self._cache_misses = 0
        self._score_cache_hits = 0
        self._score_cache_misses = 0

    # ------------------------------------------------------------ properties
    @property
    def state(self) -> str:
        """Current stream-level verdict state (``benign``/``adversarial``)."""
        return self.aggregator.state

    @property
    def position_seconds(self) -> float:
        """Total stream time pushed so far, in seconds."""
        if self._sample_rate is None:
            return 0.0
        return (self._base + len(self._buffer)) / self._sample_rate

    # -------------------------------------------------------------- feeding
    def push(self, audio: Waveform) -> list[WindowVerdict]:
        """Append arriving audio; score and return newly complete windows."""
        if self._finished:
            raise RuntimeError("stream session already flushed")
        if self._sample_rate is None:
            self._sample_rate = audio.sample_rate
        elif audio.sample_rate != self._sample_rate:
            raise ValueError(
                f"sample rate changed mid-stream "
                f"({self._sample_rate} -> {audio.sample_rate})")
        self._buffer = np.concatenate([self._buffer, audio.samples])
        return self._drain_complete_windows()

    def flush(self) -> StreamDetectionResult:
        """End the stream: score the tail window, close spans, report."""
        if self._finished:
            raise RuntimeError("stream session already flushed")
        self._finished = True
        tail = self._tail_window()
        if tail is not None:
            self._score_windows([tail])
        spans = self.aggregator.finalize()
        return StreamDetectionResult(
            windows=self.windows,
            spans=spans,
            stage_seconds=dict(self._stage_seconds),
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            score_cache_hits=self._score_cache_hits,
            score_cache_misses=self._score_cache_misses,
        )

    # ------------------------------------------------------------- internals
    def _drain_complete_windows(self) -> list[WindowVerdict]:
        window = self.config.window_samples(self._sample_rate)
        hop = self.config.hop_samples(self._sample_rate)
        end = self._base + len(self._buffer)
        pending: list[StreamWindow] = []
        while self._next_start + window <= end:
            pending.append(self._cut(self._next_start,
                                     self._next_start + window))
            self._covered_end = self._next_start + window
            self._next_start += hop
        # Drop consumed samples, keeping any overlap the next window needs.
        keep_from = min(self._next_start, end)
        if keep_from > self._base:
            self._buffer = self._buffer[keep_from - self._base:]
            self._base = keep_from
        return self._score_windows(pending)

    def _tail_window(self) -> StreamWindow | None:
        if self._sample_rate is None:
            return None
        # The tail policy itself is shared with the offline chunker.
        span = tail_window_span(
            self._next_start, self._covered_end,
            self._base + len(self._buffer),
            self.config.min_tail_samples(self._sample_rate),
            windows_cut=self._n_cut > 0)
        if span is None:
            return None
        return self._cut(*span)

    def _cut(self, start: int, end: int) -> StreamWindow:
        index = self._n_cut
        self._n_cut += 1
        samples = self._buffer[start - self._base:end - self._base]
        audio = Waveform(
            np.array(samples),
            sample_rate=self._sample_rate,
            metadata={"stream_window": index,
                      "stream_start_seconds": start / self._sample_rate},
        )
        return StreamWindow(index=index, start_sample=start,
                            end_sample=end, audio=audio)

    def _score_windows(self, pending: list[StreamWindow]) -> list[WindowVerdict]:
        if not pending:
            return []
        batch = self.pipeline.detect_batch([w.audio for w in pending])
        for stage in _STAGES:
            self._stage_seconds[stage] += batch.stage_seconds.get(stage, 0.0)
        self._cache_hits += batch.cache_hits
        self._cache_misses += batch.cache_misses
        self._score_cache_hits += batch.score_cache_hits
        self._score_cache_misses += batch.score_cache_misses
        verdicts = []
        for window, result in zip(pending, batch.results):
            state = self.aggregator.update(window.start_seconds,
                                           window.end_seconds,
                                           result.is_adversarial)
            verdict = WindowVerdict(
                index=window.index,
                start_seconds=window.start_seconds,
                end_seconds=window.end_seconds,
                is_adversarial=result.is_adversarial,
                scores=result.scores,
                target_transcription=result.target_transcription,
                state=state,
            )
            verdicts.append(verdict)
            self.windows.append(verdict)
        return verdicts


class StreamingDetector:
    """Screens continuous audio through a fitted detector.

    Args:
        detector: a fitted :class:`~repro.core.detector.MVPEarsDetector`.
        config: windowing + hysteresis settings (default
            :class:`StreamConfig`).
        pipeline: inject a pre-built
            :class:`~repro.pipeline.detection.DetectionPipeline` (e.g. to
            share a metrics observer); defaults to one over ``detector``.
    """

    def __init__(self, detector=None, config: StreamConfig | None = None,
                 pipeline: DetectionPipeline | None = None):
        if pipeline is None:
            if detector is None:
                raise ValueError("pass a detector or a pipeline")
            pipeline = DetectionPipeline(detector)
        self.pipeline = pipeline
        self.config = config or StreamConfig()

    @classmethod
    def from_spec(cls, spec, detector=None) -> "StreamingDetector":
        """Build a streaming detector from a declarative spec.

        ``spec`` is anything :func:`repro.build.resolve_spec` accepts (a
        :class:`~repro.specs.DetectorSpec`, dict or config path).  The
        windowing/hysteresis config comes from ``spec.serving``; the
        detector is built (and fitted) from the spec unless one is
        passed in.  :func:`repro.build.build_streaming` is the
        convenience wrapper.
        """
        from repro.build import build, resolve_spec
        spec = resolve_spec(spec)
        if detector is None:
            detector = build(spec)
        return cls(detector, config=spec.serving.stream_config())

    def session(self) -> StreamSession:
        """A fresh incremental session (one per concurrent stream)."""
        return StreamSession(self.pipeline, self.config)

    def detect_stream(self, audio: Waveform) -> StreamDetectionResult:
        """Screen one complete recording and aggregate its verdict."""
        session = self.session()
        session.push(audio)
        return session.flush()
