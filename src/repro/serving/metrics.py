"""Throughput and latency counters for the serving layer.

Every serving component — the micro-batcher, the streaming detector, a
plain :class:`~repro.pipeline.detection.DetectionPipeline` — can record
into one :class:`ServingMetrics` instance, which accumulates per-stage
clip counts and wall-clock seconds (the same ``recognition`` /
``similarity`` / ``classification`` stages the paper's overhead
experiment measures) plus request-level latency samples.  ``repro
bench`` prints the snapshot; embedders can poll :meth:`snapshot` from a
stats endpoint.

The ``observe_batch`` method has the signature
:class:`~repro.pipeline.detection.DetectionPipeline` expects of its
``observer`` hook, so wiring the two together is one constructor
argument::

    metrics = ServingMetrics()
    pipeline = DetectionPipeline(detector, observer=metrics.observe_batch)
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

#: How many request-latency samples the reservoir keeps for percentiles.
LATENCY_RESERVOIR = 4096


@dataclass
class StageStats:
    """Accumulated clip count and wall-clock seconds for one stage."""

    clips: int = 0
    seconds: float = 0.0

    def record(self, clips: int, seconds: float) -> None:
        self.clips += clips
        self.seconds += seconds

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per clip (0 when nothing was recorded)."""
        return self.seconds / self.clips if self.clips else 0.0

    @property
    def throughput(self) -> float:
        """Clips per second of stage wall-clock (0 when unused)."""
        return self.clips / self.seconds if self.seconds > 0 else 0.0


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[position]


@dataclass
class ServingMetrics:
    """Thread-safe counters shared across serving components.

    Attributes:
        stages: per-stage :class:`StageStats`, keyed by stage name
            (``recognition``, ``similarity``, ``classification``,
            ``total``).
        requests: clips that flowed through an observed pipeline batch.
        batches: pipeline batches observed.
        cache_hits: transcriptions served from the engine cache.
        cache_misses: transcriptions actually decoded.
        score_cache_hits: pair scores served from the pair-score cache.
        score_cache_misses: pair scores actually computed.
        feature_cache_hits: front-end feature matrices served from the
            feature cache.
        feature_cache_misses: front-end feature matrices computed.
        ipc_bytes_out: audio payload bytes shipped to worker processes
            (descriptors under the shm transport, full arrays under
            pickle) — mirrored from
            :class:`~repro.serving.service.ServiceStats`.
        ipc_bytes_in: result payload bytes shipped back from workers.
        requests_retried: distinct requests retried after a worker crash.
    """

    stages: dict = field(default_factory=dict)
    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    score_cache_hits: int = 0
    score_cache_misses: int = 0
    feature_cache_hits: int = 0
    feature_cache_misses: int = 0
    ipc_bytes_out: int = 0
    ipc_bytes_in: int = 0
    requests_retried: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._latency_samples: deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._queue_wait_samples: deque[float] = deque(maxlen=LATENCY_RESERVOIR)

    # ----------------------------------------------------------- recording
    def observe_batch(self, batch) -> None:
        """Record one :class:`BatchDetectionResult` (pipeline observer hook)."""
        n = len(batch)
        with self._lock:
            self.batches += 1
            self.requests += n
            self.cache_hits += batch.cache_hits
            self.cache_misses += batch.cache_misses
            self.score_cache_hits += getattr(batch, "score_cache_hits", 0)
            self.score_cache_misses += getattr(batch, "score_cache_misses", 0)
            self.feature_cache_hits += getattr(batch, "feature_cache_hits", 0)
            self.feature_cache_misses += getattr(batch,
                                                 "feature_cache_misses", 0)
            for stage, seconds in batch.stage_seconds.items():
                self.stages.setdefault(stage, StageStats()).record(n, seconds)

    def observe_latency(self, seconds: float) -> None:
        """Record one end-to-end request latency (submit → verdict)."""
        with self._lock:
            self._latency_samples.append(seconds)

    def observe_queue_wait(self, seconds: float) -> None:
        """Record how long one request waited for its micro-batch."""
        with self._lock:
            self._queue_wait_samples.append(seconds)

    def observe_service(self, stats) -> None:
        """Fold a :class:`~repro.serving.service.ServiceStats` snapshot's
        transport counters into these metrics (idempotent per snapshot:
        callers pass deltas or call once at the end of a run)."""
        with self._lock:
            self.ipc_bytes_out += getattr(stats, "ipc_bytes_out", 0)
            self.ipc_bytes_in += getattr(stats, "ipc_bytes_in", 0)
            self.requests_retried += getattr(stats, "requests_retried", 0)

    # ----------------------------------------------------------- reporting
    def snapshot(self) -> dict:
        """A JSON-friendly snapshot of every counter."""
        with self._lock:
            latencies = list(self._latency_samples)
            queue_waits = list(self._queue_wait_samples)
            stages = {
                name: {
                    "clips": stats.clips,
                    "seconds": stats.seconds,
                    "mean_seconds": stats.mean_seconds,
                    "throughput_clips_per_s": stats.throughput,
                }
                for name, stats in self.stages.items()
            }
            cache_lookups = self.cache_hits + self.cache_misses
            score_lookups = self.score_cache_hits + self.score_cache_misses
            feature_lookups = (self.feature_cache_hits
                               + self.feature_cache_misses)
            return {
                "requests": self.requests,
                "batches": self.batches,
                "mean_batch_size": (self.requests / self.batches
                                    if self.batches else 0.0),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": (self.cache_hits / cache_lookups
                                   if cache_lookups else 0.0),
                "score_cache_hits": self.score_cache_hits,
                "score_cache_misses": self.score_cache_misses,
                "score_cache_hit_rate": (self.score_cache_hits / score_lookups
                                         if score_lookups else 0.0),
                "feature_cache_hits": self.feature_cache_hits,
                "feature_cache_misses": self.feature_cache_misses,
                "feature_cache_hit_rate": (
                    self.feature_cache_hits / feature_lookups
                    if feature_lookups else 0.0),
                "ipc_bytes_out": self.ipc_bytes_out,
                "ipc_bytes_in": self.ipc_bytes_in,
                "requests_retried": self.requests_retried,
                "stages": stages,
                "latency_seconds": {
                    "p50": _percentile(latencies, 0.50),
                    "p95": _percentile(latencies, 0.95),
                    "max": max(latencies, default=0.0),
                },
                "queue_wait_seconds": {
                    "p50": _percentile(queue_waits, 0.50),
                    "p95": _percentile(queue_waits, 0.95),
                    "max": max(queue_waits, default=0.0),
                },
            }

    def format_table(self) -> str:
        """Human-readable rendering of :meth:`snapshot` for the CLI."""
        snap = self.snapshot()
        lines = [
            f"requests {snap['requests']}  batches {snap['batches']}  "
            f"mean batch {snap['mean_batch_size']:.2f}  "
            f"cache hit rate {snap['cache_hit_rate']:.0%} "
            f"({snap['cache_hits']}/{snap['cache_hits'] + snap['cache_misses']})"
            f"  score cache {snap['score_cache_hit_rate']:.0%} "
            f"({snap['score_cache_hits']}/"
            f"{snap['score_cache_hits'] + snap['score_cache_misses']})"
            f"  feature cache {snap['feature_cache_hit_rate']:.0%} "
            f"({snap['feature_cache_hits']}/"
            f"{snap['feature_cache_hits'] + snap['feature_cache_misses']})",
            f"{'stage':<16}{'clips':>8}{'seconds':>10}{'ms/clip':>10}{'clips/s':>10}",
        ]
        for name in ("recognition", "similarity", "classification", "total"):
            stats = snap["stages"].get(name)
            if stats is None:
                continue
            lines.append(f"{name:<16}{stats['clips']:>8}"
                         f"{stats['seconds']:>10.3f}"
                         f"{stats['mean_seconds'] * 1000:>10.2f}"
                         f"{stats['throughput_clips_per_s']:>10.1f}")
        latency = snap["latency_seconds"]
        queue = snap["queue_wait_seconds"]
        if latency["max"] > 0:
            lines.append(f"request latency  p50 {latency['p50'] * 1000:.1f} ms  "
                         f"p95 {latency['p95'] * 1000:.1f} ms  "
                         f"max {latency['max'] * 1000:.1f} ms")
        if queue["max"] > 0:
            lines.append(f"queue wait       p50 {queue['p50'] * 1000:.1f} ms  "
                         f"p95 {queue['p95'] * 1000:.1f} ms  "
                         f"max {queue['max'] * 1000:.1f} ms")
        if snap["ipc_bytes_out"] or snap["ipc_bytes_in"]:
            lines.append(f"ipc              out {snap['ipc_bytes_out']} B  "
                         f"in {snap['ipc_bytes_in']} B  "
                         f"retried {snap['requests_retried']}")
        return "\n".join(lines)
