"""The serving benchmark (``repro bench-serve``).

Drives a :class:`~repro.serving.service.DetectionService` with a burst
of concurrent detection streams through the asyncio front door, then
replays the identical workload through the single-process sequential
path, and reports latency percentiles and throughput **only if the two
paths agree bitwise** on every verdict and every score vector.  A
divergence (or any request that resolved to a non-``ok`` typed result)
zeroes out the performance section — a number measured on wrong
answers is a defect, not a benchmark result; the CLI turns it into a
hard error after writing the report.

The workload cycles ``n_clips`` distinct synthetic utterances (same
corpus as the other benchmarks) across ``n_streams`` concurrent
requests, so the run exercises the shared-cache path: most streams are
repeats that either worker may have transcribed first.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.audio.waveform import Waveform


def benchmark_clips(n_clips: int = 12, seed: int = 0) -> list[Waveform]:
    """Synthetic utterances drawn from the LibriSpeech-like corpus."""
    from repro.asr.registry import get_shared_lexicon
    from repro.audio.synthesis import SpeechSynthesizer
    from repro.config import SAMPLE_RATE
    from repro.text.corpus import librispeech_like_corpus

    if n_clips < 1:
        raise ValueError("n_clips must be >= 1")
    rng = np.random.default_rng(seed)
    sentences = librispeech_like_corpus().sample(n_clips, rng)
    synthesizer = SpeechSynthesizer(sample_rate=SAMPLE_RATE,
                                    lexicon=get_shared_lexicon(),
                                    seed=seed + 7)
    return [synthesizer.synthesize(sentence) for sentence in sentences]


async def _drive(service, tenant: str, workload) -> list:
    return await asyncio.gather(*[
        service.asubmit(tenant, clip, request_id=f"s{i}")
        for i, clip in enumerate(workload)])


def run_serve_benchmark(n_streams: int = 100, n_clips: int = 12,
                        workers: int = 2, seed: int = 0,
                        timeout_seconds: float = 120.0,
                        cache_dir: str | None = None,
                        spec=None, fit: bool = True,
                        transport: str = "shm",
                        clip_seconds: float | None = None) -> dict:
    """Benchmark the service against the sequential path; return a report.

    The service pass runs first (cold worker caches — the pool is
    forked from a parent that has detected nothing), the sequential
    baseline second in the parent process.  Every service verdict and
    score vector must equal its sequential twin bitwise; otherwise the
    ``service`` section of the report is ``None`` and
    ``parity_mismatches`` says why.

    ``transport`` selects the audio data plane (``"shm"`` descriptors
    or ``"pickle"`` full arrays — see
    :mod:`repro.serving.service`); the report's ``ipc`` section says
    how many payload bytes each moved.  ``clip_seconds`` zero-pads (or
    truncates) every clip to a fixed duration, so transport comparisons
    measure a known per-request payload (5 s of 16 kHz float64 audio is
    ~640 KB pickled vs a 192-byte descriptor).
    """
    from repro.build import build, build_pipeline, resolve_spec
    from repro.config import SAMPLE_RATE
    from repro.serving.service import DetectionService

    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    spec = resolve_spec(spec)
    clips = benchmark_clips(n_clips, seed)
    if clip_seconds is not None:
        if clip_seconds <= 0:
            raise ValueError("clip_seconds must be > 0")
        clips = [clip.padded_to(int(clip_seconds * SAMPLE_RATE))
                 for clip in clips]
    workload = [clips[i % len(clips)] for i in range(n_streams)]

    pipeline = build_pipeline(detector=build(spec, fit=fit))
    service = DetectionService(
        {"default": pipeline}, workers=workers,
        queue_depth=max(n_streams, 1),
        request_timeout_seconds=timeout_seconds,
        max_batch_size=spec.serving.max_batch_size,
        cache_dir=cache_dir,
        transport=transport)
    with service:
        start = time.perf_counter()
        results = asyncio.run(_drive(service, "default", workload))
        service_wall = time.perf_counter() - start
    stats = service.stats.snapshot()

    failed = [r for r in results if not r.ok]

    start = time.perf_counter()
    baseline = [pipeline.detect(clip) for clip in workload]
    sequential_wall = time.perf_counter() - start

    mismatches = len(failed)
    for served, expected in zip(results, baseline):
        if not served.ok:
            continue
        if served.is_adversarial != bool(expected.is_adversarial):
            mismatches += 1
        elif served.scores != tuple(float(s) for s in expected.scores):
            mismatches += 1

    from repro.backends.registry import describe_suite

    report = {
        "n_streams": n_streams,
        "n_clips": n_clips,
        "workers": workers,
        "seed": seed,
        # Which suite produced these numbers (composition + version
        # fingerprints) — the attribution record for perf trajectories.
        "suite": describe_suite(spec.suite),
        "transport": transport,
        "active_transport": service.active_transport,
        "clip_seconds": clip_seconds,
        "parity_mismatches": mismatches,
        "failed_requests": len(failed),
        "sequential": {
            "wall_seconds": sequential_wall,
            "per_request_ms": 1000.0 * sequential_wall / n_streams,
            "throughput_rps": n_streams / sequential_wall,
        },
        "stats": {
            "submitted": stats.submitted,
            "completed": stats.completed,
            "rejected": stats.rejected,
            "timeouts": stats.timeouts,
            "errors": stats.errors,
            "retries": stats.retries,
            "requests_retried": stats.requests_retried,
            "respawns": stats.respawns,
        },
        "ipc": {
            "bytes_out": stats.ipc_bytes_out,
            "bytes_in": stats.ipc_bytes_in,
            "bytes_out_per_request": (stats.ipc_bytes_out / n_streams
                                      if n_streams else 0.0),
        },
        "service": None,
    }
    if mismatches == 0:
        latencies_ms = np.array([r.total_seconds for r in results]) * 1000.0
        queue_ms = np.array([r.queue_seconds for r in results]) * 1000.0
        report["service"] = {
            "wall_seconds": service_wall,
            "throughput_rps": n_streams / service_wall,
            "p50_ms": float(np.percentile(latencies_ms, 50)),
            "p99_ms": float(np.percentile(latencies_ms, 99)),
            "mean_ms": float(np.mean(latencies_ms)),
            "max_ms": float(np.max(latencies_ms)),
            "queue_p50_ms": float(np.percentile(queue_ms, 50)),
            "queue_p99_ms": float(np.percentile(queue_ms, 99)),
        }
    return report


def compare_transports(n_streams: int = 100, n_clips: int = 12,
                       workers: int = 2, seed: int = 0,
                       timeout_seconds: float = 120.0,
                       cache_dir: str | None = None,
                       spec=None, fit: bool = True,
                       clip_seconds: float | None = 5.0) -> dict:
    """Run the serve benchmark under both transports on one workload.

    Returns the ``"shm"`` report extended with a ``transports`` section
    holding each transport's per-transport numbers and the headline
    ``speedup_shm_vs_pickle`` throughput ratio (``None`` while either
    side failed its parity gate — a speedup measured on wrong answers
    is not a speedup).  The top-level shape stays that of a single
    :func:`run_serve_benchmark` report, so existing report consumers
    keep working.
    """
    reports = {}
    for transport in ("pickle", "shm"):
        reports[transport] = run_serve_benchmark(
            n_streams=n_streams, n_clips=n_clips, workers=workers,
            seed=seed, timeout_seconds=timeout_seconds,
            cache_dir=cache_dir, spec=spec, fit=fit,
            transport=transport, clip_seconds=clip_seconds)
    shm, pickle_ = reports["shm"], reports["pickle"]
    speedup = None
    if (shm["service"] is not None and pickle_["service"] is not None
            and pickle_["service"]["throughput_rps"] > 0):
        speedup = (shm["service"]["throughput_rps"]
                   / pickle_["service"]["throughput_rps"])
    combined = dict(shm)
    combined["transports"] = {
        transport: {
            "active_transport": rep["active_transport"],
            "parity_mismatches": rep["parity_mismatches"],
            "service": rep["service"],
            "ipc": rep["ipc"],
        }
        for transport, rep in reports.items()
    }
    combined["speedup_shm_vs_pickle"] = speedup
    return combined
