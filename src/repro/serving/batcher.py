"""Micro-batching scheduler for concurrent detection requests.

A deployed detector receives requests from many clients at once, and the
:class:`~repro.pipeline.detection.DetectionPipeline` is much cheaper per
clip when driven in batches (one vectorised classifier call, a full
(waveform × ASR) task grid keeping the transcription pool busy).
:class:`MicroBatcher` bridges the two: callers :meth:`submit` single
clips and get a future back, while a background scheduler thread
collects queued requests into batches and drives the pipeline.

A batch is dispatched when either trigger fires:

* **size** — ``max_batch_size`` requests are waiting, or
* **latency** — the *oldest* queued request has waited
  ``max_latency_seconds`` (so a lone request is still served promptly —
  the single-request fallback is just a batch of one).

Requests are isolated from each other: if a batch fails, every request
in it is retried individually, so a poison input fails only its own
future while the rest of the batch still gets verdicts.

The scheduler reuses whatever engine the pipeline's detector holds, so
the content-hash transcription cache is shared across *all* requests —
two clients submitting the same viral audio clip cost one decode.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.audio.waveform import Waveform
from repro.serving.metrics import ServingMetrics


@dataclass
class BatcherStats:
    """Dispatch counters of one :class:`MicroBatcher`."""

    requests: int = 0
    batches: int = 0
    size_dispatches: int = 0
    latency_dispatches: int = 0
    drain_dispatches: int = 0
    isolated_failures: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Mean requests per dispatched batch (0 when idle)."""
        return self.requests / self.batches if self.batches else 0.0


@dataclass
class _Request:
    audio: Waveform
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)


class MicroBatcher:
    """Collects concurrent ``submit()`` calls into pipeline batches.

    Args:
        pipeline: the batched detection pipeline to drive (anything with
            a ``detect_batch(list[Waveform]) -> BatchDetectionResult``).
        max_batch_size: dispatch as soon as this many requests queue.
        max_latency_seconds: dispatch once the oldest queued request has
            waited this long, whatever the batch size.  ``0`` dispatches
            immediately (no batching benefit, minimal added latency).
        metrics: optional :class:`ServingMetrics` receiving batch stage
            timings, request latencies and queue waits.
    """

    def __init__(self, pipeline, max_batch_size: int = 8,
                 max_latency_seconds: float = 0.01,
                 metrics: ServingMetrics | None = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_latency_seconds < 0:
            raise ValueError("max_latency_seconds must be >= 0")
        self.pipeline = pipeline
        self.max_batch_size = max_batch_size
        self.max_latency_seconds = max_latency_seconds
        self.metrics = metrics
        self.stats = BatcherStats()
        self._queue: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._thread: threading.Thread | None = None

    @classmethod
    def from_spec(cls, spec, pipeline,
                  metrics: ServingMetrics | None = None) -> "MicroBatcher":
        """A batcher configured from a spec's ``serving`` section.

        ``spec`` is anything :func:`repro.build.resolve_spec` accepts (a
        :class:`~repro.specs.DetectorSpec`, dict or config path); only
        ``serving.max_batch_size`` / ``serving.max_latency_seconds`` are
        read — the pipeline is passed in so callers control detector
        reuse (or use :func:`repro.build.build_batcher` for the whole
        stack in one call).
        """
        from repro.build import resolve_spec
        serving = resolve_spec(spec).serving
        return cls(pipeline, max_batch_size=serving.max_batch_size,
                   max_latency_seconds=serving.max_latency_seconds,
                   metrics=metrics)

    # ------------------------------------------------------------ lifecycle
    def _ensure_thread(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(target=self._loop, daemon=True,
                                            name="repro-microbatch")
            self._thread.start()

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then stop the scheduler."""
        with self._cond:
            if self._closed:
                thread = self._thread
                if wait and thread is not None:
                    thread.join()
                return
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if wait and thread is not None:
            thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- submission
    def submit(self, audio: Waveform) -> Future:
        """Enqueue one clip; the future resolves to its ``DetectionResult``."""
        request = _Request(audio=audio)
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append(request)
            self._ensure_thread()
            self._cond.notify_all()
        return request.future

    def submit_many(self, audios: list[Waveform]) -> list[Future]:
        """Enqueue several clips at once (one future per clip)."""
        return [self.submit(audio) for audio in audios]

    def detect(self, audio: Waveform):
        """Synchronous convenience: submit one clip and wait for it."""
        return self.submit(audio).result()

    def detect_many(self, audios: list[Waveform]) -> list:
        """Submit a list of clips and wait for all results, in order."""
        return [future.result() for future in self.submit_many(audios)]

    # ------------------------------------------------------------ scheduler
    def _take_batch(self) -> tuple[list[_Request], str] | None:
        """Block until a batch is due; ``None`` means shut down."""
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None  # closed and drained
            deadline = self._queue[0].enqueued_at + self.max_latency_seconds
            while (len(self._queue) < self.max_batch_size
                   and not self._closed):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            reason = ("size" if len(self._queue) >= self.max_batch_size
                      else "drain" if self._closed else "latency")
            count = min(self.max_batch_size, len(self._queue))
            return [self._queue.popleft() for _ in range(count)], reason

    def _loop(self) -> None:
        while True:
            taken = self._take_batch()
            if taken is None:
                return
            batch, reason = taken
            try:
                self._dispatch(batch, reason)
            except Exception as exc:  # backstop: never kill the scheduler
                # Anything unexpected (a raising metrics observer, a
                # misbehaving pipeline) fails the affected requests
                # instead of leaving their futures hanging forever.
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _dispatch(self, batch: list[_Request], reason: str) -> None:
        dispatched_at = time.monotonic()
        live = [request for request in batch
                if request.future.set_running_or_notify_cancel()]
        self.stats.requests += len(live)
        if not live:
            return
        self.stats.batches += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(live))
        counter = {"size": "size_dispatches",
                   "latency": "latency_dispatches",
                   "drain": "drain_dispatches"}[reason]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if self.metrics is not None:
            for request in live:
                self.metrics.observe_queue_wait(
                    dispatched_at - request.enqueued_at)
        self._run_batch(live)

    def _run_batch(self, batch: list[_Request]) -> None:
        try:
            result = self.pipeline.detect_batch(
                [request.audio for request in batch])
            if len(result.results) != len(batch):
                raise RuntimeError(
                    f"pipeline returned {len(result.results)} results "
                    f"for a batch of {len(batch)}")
        except Exception:
            self._run_isolated(batch)
            return
        self._resolve(batch, result.results)

    def _run_isolated(self, batch: list[_Request]) -> None:
        """Per-request retry after a batch failure (exception isolation)."""
        for request in batch:
            try:
                result = self.pipeline.detect_batch([request.audio])
                if len(result.results) != 1:
                    raise RuntimeError(
                        f"pipeline returned {len(result.results)} results "
                        f"for a single request")
            except Exception as exc:
                self.stats.isolated_failures += 1
                request.future.set_exception(exc)
            else:
                self._resolve([request], result.results)

    def _resolve(self, batch: list[_Request], results: list) -> None:
        finished_at = time.monotonic()
        for request, result in zip(batch, results):
            if self.metrics is not None:
                self.metrics.observe_latency(finished_at - request.enqueued_at)
            request.future.set_result(result)
