"""Slicing long or continuous audio into detection windows.

The paper evaluates MVP-EARS on pre-cut utterances, but its deployment
story (a guard in front of a voice assistant, Section V-I) implies audio
that never stops: an always-listening microphone, a podcast, a phone
call.  :class:`StreamConfig` describes how such a stream is cut into
overlapping detection windows — a window length, a hop between window
starts, and a policy for the trailing partial window — and
:func:`iter_windows` / :func:`chunk_waveform` apply it to a
:class:`~repro.audio.waveform.Waveform`.

Window semantics (see ``docs/SERVING.md`` for diagrams):

* window ``i`` covers samples ``[i * hop, i * hop + window)``;
* every window whose full extent fits in the stream is emitted;
* the trailing partial window ``[n_full * hop, end)`` is emitted when it
  contains audio no full window covered AND is at least
  ``min_tail_fraction`` of a full window — except that a stream shorter
  than one window always yields its single partial window, so short
  clips are never silently dropped.

Slices share memory with the source array (numpy views) until a
downstream consumer copies them, so chunking a long recording is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.audio.waveform import Waveform

#: Default window length in seconds.
DEFAULT_WINDOW_SECONDS = 2.0


@dataclass(frozen=True)
class StreamConfig:
    """How a continuous stream is windowed and how verdicts aggregate.

    Attributes:
        window_seconds: length of one detection window.
        hop_seconds: distance between consecutive window starts.  Equal
            to ``window_seconds`` gives non-overlapping tiling (the
            setting under which streaming detection reproduces per-clip
            detection exactly); smaller values overlap windows so an AE
            straddling a boundary is still seen whole by some window.
            ``None`` defaults to ``window_seconds / 2``.
        min_tail_fraction: emit the trailing partial window only when it
            is at least this fraction of a full window (a stream shorter
            than one window is always emitted whole).
        trigger_windows: consecutive adversarial windows needed before
            the stream-level verdict flips to adversarial (hysteresis —
            one noisy window does not flip the stream).
        release_windows: consecutive benign windows needed before an
            adversarial stream verdict releases back to benign.
    """

    window_seconds: float = DEFAULT_WINDOW_SECONDS
    hop_seconds: float | None = None
    min_tail_fraction: float = 0.25
    trigger_windows: int = 2
    release_windows: int = 2

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.hop_seconds is None:
            object.__setattr__(self, "hop_seconds", self.window_seconds / 2)
        if self.hop_seconds <= 0:
            raise ValueError("hop_seconds must be positive")
        if not 0.0 <= self.min_tail_fraction <= 1.0:
            raise ValueError("min_tail_fraction must be in [0, 1]")
        if self.trigger_windows < 1:
            raise ValueError("trigger_windows must be >= 1")
        if self.release_windows < 1:
            raise ValueError("release_windows must be >= 1")

    def window_samples(self, sample_rate: int) -> int:
        """Window length in samples at ``sample_rate`` (at least 1)."""
        return max(1, round(self.window_seconds * sample_rate))

    def hop_samples(self, sample_rate: int) -> int:
        """Hop length in samples at ``sample_rate`` (at least 1)."""
        return max(1, round(self.hop_seconds * sample_rate))

    def min_tail_samples(self, sample_rate: int) -> int:
        """Smallest trailing partial window emitted, in samples."""
        return max(1, round(self.min_tail_fraction
                            * self.window_samples(sample_rate)))


@dataclass(frozen=True)
class StreamWindow:
    """One detection window cut from a stream.

    Attributes:
        index: 0-based window index in stream order.
        start_sample: absolute start position in the stream, in samples.
        end_sample: absolute end position (exclusive), in samples.
        audio: the window's samples as a :class:`Waveform`, carrying
            ``stream_window``/``stream_start_seconds`` metadata.
    """

    index: int
    start_sample: int
    end_sample: int
    audio: Waveform

    @property
    def start_seconds(self) -> float:
        """Window start within the stream, in seconds."""
        return self.start_sample / self.audio.sample_rate

    @property
    def end_seconds(self) -> float:
        """Window end within the stream, in seconds."""
        return self.end_sample / self.audio.sample_rate

    @property
    def duration(self) -> float:
        """Window length in seconds (shorter for the tail window)."""
        return (self.end_sample - self.start_sample) / self.audio.sample_rate


def tail_window_span(next_start: int, covered_end: int, stream_end: int,
                     min_tail_samples: int,
                     windows_cut: bool) -> tuple[int, int] | None:
    """The trailing partial window ``(start, end)``, or ``None`` if dropped.

    This is the single implementation of the tail policy, shared by the
    offline chunker and the incremental
    :class:`~repro.serving.streaming.StreamSession` so the two can never
    diverge: no tail when the last full window already reached the
    stream end, no tail shorter than ``min_tail_samples`` — unless no
    window was cut at all (a stream shorter than one window is always
    emitted whole).
    """
    if stream_end <= covered_end:
        return None
    tail = stream_end - next_start
    if tail <= 0:
        return None
    if windows_cut and tail < min_tail_samples:
        return None
    return next_start, stream_end


def _make_window(stream: Waveform, index: int, start: int, end: int) -> StreamWindow:
    audio = stream.with_samples(
        stream.samples[start:end],
        stream_window=index,
        stream_start_seconds=start / stream.sample_rate,
    )
    return StreamWindow(index=index, start_sample=start, end_sample=end,
                        audio=audio)


def iter_windows(stream: Waveform,
                 config: StreamConfig | None = None) -> Iterator[StreamWindow]:
    """Yield the detection windows of ``stream`` under ``config``."""
    config = config or StreamConfig()
    n = len(stream)
    if n == 0:
        return
    window = config.window_samples(stream.sample_rate)
    hop = config.hop_samples(stream.sample_rate)
    index = 0
    start = 0
    covered_end = 0
    while start + window <= n:
        yield _make_window(stream, index, start, start + window)
        covered_end = start + window
        index += 1
        start += hop
    tail = tail_window_span(start, covered_end, n,
                            config.min_tail_samples(stream.sample_rate),
                            windows_cut=index > 0)
    if tail is not None:
        yield _make_window(stream, index, *tail)


def chunk_waveform(stream: Waveform,
                   config: StreamConfig | None = None) -> list[StreamWindow]:
    """The detection windows of ``stream`` as a list (see :func:`iter_windows`)."""
    return list(iter_windows(stream, config))
