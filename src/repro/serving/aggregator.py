"""Stream-level verdict aggregation with hysteresis.

Per-window detection is noisy at window boundaries: a window that
straddles the edge of an adversarial example contains a mixture of
benign and attacked audio, and a single benign window can score oddly
(silence, a cough, music).  :class:`StreamAggregator` therefore applies
hysteresis to the per-window verdict sequence — the stream-level state
only flips to *adversarial* after ``trigger_windows`` consecutive
adversarial windows, and only releases back to *benign* after
``release_windows`` consecutive benign windows.  The spans of stream
time covered by an adversarial episode are reported as
:class:`FlaggedSpan` objects (span boundaries are the extent of the
adversarial windows in the episode, including the ones that accumulated
toward the trigger).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Stream-level states reported by the aggregator.
BENIGN, ADVERSARIAL = "benign", "adversarial"


@dataclass(frozen=True)
class WindowVerdict:
    """Per-window detection outcome annotated with stream position.

    Attributes:
        index: window index in stream order.
        start_seconds: window start within the stream.
        end_seconds: window end within the stream.
        is_adversarial: the classifier's verdict for this window alone.
        scores: the window's per-auxiliary similarity scores.
        target_transcription: what the target ASR heard in this window.
        state: the aggregator's stream-level state *after* this window.
    """

    index: int
    start_seconds: float
    end_seconds: float
    is_adversarial: bool
    scores: np.ndarray
    target_transcription: str
    state: str = BENIGN


@dataclass(frozen=True)
class FlaggedSpan:
    """A contiguous stretch of stream time flagged as adversarial.

    Attributes:
        start_seconds: start of the first adversarial window in the span.
        end_seconds: end of the last adversarial window in the span.
        n_windows: number of adversarial windows in the span.
    """

    start_seconds: float
    end_seconds: float
    n_windows: int

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end_seconds - self.start_seconds


@dataclass(frozen=True)
class StreamDetectionResult:
    """Outcome of screening one audio stream.

    Attributes:
        windows: per-window verdicts in stream order.
        spans: flagged adversarial spans (empty for a clean stream).
        stage_seconds: accumulated per-stage wall-clock seconds over all
            pipeline batches that served this stream.
        cache_hits: transcriptions served from the engine cache.
        cache_misses: transcriptions actually decoded.
        score_cache_hits: pair scores served from the pair-score cache —
            overlapping windows re-hear the same audio, so their suite
            pairs repeat and hit this cache.
        score_cache_misses: pair scores actually computed.
    """

    windows: list[WindowVerdict]
    spans: list[FlaggedSpan]
    stage_seconds: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    score_cache_hits: int = 0
    score_cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def is_adversarial(self) -> bool:
        """True when any span of the stream was flagged."""
        return bool(self.spans)

    @property
    def n_adversarial_windows(self) -> int:
        """Number of windows individually classified adversarial."""
        return sum(w.is_adversarial for w in self.windows)

    @property
    def predictions(self) -> np.ndarray:
        """Per-window labels (0 benign, 1 adversarial), in stream order."""
        return np.array([int(w.is_adversarial) for w in self.windows], dtype=int)


class StreamAggregator:
    """Folds per-window verdicts into a hysteresis stream verdict.

    Args:
        trigger_windows: consecutive adversarial windows needed to flip
            the stream state to adversarial.
        release_windows: consecutive benign windows needed to release an
            adversarial state back to benign.
    """

    def __init__(self, trigger_windows: int = 2, release_windows: int = 2):
        if trigger_windows < 1:
            raise ValueError("trigger_windows must be >= 1")
        if release_windows < 1:
            raise ValueError("release_windows must be >= 1")
        self.trigger_windows = trigger_windows
        self.release_windows = release_windows
        self.state = BENIGN
        self.spans: list[FlaggedSpan] = []
        self._adversarial_streak = 0
        self._benign_streak = 0
        # Extent of the adversarial episode being accumulated/held:
        # (start_seconds, end_seconds, n adversarial windows).
        self._episode: tuple[float, float, int] | None = None

    def update(self, start_seconds: float, end_seconds: float,
               is_adversarial: bool) -> str:
        """Fold one window verdict in; returns the stream state after it."""
        if is_adversarial:
            self._benign_streak = 0
            self._adversarial_streak += 1
            if self._episode is None:
                self._episode = (start_seconds, end_seconds, 1)
            else:
                first, _, count = self._episode
                self._episode = (first, end_seconds, count + 1)
            if self._adversarial_streak >= self.trigger_windows:
                self.state = ADVERSARIAL
        else:
            self._adversarial_streak = 0
            if self.state == ADVERSARIAL:
                self._benign_streak += 1
                if self._benign_streak >= self.release_windows:
                    self._close_episode()
                    self.state = BENIGN
                    self._benign_streak = 0
            else:
                # A sub-trigger run of adversarial windows followed by a
                # benign window never fired — discard the pending episode.
                self._episode = None
        return self.state

    def _close_episode(self) -> None:
        if self._episode is not None:
            start, end, count = self._episode
            self.spans.append(FlaggedSpan(start_seconds=start,
                                          end_seconds=end, n_windows=count))
            self._episode = None

    def finalize(self) -> list[FlaggedSpan]:
        """Close any open adversarial episode and return all spans.

        A pending sub-trigger streak at end of stream is discarded (it
        never fired); an episode that did fire is closed at the last
        adversarial window seen.
        """
        if self.state == ADVERSARIAL:
            self._close_episode()
            self.state = BENIGN
        else:
            self._episode = None
        self._adversarial_streak = 0
        self._benign_streak = 0
        return self.spans
